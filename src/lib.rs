//! Umbrella crate re-exporting the MicroGrid-rs workspace for examples and
//! integration tests.
pub use microgrid;
