//! Umbrella crate re-exporting the MicroGrid-rs workspace for examples and
//! integration tests.
//!
//! # Examples
//!
//! Everything lives under [`microgrid`]; the quickstart in miniature:
//!
//! ```
//! use microgrid_suite::microgrid::desim::Simulation;
//! use microgrid_suite::microgrid::{presets, VirtualGrid};
//!
//! let mut sim = Simulation::new(42);
//! let t = sim.block_on(async {
//!     let grid = VirtualGrid::build(presets::alpha_cluster()).unwrap();
//!     let ctx = grid.spawn_process("alpha0", "app").unwrap();
//!     ctx.compute_mops(533.0).await; // one virtual CPU-second
//!     ctx.gettimeofday()
//! });
//! assert!(t.as_secs_f64() >= 1.0);
//! ```
pub use microgrid;
