# Development targets. Each recipe is a plain cargo invocation, so
# everything here also works without `just` by copying the command.

# Build + test everything.
default: test

build:
    cargo build --workspace

test:
    cargo test --workspace

# Documentation, formatting, and lint gate — keep these warning-free.
# Also verifies every relative link/anchor in README.md and docs/.
docs:
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
    cargo fmt --check
    cargo clippy --workspace --all-targets -- -D warnings
    cargo run -p mgrid-lint --bin linkcheck

# Determinism & safety static analysis (rule catalog: docs/LINTS.md).
lint:
    cargo run -p mgrid-lint --bin mgrid-lint -- --format human

# Apply mgrid-lint's mechanical rewrites (MG002 hasher swaps, MG007
# collect-and-sort preludes). Run plain `-- --fix` first for a dry-run
# diff.
lint-fix:
    cargo run -p mgrid-lint --bin mgrid-lint -- --fix --write

# Dynamic memory-model check of the lock-free exchange cells under
# Miri (nightly). Scoped to the desim exchange/slot protocol tests —
# whole-workspace Miri would take hours.
miri:
    cargo +nightly miri test -p mgrid-desim --lib exchange::

fmt:
    cargo fmt --all

# Regenerate the paper's figures (fast, shrunken parameters).
figures:
    MGRID_FAST=1 cargo run --release -p mgrid-bench --bin repro -- all

# Chaos scenarios: replay the tracked fault-injection experiments, verify
# same-seed double runs are byte-identical, and diff against
# results/chaos.json (`chaos --bless` re-anchors after intended changes).
chaos:
    cargo run --release -p mgrid-bench --bin chaos -- --check
    MGRID_SHARDS=4 cargo run --release -p mgrid-bench --bin chaos -- --check

# Criterion microbenches: engine throughput + per-figure regenerations.
bench:
    cargo bench --workspace

# The tracked performance baseline: run the criterion engine benches,
# then measure events/sec, packets/sec, and the serial full-scale figure
# sweep, updating BENCH_core.json (existing baseline preserved).
perf:
    cargo bench -p mgrid-bench --bench engine
    cargo run --release -p mgrid-bench --bin perf -- --out BENCH_core.json
