//! Chaos determinism: scripted fault scenarios are part of the
//! simulation, so a faulty run must be exactly as reproducible as a
//! healthy one. Each scenario here runs twice from the same seed and the
//! serialized metrics snapshots are compared byte-for-byte — the dynamic
//! counterpart of the static invariants `mgrid-lint` enforces
//! (docs/LINTS.md) and the contract documented in docs/FAULTS.md.

use std::future::Future;
use std::pin::Pin;

use microgrid::desim::time::SimDuration;
use microgrid::desim::Simulation;
use microgrid::faults::{FaultKind, FaultPlan};
use microgrid::mpi::MpiParams;
use microgrid::{presets, VirtualGrid};

/// A 4-rank ring workload long enough (in simulated time) to span every
/// fault the scenarios below schedule: each round allreduces a counter,
/// then idles 10 ms.
fn ring_rounds(
    comm: microgrid::mpi::Comm,
    rounds: u64,
) -> Pin<Box<dyn Future<Output = Result<u64, microgrid::middleware::SockError>>>> {
    Box::pin(async move {
        let mut acc = 0u64;
        for round in 0..rounds {
            acc = comm.allreduce(acc + round, 8, |a, b| a + b).await?;
            microgrid::desim::sleep(SimDuration::from_millis(10)).await;
        }
        Ok(acc)
    })
}

fn loss_plan() -> FaultPlan {
    FaultPlan::new()
        .at(
            SimDuration::ZERO,
            FaultKind::LinkLoss {
                a: "alpha0".into(),
                b: "switch".into(),
                per_mille: 100,
            },
        )
        .at(
            SimDuration::from_millis(20),
            FaultKind::LinkDown {
                a: "alpha1".into(),
                b: "switch".into(),
            },
        )
        .at(
            SimDuration::from_millis(60),
            FaultKind::LinkUp {
                a: "alpha1".into(),
                b: "switch".into(),
            },
        )
}

/// Scenario 1: 10% loss on one edge plus a 40 ms hard outage on another.
/// The reliable transport must retransmit through both; the workload
/// completes with correct results and the run is byte-deterministic.
fn lossy_digest(seed: u64) -> String {
    let mut sim = Simulation::new(seed);
    let results = sim.block_on(async move {
        let mut config = presets::alpha_cluster();
        config.seed = seed;
        config.faults = Some(loss_plan());
        let grid = VirtualGrid::build(config).expect("build");
        grid.mpirun_all(MpiParams::default(), |comm| ring_rounds(comm, 10))
            .await
    });
    // allreduce keeps every rank in agreement despite the impairments.
    for r in &results {
        let v = r.as_ref().expect("rank completed despite link faults");
        assert_eq!(*v, *results[0].as_ref().unwrap());
    }
    let m = sim.obs().metrics();
    assert!(m.counter("faults.injected") >= 3, "plan did not replay");
    assert!(m.counter("faults.link_down") == 1);
    let snapshot = m.snapshot();
    serde_json::to_string(&snapshot).expect("snapshot serializes")
}

/// Scenario 2: a host crashes mid-run. The resilient launcher must drop
/// exactly that rank, the survivors finish, and the whole thing is still
/// byte-deterministic.
fn crash_digest(seed: u64) -> String {
    let mut sim = Simulation::new(seed);
    let results = sim.block_on(async move {
        let mut config = presets::alpha_cluster();
        config.seed = seed;
        config.faults = Some(FaultPlan::new().at(
            SimDuration::from_millis(30),
            FaultKind::HostCrash {
                host: "alpha3".into(),
            },
        ));
        let grid = VirtualGrid::build(config).expect("build");
        let hosts = grid.host_names();
        let params = MpiParams {
            recv_timeout: Some(SimDuration::from_millis(200)),
            ..MpiParams::default()
        };
        grid.mpirun_resilient(&hosts, params, SimDuration::from_secs(2), |comm| {
            Box::pin(async move {
                let rank = comm.rank();
                // Enough compute+idle rounds to straddle the 30 ms crash.
                for _ in 0..20 {
                    comm.ctx().compute_mops(0.5).await;
                    microgrid::desim::sleep(SimDuration::from_millis(5)).await;
                }
                rank
            }) as Pin<Box<dyn Future<Output = usize>>>
        })
        .await
    });
    assert_eq!(results.len(), 4);
    for (rank, r) in results.iter().enumerate() {
        if rank == 3 {
            assert_eq!(*r, None, "crashed rank must be dropped");
        } else {
            assert_eq!(*r, Some(rank), "healthy rank must survive");
        }
    }
    let m = sim.obs().metrics();
    assert_eq!(m.counter("faults.host_crash"), 1);
    assert_eq!(m.counter("faults.jobs_dropped"), 1);
    assert!(m.counter("faults.procs_killed") >= 1);
    let snapshot = m.snapshot();
    serde_json::to_string(&snapshot).expect("snapshot serializes")
}

#[test]
fn lossy_wan_runs_are_byte_identical() {
    let first = lossy_digest(1234);
    let second = lossy_digest(1234);
    assert_eq!(first, second, "same-seed chaos runs diverged");
    let other = lossy_digest(1235);
    assert_ne!(first, other, "seed does not reach the faulty run");
}

#[test]
fn host_crash_runs_are_byte_identical() {
    let first = crash_digest(77);
    let second = crash_digest(77);
    assert_eq!(first, second, "same-seed crash runs diverged");
}

/// A crashed host must not take the simulation's liveness with it: the
/// resilient launcher returns in bounded simulated time even though the
/// dead rank's task is parked forever.
#[test]
fn crash_does_not_hang_the_run() {
    let mut sim = Simulation::new(5);
    let t = sim.block_on(async move {
        let mut config = presets::alpha_cluster();
        config.seed = 5;
        config.faults = Some(FaultPlan::new().at(
            SimDuration::from_millis(10),
            FaultKind::HostCrash {
                host: "alpha0".into(),
            },
        ));
        let grid = VirtualGrid::build(config).expect("build");
        let hosts = grid.host_names();
        let _ = grid
            .mpirun_resilient(
                &hosts,
                MpiParams::default(),
                SimDuration::from_millis(500),
                |comm| {
                    Box::pin(async move {
                        comm.ctx().compute_mops(1e9).await; // far past the deadline
                    }) as Pin<Box<dyn Future<Output = ()>>>
                },
            )
            .await;
        microgrid::desim::now()
    });
    assert!(
        t.saturating_since(microgrid::desim::time::SimTime::ZERO) < SimDuration::from_secs(5),
        "resilient run overstayed its deadline: {t:?}"
    );
}
