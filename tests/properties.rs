//! Property-based tests over the core data structures and invariants.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;

use microgrid::desim::shard::{
    run_sharded, Import, LookaheadAdvice, ShardHandle, ShardPlan, ShardRun,
};
use microgrid::desim::time::{SimDuration, SimTime};
use microgrid::desim::vclock::VirtualClock;
use microgrid::desim::{now, sleep, sleep_until, spawn, FxHashSet, Simulation};
use microgrid::gis::{Dn, Filter, Record};
use microgrid::netsim::{
    LinkSpec, NetParams, Network, NodeId, Packet, Payload, Topology, TopologyBuilder,
};

proptest! {
    /// SimTime/SimDuration arithmetic: (t + d) - t == d for all in-range
    /// values.
    #[test]
    fn time_add_sub_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(t);
        let d = SimDuration::from_nanos(d);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d) - d, t);
    }

    /// Duration scaling: mul then div by the same factor is near-identity
    /// (up to rounding of the intermediate nanosecond value).
    #[test]
    fn duration_scale_roundtrip(ns in 1u64..1_000_000_000_000u64, f in 0.01f64..100.0) {
        let d = SimDuration::from_nanos(ns);
        let back = d.mul_f64(f).div_f64(f);
        let err = (back.as_nanos() as i128 - ns as i128).unsigned_abs();
        // One nanosecond of rounding per operation, scaled by 1/f when
        // dividing back.
        let bound = 2 + (1.0 / f).ceil() as u128;
        prop_assert!(err <= bound, "ns={ns} f={f} back={} err={err}", back.as_nanos());
    }
}

proptest! {
    /// The virtual clock is monotone for any positive rate schedule.
    #[test]
    fn vclock_monotone(
        rates in prop::collection::vec(0.01f64..50.0, 1..6),
        probes in prop::collection::vec(0u64..100_000_000_000u64, 1..20),
    ) {
        let clock = VirtualClock::new(rates[0]);
        for (i, r) in rates.iter().enumerate().skip(1) {
            clock.set_rate(SimTime::from_secs_f64(i as f64 * 5.0), *r);
        }
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        let mut prev = SimTime::ZERO;
        for p in sorted {
            let v = clock.virtual_at(SimTime::from_nanos(p));
            prop_assert!(v >= prev);
            prev = v;
        }
    }

    /// DN parse/display round-trips for simple identifiers.
    #[test]
    fn dn_roundtrip(parts in prop::collection::vec("[a-z]{1,8}", 1..5)) {
        let s: Vec<String> = parts.iter().enumerate()
            .map(|(i, p)| format!("ou{i}={p}"))
            .collect();
        let text = s.join(", ");
        let dn = Dn::parse(&text).unwrap();
        prop_assert_eq!(Dn::parse(&dn.to_string()).unwrap(), dn);
    }

    /// De Morgan: !(a & b) == (!a | !b) over arbitrary records.
    #[test]
    fn filter_de_morgan(
        attrs in prop::collection::vec(("[a-d]", "[x-z]{1,3}"), 0..6),
        a_attr in "[a-d]", a_val in "[x-z]{1,3}",
        b_attr in "[a-d]", b_val in "[x-z]{1,3}",
    ) {
        let mut rec = Record::new(Dn::parse("o=test").unwrap());
        for (k, v) in &attrs {
            rec.add(k, v.clone());
        }
        let a = Filter::eq(&a_attr, a_val);
        let b = Filter::eq(&b_attr, b_val);
        let lhs = Filter::not(Filter::and([a.clone(), b.clone()]));
        let rhs = Filter::or([Filter::not(a), Filter::not(b)]);
        prop_assert_eq!(lhs.matches(&rec), rhs.matches(&rec));
    }

    /// Routing: on random connected topologies every host pair routes,
    /// hop-by-hop next-hops agree with the full route, and the path delay
    /// equals the sum of link delays.
    #[test]
    fn routing_consistency(
        n_hosts in 2usize..6,
        extra_edges in prop::collection::vec((0usize..8, 0usize..8, 1u64..60), 0..8),
    ) {
        let mut b = TopologyBuilder::new();
        let hosts: Vec<NodeId> = (0..n_hosts).map(|i| b.host(format!("h{i}"))).collect();
        let routers: Vec<NodeId> = (0..3).map(|i| b.router(format!("r{i}"))).collect();
        let all: Vec<NodeId> = hosts.iter().chain(&routers).copied().collect();
        // A spanning chain guarantees connectivity.
        for w in all.windows(2) {
            b.link(w[0], w[1], LinkSpec::new(1e8, SimDuration::from_millis(1)));
        }
        for (x, y, ms) in extra_edges {
            let a = all[x % all.len()];
            let c = all[y % all.len()];
            if a != c {
                b.link(a, c, LinkSpec::new(1e8, SimDuration::from_millis(ms)));
            }
        }
        let topo = b.build();
        for &s in &hosts {
            for &d in &hosts {
                if s == d { continue; }
                let route = topo.route(s, d).expect("connected");
                prop_assert_eq!(topo.next_hop(s, d), Some(route[0]));
                let sum = route.iter()
                    .map(|l| topo.link_spec(*l).delay)
                    .fold(SimDuration::ZERO, |a, b| a + b);
                prop_assert_eq!(topo.path_delay(s, d), Some(sum));
            }
        }
    }

    /// The demand-driven route cache is byte-identical to an eager
    /// all-pairs computation and to an independent reference.
    ///
    /// Random graphs with every link at the same delay (so equal-cost
    /// ties abound): (a) each cached route is optimal under the
    /// lexicographic `(delay, hops)` cost of an independent
    /// Floyd–Warshall; (b) the full first-hop tables of a lazily queried
    /// topology, an eagerly warmed one (`warm_all_routes`, the old
    /// all-pairs behaviour), and a second same-spec build queried in
    /// reverse order are all identical — tie-breaks depend only on the
    /// topology, never on query order or cache state.
    #[test]
    fn route_cache_matches_reference_all_pairs(
        n_hosts in 2usize..6,
        extra_edges in prop::collection::vec((0usize..9, 0usize..9), 0..10),
    ) {
        let delay = SimDuration::from_millis(1);
        let n = n_hosts + 3;
        // Spanning chain plus random extras, all the same delay.
        let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        for &(x, y) in &extra_edges {
            let (a, c) = (x % n, y % n);
            if a != c {
                edges.push((a, c));
            }
        }
        let build = || {
            let mut b = TopologyBuilder::new();
            let all: Vec<NodeId> = (0..n)
                .map(|i| if i < n_hosts { b.host(format!("h{i}")) } else { b.router(format!("r{i}")) })
                .collect();
            for &(a, c) in &edges {
                b.link(all[a], all[c], LinkSpec::new(1e8, delay));
            }
            b.build()
        };

        // Independent reference: Floyd–Warshall over (delay_ns, hops).
        let inf = (u64::MAX, u32::MAX);
        let mut dist = vec![vec![inf; n]; n];
        for (d, row) in dist.iter_mut().enumerate() {
            row[d] = (0, 0);
        }
        for &(a, c) in &edges {
            let w = (delay.as_nanos(), 1u32);
            dist[a][c] = dist[a][c].min(w);
            dist[c][a] = dist[c][a].min(w);
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    if dist[i][k] != inf && dist[k][j] != inf {
                        let via = (dist[i][k].0 + dist[k][j].0, dist[i][k].1 + dist[k][j].1);
                        dist[i][j] = dist[i][j].min(via);
                    }
                }
            }
        }

        let lazy = build();
        for (s, dist_s) in dist.iter().enumerate() {
            for (d, &ref_sd) in dist_s.iter().enumerate() {
                if s == d { continue; }
                let route = lazy.route(NodeId(s), NodeId(d));
                if ref_sd == inf {
                    prop_assert_eq!(route, None);
                    continue;
                }
                let route = route.expect("reference says reachable");
                prop_assert_eq!(route.len() as u32, ref_sd.1, "hop count optimal");
                let sum: u64 = route.iter().map(|l| lazy.link_spec(*l).delay.as_nanos()).sum();
                prop_assert_eq!(sum, ref_sd.0, "delay optimal");
            }
        }

        let table = |t: &Topology, pairs: &[(usize, usize)]| -> Vec<Option<microgrid::netsim::LinkId>> {
            pairs.iter().map(|&(s, d)| t.next_hop(NodeId(s), NodeId(d))).collect()
        };
        let pairs: Vec<(usize, usize)> =
            (0..n).flat_map(|s| (0..n).map(move |d| (s, d))).filter(|(s, d)| s != d).collect();
        let mut reversed = pairs.clone();
        reversed.reverse();

        let eager = build();
        eager.warm_all_routes();
        prop_assert_eq!(eager.routed_sources(), n);
        prop_assert_eq!(table(&eager, &pairs), table(&lazy, &pairs), "eager == lazy");

        let second = build();
        let mut from_rev: Vec<_> = table(&second, &reversed);
        from_rev.reverse();
        prop_assert_eq!(from_rev, table(&lazy, &pairs), "query order irrelevant");
    }

    /// The executor delivers timers in order for arbitrary delay sets.
    #[test]
    fn executor_fires_in_time_order(delays in prop::collection::vec(0u64..1_000_000u64, 1..40)) {
        let mut sim = Simulation::new(5);
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        for d in delays {
            let log = log.clone();
            sim.spawn(async move {
                sleep(SimDuration::from_nanos(d)).await;
                log.borrow_mut().push(d);
            });
        }
        sim.run_to_completion();
        let fired = log.borrow().clone();
        let mut sorted = fired.clone();
        sorted.sort_unstable();
        prop_assert_eq!(fired, sorted);
    }
}

/// Double-run determinism backstop: one full figure scenario (an NPB
/// kernel on the alpha-cluster MicroGrid), executed twice from the same
/// seed, must produce byte-identical serialized metrics snapshots. This
/// is the end-to-end check behind the invariants `mgrid-lint` enforces
/// statically (docs/LINTS.md): no wall clock, no entropy-seeded hashers,
/// no ambient randomness, no OS threads in the simulation core.
#[test]
fn same_seed_runs_are_byte_identical() {
    use microgrid::apps::npb::{self, NpbBenchmark, NpbClass, NpbResult};
    use microgrid::mpi::MpiParams;
    use microgrid::{presets, VirtualGrid};
    use std::future::Future;
    use std::pin::Pin;

    fn metrics_digest(seed: u64) -> String {
        let mut sim = Simulation::new(seed);
        let results = sim.block_on(async move {
            let mut config = presets::alpha_cluster();
            config.seed = seed;
            let grid = VirtualGrid::build(config).expect("build");
            grid.mpirun_all(MpiParams::default(), move |comm| {
                Box::pin(npb::run(NpbBenchmark::IS, comm, NpbClass::S, None))
                    as Pin<Box<dyn Future<Output = NpbResult>>>
            })
            .await
        });
        for r in &results {
            assert!(r.verified, "{} failed verification: {r:?}", r.benchmark);
        }
        let snapshot = sim.obs().metrics().snapshot();
        assert!(!snapshot.is_empty(), "scenario recorded no metrics");
        serde_json::to_string(&snapshot).expect("snapshot serializes")
    }

    let first = metrics_digest(42);
    let second = metrics_digest(42);
    assert_eq!(first, second, "same-seed runs diverged");

    // A different seed must actually change the digest, proving the
    // comparison above is sensitive to the stochastic model state and
    // not vacuously equal.
    let other = metrics_digest(43);
    assert_ne!(first, other, "seed does not reach the metrics");
}

/// Sharded-engine backstop for the figure pipeline: the same set of
/// independent scenarios run (a) inline on this thread, (b) through the
/// job pool with one worker, and (c) through the job pool with four
/// workers must produce byte-identical serialized results and metrics,
/// in submission order. This is the property `MGRID_SHARDS` relies on
/// (docs/PARALLEL.md): shard count moves only the wall clock, never a
/// byte of output.
#[test]
fn sharded_job_pool_is_byte_identical_to_sequential() {
    use microgrid::apps::npb::{self, NpbBenchmark, NpbClass, NpbResult};
    use microgrid::desim::shard::run_jobs;
    use microgrid::mpi::MpiParams;
    use microgrid::{presets, VirtualGrid};
    use std::future::Future;
    use std::pin::Pin;

    fn scenario(seed: u64, bench: NpbBenchmark) -> String {
        let mut sim = Simulation::new(seed);
        let results = sim.block_on(async move {
            let mut config = presets::alpha_cluster();
            config.seed = seed;
            let grid = VirtualGrid::build(config).expect("build");
            grid.mpirun_all(MpiParams::default(), move |comm| {
                Box::pin(npb::run(bench, comm, NpbClass::S, None))
                    as Pin<Box<dyn Future<Output = NpbResult>>>
            })
            .await
        });
        let snapshot = sim.obs().metrics().snapshot();
        assert!(!snapshot.is_empty(), "scenario recorded no metrics");
        format!(
            "{results:?}|{}",
            serde_json::to_string(&snapshot).expect("snapshot serializes")
        )
    }

    const CASES: [(u64, NpbBenchmark); 6] = [
        (7, NpbBenchmark::IS),
        (7, NpbBenchmark::EP),
        (11, NpbBenchmark::MG),
        (13, NpbBenchmark::IS),
        (17, NpbBenchmark::EP),
        (19, NpbBenchmark::MG),
    ];

    let jobs = || -> Vec<Box<dyn FnOnce() -> String + Send>> {
        CASES
            .iter()
            .map(|&(seed, bench)| {
                Box::new(move || scenario(seed, bench)) as Box<dyn FnOnce() -> String + Send>
            })
            .collect()
    };

    let inline: Vec<String> = CASES.iter().map(|&(s, b)| scenario(s, b)).collect();
    let one_worker = run_jobs(1, jobs());
    let four_workers = run_jobs(4, jobs());

    assert_eq!(inline, one_worker, "one-worker pool diverged from inline");
    assert_eq!(
        inline, four_workers,
        "four-worker pool diverged from inline"
    );

    // Sensitivity check: every scenario digest is distinct, so the
    // equalities above compare real per-scenario output, not a shared
    // constant.
    let distinct: std::collections::BTreeSet<&String> = inline.iter().collect();
    assert_eq!(distinct.len(), CASES.len(), "scenario digests collide");
}

// --- Sharded-engine property: random chain grids match sequential -----
//
// Random chain-of-sites topologies, split one site per shard, must
// deliver exactly what the sequential engine delivers — with and without
// a scripted WAN outage, and with live adaptive-lookahead advice wired
// through `Network::outgoing_cut_lookahead`. This is the event-driven
// engine's core contract (docs/PARALLEL.md): shard count and lookahead
// advice move only the wall clock, never a byte of output.

/// One delivery at a receiving host: (arrival ns, receiver site, value).
type ChainLog = Vec<(u64, u32, u32)>;

/// A shard-crossing message: the packet plus the node it arrives at.
type ChainCross = (NodeId, Packet);

const CHAIN_MSGS: u32 = 2;
const CHAIN_BYTES: u64 = 20_000;
/// Scripted outage window on the first WAN hop (virtual ns) — instants
/// every replica knows, so the fault is applied identically everywhere.
const CHAIN_DOWN_NS: u64 = 50_000_000;
const CHAIN_UP_NS: u64 = 180_000_000;

/// `sites` LAN islands (host `h{i}` behind router `r{i}`) joined in a
/// chain by WAN hops `r{i}`–`r{i+1}` with per-hop delays `wan_ms`.
fn build_chain(sites: usize, wan_ms: &[u64]) -> (Topology, Vec<NodeId>, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let hosts: Vec<NodeId> = (0..sites).map(|i| b.host(format!("h{i}"))).collect();
    let routers: Vec<NodeId> = (0..sites).map(|i| b.router(format!("r{i}"))).collect();
    for i in 0..sites {
        b.link(
            hosts[i],
            routers[i],
            LinkSpec::new(100e6, SimDuration::from_micros(50)),
        );
    }
    for i in 0..sites - 1 {
        b.link(
            routers[i],
            routers[i + 1],
            LinkSpec::new(45e6, SimDuration::from_millis(wan_ms[i])),
        );
    }
    (b.build(), hosts, routers)
}

/// Spawn the scripted outage into the current simulation: both
/// directions of the `r0`–`r1` WAN hop down during
/// `[CHAIN_DOWN_NS, CHAIN_UP_NS)`.
fn spawn_chain_outage(net: &Network) {
    let net = net.clone();
    spawn(async move {
        let wan = {
            let topo = net.topology();
            let r0 = topo.node_by_name("r0").unwrap();
            let r1 = topo.node_by_name("r1").unwrap();
            topo.links_between(r0, r1)
        };
        sleep_until(SimTime::from_nanos(CHAIN_DOWN_NS)).await;
        for l in &wan {
            net.set_link_down(*l, true);
        }
        sleep_until(SimTime::from_nanos(CHAIN_UP_NS)).await;
        for l in &wan {
            net.set_link_down(*l, false);
        }
    });
}

/// One replica of the chain grid. With `split` it simulates only site
/// `s` (exporting cut-crossing packets and publishing adaptive lookahead
/// from its live fault state); without, it runs every site inline — the
/// sequential reference.
fn chain_shard_factory(
    s: usize,
    sites: usize,
    wan_ms: Vec<u64>,
    seed: u64,
    faults: bool,
    split: bool,
    h: ShardHandle<ChainCross>,
) -> ShardRun<ChainCross, ChainLog> {
    let sim = Simulation::new(seed);
    let log: Rc<RefCell<ChainLog>> = Rc::new(RefCell::new(Vec::new()));
    let net_slot: Rc<RefCell<Option<Network>>> = Rc::new(RefCell::new(None));
    let log2 = log.clone();
    let net_slot2 = net_slot.clone();
    let net_slot3 = net_slot.clone();
    let root = sim.spawn(async move {
        let (topo, hosts, routers) = build_chain(sites, &wan_ms);
        let net = Network::new(topo, VirtualClock::identity(), NetParams::default());
        net.set_transfer_namespace(s as u64);
        if faults {
            spawn_chain_outage(&net);
        }
        if split {
            let owned: FxHashSet<NodeId> = [hosts[s], routers[s]].into_iter().collect();
            let hs = hosts.clone();
            let rs = routers.clone();
            net.set_shard_ownership(
                owned,
                Box::new(move |node, at, pkt| {
                    let to = hs
                        .iter()
                        .position(|&x| x == node)
                        .or_else(|| rs.iter().position(|&x| x == node))
                        .expect("cross-shard packets land on grid nodes");
                    h.export(to, at, (node, pkt));
                }),
            );
        }
        *net_slot2.borrow_mut() = Some(net.clone());
        let owned_sites: Vec<usize> = if split { vec![s] } else { (0..sites).collect() };
        let mut waits = Vec::new();
        for site in owned_sites {
            let rx = net.endpoint(hosts[site]).bind(7);
            let log = log2.clone();
            waits.push(spawn(async move {
                for _ in 0..CHAIN_MSGS {
                    let m = rx.recv().await.unwrap();
                    log.borrow_mut().push((
                        now().as_nanos(),
                        site as u32,
                        *m.payload.downcast_ref::<u32>().unwrap(),
                    ));
                }
            }));
            let tx = net.endpoint(hosts[site]);
            let dest = hosts[(site + 1) % sites];
            waits.push(spawn(async move {
                for k in 0..CHAIN_MSGS {
                    tx.send(
                        dest,
                        7,
                        1,
                        CHAIN_BYTES,
                        Payload::new((site as u32) * 16 + k),
                    )
                    .await
                    .unwrap();
                }
            }));
        }
        for w in waits {
            w.await;
        }
    });
    ShardRun {
        sim,
        deliver: Box::new(move |sim, imp: Import<ChainCross>| {
            let net = net_slot
                .borrow()
                .clone()
                .expect("replica built in the first epoch");
            sim.spawn(async move {
                sleep_until(imp.time).await;
                let (node, pkt) = imp.msg;
                net.inject_arrival(node, pkt);
            });
        }),
        root_done: Box::new(move || root.is_finished()),
        advise: if split {
            Some(Box::new(move |at| {
                let Some(net) = net_slot3.borrow().clone() else {
                    // Replica not built yet: claim nothing beyond the plan.
                    return LookaheadAdvice::default();
                };
                // Node names are `h{site}` / `r{site}`, so the site index
                // is the name's suffix.
                let group = |n: NodeId| {
                    let topo = net.topology();
                    topo.node_name(n)[1..].parse::<usize>().unwrap()
                };
                let out = net
                    .outgoing_cut_lookahead(group, s)
                    // No usable outgoing cut link: cannot export at all.
                    .unwrap_or(SimDuration::MAX);
                let valid_until = if faults {
                    [CHAIN_DOWN_NS, CHAIN_UP_NS]
                        .into_iter()
                        .find(|&t| t > at.as_nanos())
                        .map(SimTime::from_nanos)
                } else {
                    None
                };
                LookaheadAdvice {
                    out_lookahead: Some(out),
                    valid_until,
                }
            }))
        } else {
            None
        },
        finish: Box::new(move |_| log.borrow().clone()),
    }
}

/// Run the chain grid either sequentially (one shard, every site) or
/// split one-site-per-shard with the per-pair lookahead matrix of the
/// chain's WAN hops, and return the merged delivery log in canonical
/// order.
fn run_chain(split: bool, sites: usize, wan_ms: &[u64], seed: u64, faults: bool) -> ChainLog {
    let min_wan = SimDuration::from_millis(*wan_ms.iter().min().unwrap());
    let shards = if split { sites } else { 1 };
    let mut plan = ShardPlan::connected(shards, min_wan);
    if split {
        // Adjacent sites see their own hop's delay; non-adjacent pairs
        // have no direct link, so the engine treats them as unreachable
        // in one hop (`None`).
        let mut matrix = vec![vec![None; sites]; sites];
        for (i, &ms) in wan_ms.iter().enumerate() {
            let d = Some(SimDuration::from_millis(ms));
            matrix[i][i + 1] = d;
            matrix[i + 1][i] = d;
        }
        plan = plan.with_lookahead_matrix(matrix);
    }
    let factories: Vec<_> = (0..shards)
        .map(|s| {
            let wans = wan_ms.to_vec();
            Box::new(move |h| chain_shard_factory(s, sites, wans, seed, faults, split, h))
                as Box<dyn FnOnce(ShardHandle<ChainCross>) -> ShardRun<ChainCross, ChainLog> + Send>
        })
        .collect();
    let mut merged: ChainLog = run_sharded(plan, factories).concat();
    merged.sort_unstable();
    merged
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random small chain grids (2–4 sites, random WAN delays, random
    /// seeds, scripted outage on or off), split one site per shard, are
    /// byte-identical to the one-shard sequential run.
    #[test]
    fn sharded_chain_grid_matches_sequential(
        sites in 2usize..5,
        wan_ms in prop::collection::vec(5u64..30, 3..4),
        seed in 1u64..1_000,
        faults in any::<bool>(),
    ) {
        let wans = &wan_ms[..sites - 1];
        let seq = run_chain(false, sites, wans, seed, faults);
        prop_assert_eq!(
            seq.len(),
            sites * CHAIN_MSGS as usize,
            "reference must deliver everything"
        );
        let par = run_chain(true, sites, wans, seed, faults);
        prop_assert_eq!(par, seq);
    }
}
