//! End-to-end integration: configuration -> virtual Grid -> middleware ->
//! MPI workload, across all the crates at once.

use std::future::Future;
use std::pin::Pin;

use microgrid::apps::npb::{self, NpbBenchmark, NpbClass, NpbResult};
use microgrid::desim::Simulation;
use microgrid::gis::virtualization::{virtual_hosts_filter, MAPPED_PHYSICAL};
use microgrid::middleware::{
    submit_job, AppFuture, AppInstance, ExecutableRegistry, Gatekeeper, JobSpec, JobStatus,
};
use microgrid::mpi::MpiParams;
use microgrid::{presets, GridConfig, VirtualGrid};

#[test]
fn config_json_roundtrips_and_builds() {
    let config = presets::alpha_cluster();
    let json = config.to_json();
    let parsed = GridConfig::from_json(&json).expect("parse");
    let mut sim = Simulation::new(1);
    sim.block_on(async move {
        let grid = VirtualGrid::build(parsed).expect("build from parsed JSON");
        assert_eq!(grid.host_names().len(), 4);
    });
}

#[test]
fn gis_records_point_to_real_mappings() {
    let mut sim = Simulation::new(2);
    sim.block_on(async {
        let config = presets::hpvm_cluster();
        let grid = VirtualGrid::build(config.clone()).expect("build");
        let gis = grid.gis();
        let gis = gis.borrow();
        for rec in gis.search_all(&virtual_hosts_filter(&config.name)) {
            // Every Mapped_Physical_Resource names an actual physical host.
            let phys = rec.get(MAPPED_PHYSICAL).expect("mapping attribute");
            assert!(
                grid.physical_host(phys).is_some(),
                "GIS names unknown physical host {phys}"
            );
        }
    });
}

#[test]
fn gatekeeper_submission_across_the_virtual_network() {
    let mut sim = Simulation::new(3);
    sim.block_on(async {
        let grid = VirtualGrid::build(presets::alpha_cluster()).expect("build");
        let registry = ExecutableRegistry::new();
        registry.register("touch", |inst: AppInstance| {
            Box::pin(async move {
                inst.ctx.compute_mops(10.0).await;
            }) as AppFuture
        });
        let gk = grid.spawn_process("alpha2", "gatekeeper").expect("gk");
        Gatekeeper::start(gk, registry);
        let client = grid.spawn_process("alpha0", "client").expect("client");
        let status = submit_job(&client, "alpha2", &JobSpec::simple("touch"))
            .await
            .expect("submission");
        assert_eq!(status, JobStatus::Done);
    });
}

fn run_full(bench: NpbBenchmark, baseline: bool, seed: u64) -> NpbResult {
    let mut sim = Simulation::new(seed);
    let results = sim.block_on(async move {
        let mut config = presets::alpha_cluster();
        config.seed = seed;
        let grid = if baseline {
            VirtualGrid::build_baseline(config).expect("build")
        } else {
            VirtualGrid::build(config).expect("build")
        };
        grid.mpirun_all(MpiParams::default(), move |comm| {
            Box::pin(npb::run(bench, comm, NpbClass::S, None))
                as Pin<Box<dyn Future<Output = NpbResult>>>
        })
        .await
    });
    results.into_iter().next().expect("rank 0")
}

#[test]
fn every_benchmark_verifies_on_the_microgrid() {
    for bench in NpbBenchmark::all() {
        let r = run_full(bench, false, 11);
        assert!(r.verified, "{} failed verification: {r:?}", r.benchmark);
        assert!(r.virtual_seconds > 0.0);
    }
}

#[test]
fn microgrid_tracks_baseline_for_all_benchmarks() {
    for bench in NpbBenchmark::all() {
        let phys = run_full(bench, true, 12);
        let mgrid = run_full(bench, false, 12);
        let err = (mgrid.virtual_seconds - phys.virtual_seconds).abs() / phys.virtual_seconds;
        assert!(
            err < 0.12,
            "{}: physical {:.3}s vs MicroGrid {:.3}s ({:.1}% off)",
            bench.name(),
            phys.virtual_seconds,
            mgrid.virtual_seconds,
            err * 100.0
        );
    }
}

#[test]
fn same_seed_is_bit_deterministic_end_to_end() {
    let a = run_full(NpbBenchmark::MG, false, 99);
    let b = run_full(NpbBenchmark::MG, false, 99);
    assert_eq!(a.virtual_seconds, b.virtual_seconds);
    assert_eq!(a.checksum, b.checksum);
}

#[test]
fn different_seeds_perturb_timing_but_not_results() {
    let a = run_full(NpbBenchmark::MG, false, 100);
    let b = run_full(NpbBenchmark::MG, false, 101);
    // Same numerical outcome...
    assert_eq!(a.checksum, b.checksum);
    assert!(a.verified && b.verified);
    // ...but OS noise and daemon phases differ, so timing differs a bit
    // (and only a bit).
    assert_ne!(a.virtual_seconds, b.virtual_seconds);
    let drift = (a.virtual_seconds - b.virtual_seconds).abs() / a.virtual_seconds;
    assert!(drift < 0.05, "seed drift {drift}");
}

#[test]
fn memory_capacity_gates_processes_end_to_end() {
    let mut sim = Simulation::new(4);
    sim.block_on(async {
        let mut config = presets::alpha_cluster();
        // Tiny memory on alpha3: 3.5 KB fits three processes' overhead
        // (1 KB each) but not a fourth.
        config.virtual_hosts[3].spec.memory_bytes = 3 * 1024 + 512;
        let grid = VirtualGrid::build(config).expect("build");
        let _a = grid.spawn_process("alpha3", "p1").expect("first fits");
        let _b = grid.spawn_process("alpha3", "p2").expect("second fits");
        let _c = grid.spawn_process("alpha3", "p3").expect("third fits");
        assert!(
            grid.spawn_process("alpha3", "p4").is_err(),
            "fourth process must exceed the 3.5 KB cap"
        );
    });
}
