//! Failure injection: the system must degrade predictably, not wedge.

use microgrid::desim::time::{SimDuration, SimTime};
use microgrid::desim::vclock::VirtualClock;
use microgrid::desim::{spawn, Simulation};
use microgrid::middleware::{
    submit_job, AppFuture, AppInstance, ExecutableRegistry, Gatekeeper, JobSpec, JobStatus,
};
use microgrid::netsim::{LinkSpec, NetParams, Network, Payload, TopologyBuilder};
use microgrid::{presets, VirtualGrid};

/// A queue smaller than a single packet drops everything; the reliable
/// sender must keep retransmitting (never complete) rather than wedge the
/// simulation, and the drop counters must tell the story.
#[test]
fn black_hole_link_retransmits_forever_without_wedging() {
    let mut sim = Simulation::new(1);
    sim.spawn(async {
        let mut b = TopologyBuilder::new();
        let a = b.host("a");
        let z = b.host("z");
        b.link(
            a,
            z,
            LinkSpec {
                bandwidth_bps: 10e6,
                delay: SimDuration::from_millis(1),
                queue_bytes: 100, // smaller than one packet: total loss
            },
        );
        let net = Network::new(b.build(), VirtualClock::identity(), NetParams::default());
        let _rx = net.endpoint(z).bind(1);
        let ep = net.endpoint(a);
        let h = spawn(async move { ep.send(z, 1, 1, 50_000, Payload::empty()).await });
        mgrid_desim::sleep(SimDuration::from_secs(30)).await;
        assert!(!h.is_finished(), "send cannot succeed over a black hole");
        let stats = net.stats();
        assert!(stats.packet_drops > 10, "drops: {}", stats.packet_drops);
        assert!(
            stats.retransmit_rounds > 3,
            "retransmit rounds: {}",
            stats.retransmit_rounds
        );
        assert_eq!(stats.messages_delivered, 0);
    });
    // The run must terminate (bounded), not spin at one instant.
    sim.run_until(SimTime::from_secs_f64(31.0));
}

/// Datagrams are fire-and-forget: losses are silent and counted.
#[test]
fn datagram_loss_is_silent() {
    let mut sim = Simulation::new(2);
    sim.spawn(async {
        let mut b = TopologyBuilder::new();
        let a = b.host("a");
        let z = b.host("z");
        b.link(
            a,
            z,
            LinkSpec {
                bandwidth_bps: 1e6,
                delay: SimDuration::from_micros(100),
                queue_bytes: 1_600, // one packet fits; bursts drop
            },
        );
        let net = Network::new(b.build(), VirtualClock::identity(), NetParams::default());
        let rx = net.endpoint(z).bind(5);
        let ep = net.endpoint(a);
        for i in 0..20u32 {
            ep.send_datagram(z, 5, 1, 1_000, Payload::new(i));
        }
        mgrid_desim::sleep(SimDuration::from_secs(1)).await;
        let got = {
            let mut n = 0;
            while rx.try_recv().is_some() {
                n += 1;
            }
            n
        };
        let stats = net.stats();
        assert!(got >= 1, "at least the first datagram fits");
        assert!(got < 20, "the burst must overflow the 1-packet queue");
        assert_eq!(got as u64, stats.datagrams_delivered);
        assert!(stats.packet_drops > 0);
    });
    sim.run_until(SimTime::from_secs_f64(2.0));
}

/// A job whose processes cannot start (memory exhausted) reports
/// StartFailure to the client instead of hanging.
#[test]
fn gatekeeper_reports_start_failure_on_oom() {
    let mut sim = Simulation::new(3);
    sim.block_on(async {
        let mut config = presets::alpha_cluster();
        // Gatekeeper + jobmanager fit; the job's processes do not.
        config.virtual_hosts[1].spec.memory_bytes = 2 * 1024 + 512;
        let grid = VirtualGrid::build(config).expect("build");
        let registry = ExecutableRegistry::new();
        registry.register("hog", |inst: AppInstance| {
            Box::pin(async move {
                inst.ctx.compute_mops(1.0).await;
            }) as AppFuture
        });
        let gk = grid.spawn_process("alpha1", "gatekeeper").expect("gk fits");
        Gatekeeper::start(gk, registry);
        let client = grid.spawn_process("alpha0", "client").expect("client");
        let status = submit_job(&client, "alpha1", &JobSpec::simple("hog"))
            .await
            .expect("submission completes");
        assert!(
            matches!(status, JobStatus::StartFailure(_)),
            "expected StartFailure, got {status:?}"
        );
    });
}

/// Partitioned topologies fail sends fast (unreachable), and the rest of
/// the grid keeps working.
#[test]
fn partitioned_network_fails_fast() {
    let mut sim = Simulation::new(4);
    sim.block_on(async {
        let mut config = presets::alpha_cluster();
        // Cut alpha3's only link.
        config
            .network
            .links
            .retain(|l| l.a != "alpha3" && l.b != "alpha3");
        let grid = VirtualGrid::build(config).expect("build");
        let a0 = grid.spawn_process("alpha0", "p0").unwrap();
        let a1 = grid.spawn_process("alpha1", "p1").unwrap();
        let s0 = a0.bind(9);
        let s1 = a1.bind(9);
        // Reachable pair still works.
        let send = spawn(async move { s0.send_to("alpha1", 9, 1_000, Payload::new(7u32)).await });
        let msg = s1.recv().await.unwrap();
        assert_eq!(*msg.payload.downcast::<u32>().unwrap(), 7);
        send.await.unwrap();
        // The island is unreachable, and the error is immediate.
        let s0b = a0.bind(10);
        let err = s0b
            .send_to("alpha3", 9, 1_000, Payload::empty())
            .await
            .unwrap_err();
        assert!(matches!(
            err,
            microgrid::middleware::SockError::Net(microgrid::netsim::NetError::Unreachable)
        ));
    });
}

/// Killing a process mid-compute releases its CPU request without
/// wedging the kernel or the other processes.
#[test]
fn process_exit_mid_compute_is_clean() {
    let mut sim = Simulation::new(5);
    sim.block_on(async {
        let grid = VirtualGrid::build_baseline(presets::alpha_cluster()).unwrap();
        let victim = grid.spawn_process("alpha0", "victim").unwrap();
        let survivor = grid.spawn_process("alpha0", "survivor").unwrap();
        let v = victim.clone();
        let h = spawn(async move {
            v.compute_mops(533.0 * 100.0).await; // 100 s of CPU
        });
        mgrid_desim::sleep(SimDuration::from_millis(50)).await;
        victim.exit();
        // The survivor now owns the whole CPU.
        let t0 = mgrid_desim::now();
        survivor.compute_mops(533.0).await;
        let wall = (mgrid_desim::now() - t0).as_secs_f64();
        assert!((wall - 1.0).abs() < 0.05, "survivor wall {wall}");
        // The victim's in-flight compute halts permanently (crash
        // semantics: a dead process's CPU request never completes) —
        // parked, not completed, and not wedging the simulation.
        mgrid_desim::sleep(SimDuration::from_millis(1)).await;
        assert!(!h.is_finished(), "dead process's compute must not return");
    });
}
