//! CACTUS WaveToy across the fictional vBNS coupled-cluster testbed
//! (paper Fig 13): two virtual hosts at UCSD, two at UIUC, joined over a
//! wide-area path whose bottleneck we sweep — the kind of what-if study
//! the MicroGrid was built for.
//!
//! ```text
//! cargo run --release --example wan_cactus
//! ```

use std::future::Future;
use std::pin::Pin;

use microgrid::apps::wavetoy::{self, WaveToyConfig, WaveToyResult};
use microgrid::desim::Simulation;
use microgrid::mpi::MpiParams;
use microgrid::{presets, VirtualGrid};

fn run(bottleneck_bps: f64) -> WaveToyResult {
    let mut sim = Simulation::new(13);
    let results = sim.block_on(async move {
        let grid = VirtualGrid::build(presets::vbns_grid(bottleneck_bps)).expect("valid config");
        let wt = WaveToyConfig::small();
        grid.mpirun_all(MpiParams::default(), move |comm| {
            Box::pin(wavetoy::run(comm, wt, None)) as Pin<Box<dyn Future<Output = WaveToyResult>>>
        })
        .await
    });
    results.into_iter().next().expect("rank 0")
}

fn main() {
    println!("WaveToy 50^3 over the vBNS: UCSD (2 ranks) <-> UIUC (2 ranks)");
    println!(
        "{:<16} {:>14} {:>10}",
        "bottleneck", "virtual time", "verified"
    );
    let mut baseline = None;
    for bw in [622e6, 155e6, 10e6, 1e6] {
        let r = run(bw);
        let base = *baseline.get_or_insert(r.virtual_seconds);
        println!(
            "{:<16} {:>12.3}s {:>10}   ({:+.1}% vs OC12)",
            format!("{:.0} Mb/s", bw / 1e6),
            r.virtual_seconds,
            r.verified,
            (r.virtual_seconds / base - 1.0) * 100.0
        );
    }
    println!();
    println!("The 25 ms one-way WAN latency dominates each halo exchange, so");
    println!("bandwidth barely matters until the link is very thin — the");
    println!("paper's conclusion that Grid applications must be latency tolerant.");
}
