//! Run a NAS Parallel Benchmark on the virtual Alpha cluster and compare
//! against the "physical grid" baseline — one cell of the paper's Fig 10.
//!
//! ```text
//! cargo run --release --example npb_cluster            # MG class S
//! cargo run --release --example npb_cluster -- LU A    # pick bench+class
//! ```

use std::future::Future;
use std::pin::Pin;

use microgrid::apps::npb::{self, NpbBenchmark, NpbClass, NpbResult};
use microgrid::desim::Simulation;
use microgrid::mpi::MpiParams;
use microgrid::{presets, VirtualGrid};

fn run(baseline: bool, bench: NpbBenchmark, class: NpbClass) -> NpbResult {
    let mut sim = Simulation::new(7);
    let results = sim.block_on(async move {
        let config = presets::alpha_cluster();
        let grid = if baseline {
            VirtualGrid::build_baseline(config).expect("valid config")
        } else {
            VirtualGrid::build(config).expect("valid config")
        };
        grid.mpirun_all(MpiParams::default(), move |comm| {
            Box::pin(npb::run(bench, comm, class, None)) as Pin<Box<dyn Future<Output = NpbResult>>>
        })
        .await
    });
    results.into_iter().next().expect("rank 0")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench = match args.first().map(String::as_str) {
        Some("EP") => NpbBenchmark::EP,
        Some("BT") => NpbBenchmark::BT,
        Some("LU") => NpbBenchmark::LU,
        Some("IS") => NpbBenchmark::IS,
        Some("MG") | None => NpbBenchmark::MG,
        Some(other) => {
            eprintln!("unknown benchmark {other:?} (EP|BT|LU|MG|IS)");
            std::process::exit(2);
        }
    };
    let class = match args.get(1).map(String::as_str) {
        Some("A") => NpbClass::A,
        Some("S") | None => NpbClass::S,
        Some(other) => {
            eprintln!("unknown class {other:?} (S|A)");
            std::process::exit(2);
        }
    };
    println!(
        "NPB {} class {} on 4 virtual Alpha hosts",
        bench.name(),
        class.name()
    );

    let phys = run(true, bench, class);
    println!(
        "  physical grid : {:8.3} virtual s  (verified: {})",
        phys.virtual_seconds, phys.verified
    );
    let mgrid = run(false, bench, class);
    println!(
        "  MicroGrid     : {:8.3} virtual s  (verified: {})",
        mgrid.virtual_seconds, mgrid.verified
    );
    let err = (mgrid.virtual_seconds - phys.virtual_seconds) / phys.virtual_seconds * 100.0;
    println!("  modeling error: {err:+.2}%  (paper's Fig 10: within 2-4%)");
}
