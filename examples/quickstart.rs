//! Quickstart: bring up a virtual Grid, inspect its GIS records, and
//! submit a job through the gatekeeper — the paper's §2.2 workflow.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use microgrid::desim::time::SimDuration;
use microgrid::desim::Simulation;
use microgrid::gis::virtualization::virtual_hosts_filter;
use microgrid::middleware::{
    submit_job, AppFuture, AppInstance, ExecutableRegistry, Gatekeeper, JobSpec, JobStatus,
};
use microgrid::{presets, VirtualGrid};

fn main() {
    // The whole virtual Grid lives inside one deterministic simulation.
    let mut sim = Simulation::new(42);
    sim.block_on(async {
        // 1. Build the paper's 4-node Alpha cluster as a virtual Grid.
        let grid = VirtualGrid::build(presets::alpha_cluster()).expect("valid config");
        println!(
            "virtual grid '{}' up: {} hosts, simulation rate {:.2}",
            grid.config().name,
            grid.host_names().len(),
            grid.rate()
        );

        // 2. Resource discovery through the GIS (Fig 3 records).
        let gis = grid.gis();
        for rec in gis
            .borrow()
            .search_all(&virtual_hosts_filter(&grid.config().name))
        {
            println!(
                "  GIS: {} -> mapped to {}, CpuSpeed={} Mops",
                rec.get("hn").unwrap_or("?"),
                rec.get("Mapped_Physical_Resource").unwrap_or("?"),
                rec.get("CpuSpeed").unwrap_or("?"),
            );
        }

        // 3. Register an "executable" and start a gatekeeper on alpha0.
        let registry = ExecutableRegistry::new();
        registry.register("hello-grid", |inst: AppInstance| {
            Box::pin(async move {
                // The app sees only virtual identities and virtual time.
                let t0 = inst.ctx.gettimeofday();
                inst.ctx.compute_mops(533.0).await; // one virtual CPU-second
                let t1 = inst.ctx.gettimeofday();
                println!(
                    "  [rank {}/{}] hello from {} — {:.3} virtual s of compute",
                    inst.rank,
                    inst.count,
                    inst.ctx.gethostname(),
                    t1.saturating_since(t0).as_secs_f64()
                );
            }) as AppFuture
        });
        let gk_ctx = grid
            .spawn_process("alpha0", "gatekeeper")
            .expect("gatekeeper process");
        Gatekeeper::start(gk_ctx, registry);

        // 4. Submit from another virtual host, Globus-style.
        let client = grid
            .spawn_process("alpha1", "client")
            .expect("client process");
        let spec = JobSpec::parse_rsl("&(executable=hello-grid)(count=3)").expect("valid RSL");
        println!("submitting {} to alpha0's gatekeeper...", spec.to_rsl());
        let status = submit_job(&client, "alpha0", &spec)
            .await
            .expect("submission");
        assert_eq!(status, JobStatus::Done);
        println!(
            "job done at virtual t={:.3}s (physical sim time {:.3}s)",
            client.gettimeofday().as_secs_f64(),
            mgrid_desim::now().as_secs_f64()
        );

        // 5. Virtual time really is scaled: sleep 1 virtual second.
        let before = client.gettimeofday();
        client.sleep_virtual(SimDuration::from_secs(1)).await;
        let after = client.gettimeofday();
        println!(
            "slept {:.2} virtual s (rate {:.2})",
            after.saturating_since(before).as_secs_f64(),
            grid.rate()
        );
    });
}
