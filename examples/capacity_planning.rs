//! Capacity planning with the MicroGrid: extrapolate to hardware you do
//! not own (paper §3.4.2, Fig 12) — how much would faster CPUs help each
//! benchmark if the network stays a slow 1 Mb/s / 50 ms WAN?
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use std::future::Future;
use std::pin::Pin;

use microgrid::apps::npb::{self, NpbBenchmark, NpbClass, NpbResult};
use microgrid::desim::Simulation;
use microgrid::mpi::MpiParams;
use microgrid::{presets, VirtualGrid};

fn run(bench: NpbBenchmark, cpu_mult: f64) -> NpbResult {
    let mut sim = Simulation::new(17);
    let results = sim.block_on(async move {
        let grid = VirtualGrid::build(presets::cpu_scaled_cluster(cpu_mult)).expect("valid config");
        grid.mpirun_all(MpiParams::default(), move |comm| {
            Box::pin(npb::run(bench, comm, NpbClass::S, None))
                as Pin<Box<dyn Future<Output = NpbResult>>>
        })
        .await
    });
    results.into_iter().next().expect("rank 0")
}

fn main() {
    println!("What-if: virtual CPUs 1x..8x, network pinned at 1 Mb/s + 50 ms");
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>10}   (normalized virtual time)",
        "bench", "1x", "2x", "4x", "8x"
    );
    for bench in [
        NpbBenchmark::MG,
        NpbBenchmark::BT,
        NpbBenchmark::LU,
        NpbBenchmark::EP,
    ] {
        let mut cells = Vec::new();
        let mut base = None;
        for mult in [1.0, 2.0, 4.0, 8.0] {
            let r = run(bench, mult);
            let b = *base.get_or_insert(r.virtual_seconds);
            cells.push(format!("{:.3}", r.virtual_seconds / b));
        }
        println!(
            "{:<6} {:>10} {:>10} {:>10} {:>10}",
            bench.name(),
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
    }
    println!();
    println!("EP approaches the ideal 0.125 at 8x; the others flatten where");
    println!("the fixed network share takes over — buy bandwidth, not just CPUs.");
}
