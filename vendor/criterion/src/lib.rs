//! Vendored, offline micro-benchmark harness.
//!
//! API-compatible with the subset of `criterion` the `mgrid-bench`
//! benches use: `Criterion`, `criterion_group!` / `criterion_main!`,
//! `benchmark_group` with `sample_size` / `throughput`, `bench_function`
//! / `bench_with_input`, `BenchmarkId`, `Throughput`, and
//! `Bencher::iter`. Timing is a simple mean over a fixed number of
//! wall-clock samples — adequate for tracking regressions by eye, with
//! none of real criterion's statistics, plotting, or state files.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from proving a value unused.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle passed to each bench function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(name, &b.samples, None);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A named cluster of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Record the per-iteration work amount for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark inside this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b.samples, self.throughput);
        self
    }

    /// Run a benchmark that receives an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.0),
            &b.samples,
            self.throughput,
        );
        self
    }

    /// Finish the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// A benchmark identifier within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identify a benchmark by its parameter value alone.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }

    /// Identify a benchmark by function name and parameter.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{param}", name.into()))
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many abstract elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Passed to the closure given to `bench_function`; runs the timed body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, collecting the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up iteration, then the measured samples.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let mut line = format!("{name:<50} {:>12} /iter", format_duration(mean));
    if let Some(t) = throughput {
        let per_sec = |n: u64| n as f64 / mean.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => {
                line.push_str(&format!("  {:>12.0} elem/s", per_sec(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  {:>12.0} B/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
