//! Vendored `#[derive(Serialize, Deserialize)]` macros.
//!
//! Implemented directly on `proc_macro` token trees (no `syn`/`quote`,
//! which are unavailable offline). Supports exactly what MicroGrid-rs
//! derives on: non-generic named structs, tuple structs, and enums with
//! unit / tuple / named-field variants, with no serde attributes. Enums
//! use the externally-tagged representation, matching real serde's
//! default, so JSON produced before vendoring parses identically.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<(String, VariantShape)>,
    },
}

/// Derive the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    gen_serialize(&shape)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derive the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    gen_deserialize(&shape)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------- parsing

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported by the vendored derive");
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
            other => panic!("serde_derive: unexpected token after struct name: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive: unexpected token after enum name: {other:?}"),
        },
        other => panic!("serde_derive: expected `struct` or `enum`, found `{other}`"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            // `#[...]` attribute (doc comments included).
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                } else {
                    panic!("serde_derive: stray `#` in input");
                }
            }
            // `pub` optionally followed by `(crate)` etc.
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive: expected identifier, found {other:?}"),
    }
}

/// Skip a type (or any token run) until a comma at angle-bracket depth 0.
fn skip_until_top_level_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        fields.push(expect_ident(&tokens, &mut i));
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field name, found {other:?}"),
        }
        skip_until_top_level_comma(&tokens, &mut i);
        i += 1; // past the comma (or end)
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut arity = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        arity += 1;
        skip_until_top_level_comma(&tokens, &mut i);
        i += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<(String, VariantShape)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        variants.push((name, shape));
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("serde_derive: explicit enum discriminants are not supported")
            }
            other => panic!("serde_derive: unexpected token after variant: {other:?}"),
        }
    }
    variants
}

// ---------------------------------------------------------------- codegen

const CONTENT: &str = "::serde::__private::Content";
const TO_CONTENT: &str = "::serde::__private::to_content";

fn gen_serialize(shape: &Shape) -> String {
    let (name, body) = match shape {
        Shape::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "__map.push((::std::string::String::from(\"{f}\"), {TO_CONTENT}(&self.{f})));\n"
                ));
            }
            (
                name,
                format!(
                    "let mut __map = ::std::vec::Vec::new();\n{pushes}\
                     __serializer.serialize_content({CONTENT}::Map(__map))"
                ),
            )
        }
        Shape::TupleStruct { name, arity: 1 } => (
            name,
            format!("__serializer.serialize_content({TO_CONTENT}(&self.0))"),
        ),
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("{TO_CONTENT}(&self.{i})"))
                .collect();
            (
                name,
                format!(
                    "__serializer.serialize_content({CONTENT}::Seq(vec![{}]))",
                    items.join(", ")
                ),
            )
        }
        Shape::UnitStruct { name } => (
            name,
            format!("__serializer.serialize_content({CONTENT}::Null)"),
        ),
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, vshape) in variants {
                match vshape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => \
                         {CONTENT}::Str(::std::string::String::from(\"{vname}\")),\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => {CONTENT}::Map(vec![(\
                         ::std::string::String::from(\"{vname}\"), {TO_CONTENT}(__f0))]),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> =
                            binds.iter().map(|b| format!("{TO_CONTENT}({b})")).collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {CONTENT}::Map(vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             {CONTENT}::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| format!("{f}: __f_{f}")).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), {TO_CONTENT}(__f_{f}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {CONTENT}::Map(vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             {CONTENT}::Map(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            (
                name,
                format!(
                    "let __content = match self {{\n{arms}}};\n\
                     __serializer.serialize_content(__content)"
                ),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn gen_deserialize(shape: &Shape) -> String {
    const CUSTOM: &str = "<__D::Error as ::serde::de::Error>::custom";
    const FROM_CONTENT: &str = "::serde::__private::from_content";
    const TAKE_FIELD: &str = "::serde::__private::take_field";

    let (name, body) = match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: {TAKE_FIELD}(&mut __map, \"{f}\").map_err({CUSTOM})?"))
                .collect();
            (
                name,
                format!(
                    "match __content {{\n\
                         {CONTENT}::Map(mut __map) => \
                             ::core::result::Result::Ok({name} {{ {} }}),\n\
                         __other => ::core::result::Result::Err({CUSTOM}(\
                             format!(\"expected object for struct {name}, got {{__other:?}}\"))),\n\
                     }}",
                    inits.join(", ")
                ),
            )
        }
        Shape::TupleStruct { name, arity: 1 } => (
            name,
            format!(
                "::core::result::Result::Ok({name}(\
                 {FROM_CONTENT}(__content).map_err({CUSTOM})?))"
            ),
        ),
        Shape::TupleStruct { name, arity } => {
            let pulls: Vec<String> = (0..*arity)
                .map(|_| {
                    format!(
                        "{FROM_CONTENT}(__it.next().expect(\"length checked\"))\
                         .map_err({CUSTOM})?"
                    )
                })
                .collect();
            (
                name,
                format!(
                    "match __content {{\n\
                         {CONTENT}::Seq(__seq) if __seq.len() == {arity} => {{\n\
                             let mut __it = __seq.into_iter();\n\
                             ::core::result::Result::Ok({name}({}))\n\
                         }}\n\
                         __other => ::core::result::Result::Err({CUSTOM}(\
                             format!(\"expected array of {arity} for {name}, got {{__other:?}}\"))),\n\
                     }}",
                    pulls.join(", ")
                ),
            )
        }
        Shape::UnitStruct { name } => (
            name,
            format!("{{ let _ = __content; ::core::result::Result::Ok({name}) }}"),
        ),
        Shape::Enum { name, variants } => {
            let mut str_arms = String::new();
            let mut map_arms = String::new();
            for (vname, vshape) in variants {
                match vshape {
                    VariantShape::Unit => str_arms.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantShape::Tuple(1) => map_arms.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(\
                         {FROM_CONTENT}(__inner).map_err({CUSTOM})?)),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let pulls: Vec<String> = (0..*n)
                            .map(|_| {
                                format!(
                                    "{FROM_CONTENT}(__it.next().expect(\"length checked\"))\
                                     .map_err({CUSTOM})?"
                                )
                            })
                            .collect();
                        map_arms.push_str(&format!(
                            "\"{vname}\" => match __inner {{\n\
                                 {CONTENT}::Seq(__seq) if __seq.len() == {n} => {{\n\
                                     let mut __it = __seq.into_iter();\n\
                                     ::core::result::Result::Ok({name}::{vname}({}))\n\
                                 }}\n\
                                 __other => ::core::result::Result::Err({CUSTOM}(\
                                     format!(\"expected array of {n} for variant \
                                     {name}::{vname}, got {{__other:?}}\"))),\n\
                             }},\n",
                            pulls.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("{f}: {TAKE_FIELD}(&mut __map, \"{f}\").map_err({CUSTOM})?")
                            })
                            .collect();
                        map_arms.push_str(&format!(
                            "\"{vname}\" => match __inner {{\n\
                                 {CONTENT}::Map(mut __map) => \
                                     ::core::result::Result::Ok({name}::{vname} {{ {} }}),\n\
                                 __other => ::core::result::Result::Err({CUSTOM}(\
                                     format!(\"expected object for variant \
                                     {name}::{vname}, got {{__other:?}}\"))),\n\
                             }},\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            (
                name,
                format!(
                    "match __content {{\n\
                         {CONTENT}::Str(__tag) => match __tag.as_str() {{\n\
                             {str_arms}\
                             __other => ::core::result::Result::Err({CUSTOM}(\
                                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }},\n\
                         {CONTENT}::Map(__m) if __m.len() == 1 => {{\n\
                             let (__tag, __inner) = __m.into_iter().next().expect(\"len 1\");\n\
                             let _ = &__inner;\n\
                             match __tag.as_str() {{\n\
                                 {map_arms}\
                                 __other => ::core::result::Result::Err({CUSTOM}(\
                                     format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                             }}\n\
                         }}\n\
                         __other => ::core::result::Result::Err({CUSTOM}(\
                             format!(\"expected string or single-key object for enum {name}, \
                             got {{__other:?}}\"))),\n\
                     }}"
                ),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) \
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 let __content = __deserializer.take_content()?;\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}
