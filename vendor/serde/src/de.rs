//! Deserialization half of the vendored serde subset.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use crate::ser::Content;

/// Errors a deserializer can report; mirrors `serde::de::Error::custom`.
pub trait Error: Sized {
    /// Build an error from any displayable message.
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

/// A data format that can produce a [`Content`] tree.
pub trait Deserializer<'de>: Sized {
    /// Error type produced on malformed input.
    type Error: Error;

    /// Consume the deserializer, yielding the decoded value tree.
    fn take_content(self) -> Result<Content, Self::Error>;
}

/// A value constructible from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserialize `Self`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Marker for values deserializable without borrowing from the input.
///
/// Everything in this owned-`Content` model qualifies; the blanket impl
/// keeps call sites (`serde_json::from_str::<T>`) identical to real serde.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A string-message error used when deserializing out of a [`Content`] tree.
#[derive(Debug, Clone)]
pub struct SimpleError(pub String);

impl fmt::Display for SimpleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SimpleError {}

impl Error for SimpleError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        SimpleError(msg.to_string())
    }
}

/// A deserializer whose input *is* an already-decoded [`Content`] tree.
pub struct ContentDeserializer(pub Content);

impl<'de> Deserializer<'de> for ContentDeserializer {
    type Error = SimpleError;

    fn take_content(self) -> Result<Content, SimpleError> {
        Ok(self.0)
    }
}

/// Deserialize a value out of a decoded [`Content`] tree.
pub fn from_content<T: DeserializeOwned>(content: Content) -> Result<T, SimpleError> {
    T::deserialize(ContentDeserializer(content))
}

fn type_error<E: Error>(expected: &str, got: &Content) -> E {
    E::custom(format!("expected {expected}, got {got:?}"))
}

fn content_u64<E: Error>(content: Content) -> Result<u64, E> {
    match content {
        Content::U64(v) => Ok(v),
        Content::I64(v) if v >= 0 => Ok(v as u64),
        Content::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Ok(v as u64),
        other => Err(type_error("unsigned integer", &other)),
    }
}

fn content_i64<E: Error>(content: Content) -> Result<i64, E> {
    match content {
        Content::I64(v) => Ok(v),
        Content::U64(v) if v <= i64::MAX as u64 => Ok(v as i64),
        Content::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Ok(v as i64),
        other => Err(type_error("signed integer", &other)),
    }
}

macro_rules! impl_deserialize_unsigned {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = content_u64::<D::Error>(d.take_content()?)?;
                <$t>::try_from(v).map_err(|_| D::Error::custom(format!(
                    "integer {v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_deserialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_deserialize_signed {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = content_i64::<D::Error>(d.take_content()?)?;
                <$t>::try_from(v).map_err(|_| D::Error::custom(format!(
                    "integer {v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_deserialize_signed!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::F64(v) => Ok(v),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            other => Err(type_error("number", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Bool(v) => Ok(v),
            other => Err(type_error("bool", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Str(s) => Ok(s),
            other => Err(type_error("string", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(D::Error::custom("expected single-character string")),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Null => Ok(()),
            other => Err(type_error("null", &other)),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Null => Ok(None),
            other => from_content(other).map(Some).map_err(D::Error::custom),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Seq(items) => items
                .into_iter()
                .map(|c| from_content(c).map_err(D::Error::custom))
                .collect(),
            other => Err(type_error("array", &other)),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Box::new)
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($len:literal, $($name:ident),+))*) => {$(
        impl<'de, $($name: DeserializeOwned),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<__D: Deserializer<'de>>(d: __D) -> Result<Self, __D::Error> {
                match d.take_content()? {
                    Content::Seq(items) if items.len() == $len => {
                        let mut it = items.into_iter();
                        Ok(($(
                            from_content::<$name>(it.next().expect("length checked"))
                                .map_err(__D::Error::custom)?,
                        )+))
                    }
                    other => Err(type_error(concat!("array of length ", $len), &other)),
                }
            }
        }
    )*};
}
impl_deserialize_tuple! {
    (1, A)
    (2, A, B)
    (3, A, B, C)
    (4, A, B, C, D)
}

fn parse_key<K: DeserializeOwned, E: Error>(key: String) -> Result<K, E> {
    // Map keys arrive as JSON strings; retry as an integer for numeric keys.
    match from_content(Content::Str(key.clone())) {
        Ok(k) => Ok(k),
        Err(_) => match key.parse::<u64>() {
            Ok(n) => from_content(Content::U64(n)).map_err(E::custom),
            Err(_) => Err(E::custom(format!("unsupported map key {key:?}"))),
        },
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: DeserializeOwned + Ord,
    V: DeserializeOwned,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    Ok((
                        parse_key::<K, D::Error>(k)?,
                        from_content(v).map_err(D::Error::custom)?,
                    ))
                })
                .collect(),
            other => Err(type_error("object", &other)),
        }
    }
}

impl<'de, K, V> Deserialize<'de> for HashMap<K, V>
where
    K: DeserializeOwned + std::hash::Hash + Eq,
    V: DeserializeOwned,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    Ok((
                        parse_key::<K, D::Error>(k)?,
                        from_content(v).map_err(D::Error::custom)?,
                    ))
                })
                .collect(),
            other => Err(type_error("object", &other)),
        }
    }
}
