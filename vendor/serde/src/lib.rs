//! Vendored, offline subset of the `serde` serialization framework.
//!
//! This workspace builds in environments with no access to crates.io, so
//! the handful of external dependencies are vendored as minimal,
//! API-compatible local crates (see `vendor/` in the repository root).
//! This crate covers exactly the surface MicroGrid-rs uses:
//!
//! - `Serialize` / `Deserialize` traits with the same signatures as the
//!   real crate, so hand-written impls (e.g. `SimTime` in `mgrid-desim`)
//!   compile unchanged;
//! - `#[derive(Serialize, Deserialize)]` for non-generic, attribute-free
//!   named structs, tuple structs, and enums (externally tagged);
//! - a self-describing [`ser::Content`] tree as the data model, which
//!   the vendored `serde_json` reads and writes.
//!
//! It is **not** a general serde replacement: zero-copy deserialization,
//! serde attributes, and generic impls are intentionally out of scope.

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

pub use serde_derive::{Deserialize, Serialize};

/// Support code for the derive macros. Not a stable API.
#[doc(hidden)]
pub mod __private {
    pub use crate::de::{from_content, ContentDeserializer, SimpleError};
    pub use crate::ser::{to_content, Content};

    /// Remove `name` from a decoded JSON object and deserialize it.
    ///
    /// Missing fields decode from `Content::Null`, which lets `Option`
    /// fields default to `None` without any attribute support.
    pub fn take_field<T: crate::de::DeserializeOwned>(
        map: &mut Vec<(String, Content)>,
        name: &str,
    ) -> Result<T, String> {
        let content = match map.iter().position(|(k, _)| k == name) {
            Some(i) => map.remove(i).1,
            None => Content::Null,
        };
        from_content(content).map_err(|e| format!("field `{name}`: {e}"))
    }
}
