//! Serialization half of the vendored serde subset.

use std::collections::{BTreeMap, HashMap};

/// A self-describing value tree: the data model every serializer in this
/// vendored subset speaks.
///
/// Object keys preserve insertion order (a `Vec` of pairs, not a map), so
/// struct fields serialize in declaration order and round-trips are
/// byte-stable.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// JSON `null` (also the encoding of `None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered map with string keys.
    Map(Vec<(String, Content)>),
}

/// A data format that can consume a [`Content`] tree.
///
/// The real serde `Serializer` has one method per primitive; this subset
/// funnels everything through [`Serializer::serialize_content`] and
/// provides the primitive methods (the ones MicroGrid-rs's hand-written
/// impls call) as defaults.
pub trait Serializer: Sized {
    /// Output type produced on success.
    type Ok;
    /// Error type produced on failure.
    type Error;

    /// Consume a complete value tree.
    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;

    /// Serialize a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Bool(v))
    }
    /// Serialize a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::U64(v))
    }
    /// Serialize an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::I64(v))
    }
    /// Serialize an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::F64(v))
    }
    /// Serialize a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Str(v.to_string()))
    }
    /// Serialize a unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Null)
    }
}

/// A value that can be serialized into any [`Serializer`].
pub trait Serialize {
    /// Serialize `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// The impossible error type of [`ContentSerializer`].
#[derive(Debug)]
pub enum Never {}

/// A serializer whose output *is* the [`Content`] tree. Infallible.
pub struct ContentSerializer;

impl Serializer for ContentSerializer {
    type Ok = Content;
    type Error = Never;

    fn serialize_content(self, content: Content) -> Result<Content, Never> {
        Ok(content)
    }
}

/// Convert any serializable value into its [`Content`] tree.
pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Content {
    match value.serialize(ContentSerializer) {
        Ok(c) => c,
        Err(never) => match never {},
    }
}

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}
impl_serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*};
}
impl_serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.to_string()))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_content(to_content(v)),
            None => serializer.serialize_content(Content::Null),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Seq(self.iter().map(to_content).collect()))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_content(Content::Seq(vec![$(to_content(&self.$idx)),+]))
            }
        }
    )*};
}
impl_serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

fn key_string(content: Content) -> String {
    match content {
        Content::Str(s) => s,
        Content::U64(v) => v.to_string(),
        Content::I64(v) => v.to_string(),
        other => panic!("unsupported map key in vendored serde: {other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let entries = self
            .iter()
            .map(|(k, v)| (key_string(to_content(k)), to_content(v)))
            .collect();
        serializer.serialize_content(Content::Map(entries))
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (key_string(to_content(k)), to_content(v)))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        serializer.serialize_content(Content::Map(entries))
    }
}
