//! Vendored, offline mini property-testing framework.
//!
//! API-compatible with the subset of `proptest` that MicroGrid-rs's test
//! suites use: the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), `Strategy` with `prop_map` /
//! `prop_recursive`, `any::<T>()`, integer/float range strategies,
//! simple `[a-z]{m,n}`-style string strategies, tuple strategies,
//! `prop::collection::vec`, `prop_oneof!`, and
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - inputs are drawn from a **deterministic** per-test RNG (seeded from
//!   the test name and case index), so failures reproduce exactly on
//!   every run with no persistence files;
//! - there is **no shrinking** — a failing case reports the panic from
//!   the raw sample;
//! - `prop_recursive(depth, ..)` unrolls the recursion `depth` times
//!   instead of sizing probabilistically.

use std::ops::Range;
use std::rc::Rc;

/// How many cases a property runs; mirrors `proptest::test_runner::Config`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic splitmix64 generator used to drive all strategies.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed from raw state.
    pub fn new(seed: u64) -> Self {
        TestRng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    /// Seed deterministically from a test name and case index.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h ^ (u64::from(case) << 32) ^ u64::from(case))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "TestRng::below(0)");
        // Modulo bias is irrelevant at test-input quality.
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test inputs; the vendored analogue of
/// `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `self` is the leaf, and `f` wraps an
    /// inner strategy into one more level. The recursion is unrolled
    /// `depth` times; `_desired_size` and `_expected_branch` are accepted
    /// for API compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = f(strat).boxed();
        }
        strat
    }

    /// Type-erase into a clonable, heap-allocated strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            sampler: Rc::new(move |rng| self.sample(rng)),
        }
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T> {
    sampler: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sampler: Rc::clone(&self.sampler),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sampler)(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A uniform choice among boxed strategies; built by [`prop_oneof!`].
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Choose uniformly among `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The strategy type `any` returns.
    type Strategy: Strategy<Value = Self>;
    /// The full-range strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// A full-range strategy for a primitive; see [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy(std::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyStrategy<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyStrategy<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyStrategy(std::marker::PhantomData)
    }
}

/// The canonical strategy for `T`: `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_signed_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}
impl_strategy_signed_range!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        (Range {
            start: f64::from(self.start),
            end: f64::from(self.end),
        })
        .sample(rng) as f32
    }
}

// A `&str` is a strategy over a small regex-like subset:
// literal characters, character classes `[a-z0-9_]`, and quantifiers
// `{n}`, `{m,n}`, `?` after a class or literal.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a char class or a literal character.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated `[` in pattern {pattern:?}"));
            let set = parse_class(&chars[i + 1..close], pattern);
            i = close + 1;
            set
        } else {
            let c = chars[i];
            if c == '\\' {
                i += 1;
                assert!(i < chars.len(), "trailing `\\` in pattern {pattern:?}");
            }
            let lit = chars[i];
            i += 1;
            vec![lit]
        };
        // Optional quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated `{{` in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse::<usize>().expect("bad quantifier"),
                    hi.trim().parse::<usize>().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("bad quantifier");
                    (n, n)
                }
            }
        } else if i < chars.len() && chars[i] == '?' {
            i += 1;
            (0, 1)
        } else {
            (1, 1)
        };
        let count = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..count {
            let pick = rng.below(alphabet.len() as u64) as usize;
            out.push(alphabet[pick]);
        }
    }
    out
}

fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
    let mut set = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
            for c in lo..=hi {
                set.push(c);
            }
            i += 3;
        } else {
            set.push(body[i]);
            i += 1;
        }
    }
    assert!(!set.is_empty(), "empty character class in {pattern:?}");
    set
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vector of values from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec(..)` works as in real
/// proptest.
pub mod prop {
    pub use crate::collection;
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, ProptestConfig, Strategy, TestRng,
    };
}

/// Define property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $config;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Property assertion; panics (no shrinking in the vendored framework).
#[macro_export]
macro_rules! prop_assert {
    ($($tok:tt)*) => { assert!($($tok)*) };
}

/// Property equality assertion; panics like [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tok:tt)*) => { assert_eq!($($tok)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let v = (10u64..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let f = (0.5f64..2.0).sample(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::new(9);
        for _ in 0..100 {
            let s = "[a-d]".sample(&mut rng);
            assert_eq!(s.len(), 1);
            assert!(('a'..='d').contains(&s.chars().next().unwrap()));
            let t = "[x-z]{1,3}".sample(&mut rng);
            assert!((1..=3).contains(&t.len()));
            assert!(t.chars().all(|c| ('x'..='z').contains(&c)));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let a = (0u64..1000).sample(&mut TestRng::for_case("t", 3));
        let b = (0u64..1000).sample(&mut TestRng::for_case("t", 3));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_with_config(v in prop::collection::vec(0u64..50, 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 50));
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(x in any::<u64>(), s in "[a-c]{2}") {
            let _ = x;
            prop_assert_eq!(s.len(), 2);
        }
    }
}
