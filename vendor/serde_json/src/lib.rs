//! Vendored, offline subset of `serde_json`.
//!
//! Provides exactly the functions MicroGrid-rs calls — [`to_string`],
//! [`to_string_pretty`], [`from_str`] and the [`Error`] type — over the
//! vendored `serde` crate's `Content` data model. The writer emits
//! RFC 8259 JSON; the reader is a small recursive-descent parser that
//! accepts standard JSON (objects, arrays, strings with escapes,
//! numbers, booleans, null).

use std::fmt;

use serde::__private::{from_content, to_content, Content};
use serde::de::DeserializeOwned;
use serde::Serialize;

/// A JSON serialization or parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &to_content(value), None, 0);
    Ok(out)
}

/// Serialize a value to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &to_content(value), Some(2), 0);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    from_content(content).map_err(|e| Error(e.to_string()))
}

// ----------------------------------------------------------------- writer

fn write_content(out: &mut String, c: &Content, indent: Option<usize>, level: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_content(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's shortest-round-trip float formatting; force a decimal
        // point so the value re-parses as a float, matching serde_json.
        let s = v.to_string();
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // Real serde_json refuses non-finite floats; emit null like its
        // `json!` value model does when lossy output is acceptable.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b't') => self.eat_literal("true").map(|()| Content::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|()| Content::Bool(false)),
            Some(b'n') => self.eat_literal("null").map(|()| Content::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected JSON value")),
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: must pair with \uXXXX low.
                                self.eat_literal("\\u")
                                    .map_err(|_| self.error("unpaired surrogate"))?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                first
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                            continue; // parse_hex4 already advanced pos
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // is always well-formed).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid utf-8"))?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
    }

    #[test]
    fn round_trip_collections() {
        let v: Vec<(String, f64)> = vec![("a".into(), 1.0), ("b".into(), 2.5)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, r#"[["a",1.0],["b",2.5]]"#);
        let back: Vec<(String, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);

        let opt_none: Option<u64> = None;
        assert_eq!(to_string(&opt_none).unwrap(), "null");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u64>>("3").unwrap(), Some(3));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("4 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
    }

    #[test]
    fn pretty_printing_indents() {
        let v = vec![1u64, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }
}
