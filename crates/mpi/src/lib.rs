//! # mgrid-mpi — an MPI-like message-passing library over the virtual Grid
//!
//! The workload substrate of the paper's validation: the NAS Parallel
//! Benchmarks and CACTUS are MPI programs whose library traffic the
//! MicroGrid carries over virtualized sockets. This crate provides the
//! MPI surface those workload models are written against:
//!
//! * eager/rendezvous point-to-point with tag matching and MPI's
//!   non-overtaking delivery order,
//! * collectives (barrier, bcast, reduce, allreduce, gather, alltoall)
//!   built from binomial trees and dissemination rounds,
//! * a LAM/MPICH-like cost model: per-message software overhead and
//!   per-byte copy cost paid on the (paced) virtual CPU,
//! * [`world::mpirun`] to launch one rank per virtual host.

#![warn(missing_docs)]

pub mod comm;
pub mod proto;
pub mod world;

pub use comm::{Comm, MpiParams};
pub use proto::{MpiData, Pattern, RecvMsg, Tag, ANY_SOURCE, ANY_TAG};
pub use world::{mpirun, mpirun_resilient};
