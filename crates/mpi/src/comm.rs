//! The communicator: point-to-point messaging with tag matching over
//! virtual sockets.
//!
//! The NAS Parallel Benchmarks and CACTUS are MPI programs; in the
//! original system their MPI library rides on the virtualized socket
//! interface (paper §3). This is that layer: an eager/rendezvous
//! protocol with LAM/MPICH-like cost structure — per-message software
//! overhead and per-byte copy costs paid on the (possibly paced) virtual
//! CPU, wire traffic through the simulated network.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use mgrid_desim::channel::{oneshot, OneshotSender};
use mgrid_desim::sync::Notify;
use mgrid_desim::time::{SimDuration, SimTime};
use mgrid_desim::timeout::with_timeout;
use mgrid_desim::{obs, spawn, Category, Event, FxHashMap, FxHashSet, SpanStr};
use mgrid_middleware::{ProcessCtx, SockError, VSender};
use mgrid_netsim::Payload;

use crate::proto::{MpiData, MpiMsg, Pattern, RecvMsg, Tag};

/// Cost-model and wiring parameters of the MPI layer.
#[derive(Clone, Debug)]
pub struct MpiParams {
    /// Rank `r` binds `base_port + r` on its virtual host.
    pub base_port: u16,
    /// Messages at or below this size are sent eagerly; above it, the
    /// rendezvous protocol (RTS/CTS) is used.
    pub eager_threshold: u64,
    /// Software overhead per send call, in Mops (stack traversal,
    /// matching, syscall).
    pub send_overhead_mops: f64,
    /// Software overhead per completed receive, in Mops.
    pub recv_overhead_mops: f64,
    /// Buffer-copy cost per megabyte, in Mops, paid on each side.
    pub copy_mops_per_mb: f64,
    /// Wire size of RTS/CTS control messages and the per-message MPI
    /// header.
    pub control_bytes: u64,
    /// Deadline for blocking waits on a peer (posted receives and
    /// rendezvous CTS waits). `None` (the default) waits forever, real-MPI
    /// style; with a deadline, an expired wait fails the operation with
    /// [`SockError::TimedOut`] and records the peer in
    /// [`Comm::failed_ranks`] — how a fault-tolerant harness observes that
    /// a rank's host crashed or was partitioned away.
    pub recv_timeout: Option<SimDuration>,
}

impl Default for MpiParams {
    fn default() -> Self {
        MpiParams {
            base_port: 5000,
            eager_threshold: 16 * 1024,
            send_overhead_mops: 0.015,
            recv_overhead_mops: 0.015,
            copy_mops_per_mb: 3.0,
            control_bytes: 64,
            recv_timeout: None,
        }
    }
}

/// Tag space reserved for collectives (application tags must be >= 0).
const COLLECTIVE_TAG_BASE: Tag = -1_000_000;

struct Engine {
    /// Arrived eager messages not yet matched, in admission order.
    eager: Vec<(usize, Tag, MpiData)>,
    /// Arrived RTS announcements not yet matched, in admission order.
    rts: Vec<(usize, Tag, u64, u64)>,
    /// Arrived rendezvous data by (src, send_id).
    rdv_data: FxHashMap<(usize, u64), MpiData>,
    /// CTS releases awaited by local rendezvous sends.
    cts_waiters: FxHashMap<u64, OneshotSender<()>>,
    /// Next expected per-source sequence number (non-overtaking order).
    expected_seq: FxHashMap<usize, u64>,
    /// Out-of-order arrivals stashed until their turn, keyed by
    /// (src, seq).
    stash: FxHashMap<(usize, u64), MpiMsg>,
    /// Pulsed on every protocol arrival.
    arrived: Notify,
}

impl Engine {
    /// Admit an in-order Eager/Rts message to the matching queues, then
    /// drain any stashed successors.
    fn admit_in_order(&mut self, src: usize, seq: u64, msg: MpiMsg) {
        let expected = self.expected_seq.entry(src).or_insert(0);
        if seq != *expected {
            self.stash.insert((src, seq), msg);
            return;
        }
        let mut cur = msg;
        loop {
            match cur {
                MpiMsg::Eager { src, tag, data, .. } => self.eager.push((src, tag, data)),
                MpiMsg::Rts {
                    src,
                    tag,
                    send_id,
                    bytes,
                    ..
                } => self.rts.push((src, tag, send_id, bytes)),
                _ => unreachable!("only ordered kinds are admitted"),
            }
            let expected = self.expected_seq.get_mut(&src).expect("present");
            *expected += 1;
            match self.stash.remove(&(src, *expected)) {
                Some(next) => cur = next,
                None => break,
            }
        }
    }
}

/// An MPI-like communicator for one rank of a job.
#[derive(Clone)]
pub struct Comm {
    ctx: ProcessCtx,
    rank: usize,
    hosts: Rc<Vec<String>>,
    sender: VSender,
    engine: Rc<RefCell<Engine>>,
    params: Rc<MpiParams>,
    next_send_id: Rc<Cell<u64>>,
    seq_out: Rc<RefCell<FxHashMap<usize, u64>>>,
    collective_epoch: Rc<Cell<u32>>,
    /// Eager sends still in flight in background tasks.
    outstanding: Rc<Cell<usize>>,
    drained: Notify,
    /// Ranks this communicator has timed out waiting on (suspected dead).
    failed: Rc<RefCell<FxHashSet<usize>>>,
    /// Interned `(track, lane, detail)` span attributes for this rank's
    /// collective spans — allocated on the first traced collective.
    span_attrs: Rc<std::cell::OnceCell<(SpanStr, SpanStr, SpanStr)>>,
}

impl Comm {
    /// Create the communicator for `rank` of a world spanning `hosts`
    /// (rank `r` lives on `hosts[r]`). Binds the rank's port and starts
    /// the receive pump. All ranks must be created before any
    /// communication starts (as `mpirun` guarantees).
    pub fn create(ctx: ProcessCtx, rank: usize, hosts: Rc<Vec<String>>, params: MpiParams) -> Comm {
        assert!(rank < hosts.len(), "rank {rank} out of range");
        let sock = ctx.bind(params.base_port + rank as u16);
        let sender = sock.sender();
        let engine = Rc::new(RefCell::new(Engine {
            eager: Vec::new(),
            rts: Vec::new(),
            rdv_data: FxHashMap::default(),
            cts_waiters: FxHashMap::default(),
            expected_seq: FxHashMap::default(),
            stash: FxHashMap::default(),
            arrived: Notify::new(),
        }));
        {
            let engine = engine.clone();
            mgrid_desim::spawn_daemon(async move {
                loop {
                    let Ok(msg) = sock.recv().await else { break };
                    let Some(mpi) = msg.payload.downcast_ref::<MpiMsg>() else {
                        continue;
                    };
                    let mut e = engine.borrow_mut();
                    match mpi {
                        MpiMsg::Eager { src, seq, .. } | MpiMsg::Rts { src, seq, .. } => {
                            e.admit_in_order(*src, *seq, (*mpi).clone());
                        }
                        MpiMsg::Cts { send_id } => {
                            if let Some(tx) = e.cts_waiters.remove(send_id) {
                                tx.send(());
                            }
                        }
                        MpiMsg::RendezvousData { src, send_id, data } => {
                            e.rdv_data.insert((*src, *send_id), data.clone());
                        }
                    }
                    e.arrived.notify_all();
                }
            });
        }
        Comm {
            ctx,
            rank,
            hosts,
            sender,
            engine,
            params: Rc::new(params),
            next_send_id: Rc::new(Cell::new(0)),
            seq_out: Rc::new(RefCell::new(FxHashMap::default())),
            collective_epoch: Rc::new(Cell::new(0)),
            outstanding: Rc::new(Cell::new(0)),
            drained: Notify::new(),
            failed: Rc::new(RefCell::new(FxHashSet::default())),
            span_attrs: Rc::new(std::cell::OnceCell::new()),
        }
    }

    /// Ranks this communicator has timed out waiting on (sorted). Empty
    /// unless [`MpiParams::recv_timeout`] is set and a wait expired.
    pub fn failed_ranks(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.failed.borrow().iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Record a timed-out wait on `suspect` (`ANY_SOURCE` when the receive
    /// was a wildcard) and build the error the caller returns.
    fn rank_timeout(&self, suspect: i32, waited: SimDuration) -> SockError {
        if suspect >= 0 {
            self.failed.borrow_mut().insert(suspect as usize);
        }
        obs::count("mpi.rank_timeouts", 1);
        let waited_ns = waited.as_nanos();
        obs::emit(|| Event::RankTimeout {
            rank: suspect.max(-1) as u64,
            waited_ns,
        });
        SockError::TimedOut
    }

    /// Wait for the next protocol arrival, bounded by `deadline` when one
    /// is configured. `t0` is when the enclosing wait began (for the
    /// recovery-latency report); `suspect` is the peer being waited on.
    async fn wait_arrival(
        &self,
        n: Notify,
        deadline: Option<SimTime>,
        t0: SimTime,
        suspect: i32,
    ) -> Result<(), SockError> {
        let Some(dl) = deadline else {
            n.notified().await;
            return Ok(());
        };
        let now = mgrid_desim::now();
        if now >= dl {
            return Err(self.rank_timeout(suspect, now.saturating_since(t0)));
        }
        match with_timeout(dl - now, n.notified()).await {
            Some(()) => Ok(()),
            None => Err(self.rank_timeout(suspect, mgrid_desim::now().saturating_since(t0))),
        }
    }

    /// Wait until every buffered (eager) send has fully left this rank —
    /// the flush `MPI_Finalize` performs before tearing the process down.
    pub async fn flush(&self) {
        while self.outstanding.get() > 0 {
            self.drained.notified().await;
        }
    }

    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.hosts.len()
    }

    /// The execution context of this rank's process.
    pub fn ctx(&self) -> &ProcessCtx {
        &self.ctx
    }

    /// The virtual hostname of a rank.
    pub fn host_of(&self, rank: usize) -> &str {
        &self.hosts[rank]
    }

    fn port_of(&self, rank: usize) -> u16 {
        self.params.base_port + rank as u16
    }

    async fn pay(&self, overhead_mops: f64, bytes: u64) {
        let copy = bytes as f64 / 1e6 * self.params.copy_mops_per_mb;
        self.ctx.compute_mops(overhead_mops + copy).await;
    }

    /// Send `data` to `dst` with `tag` (like `MPI_Send`).
    ///
    /// Eager messages complete locally after the copy (buffered send);
    /// rendezvous messages complete once the receiver has pulled the data.
    ///
    /// # Panics
    /// Panics on negative application tags (reserved for collectives).
    pub async fn send(&self, dst: usize, tag: Tag, data: MpiData) -> Result<(), SockError> {
        assert!(tag >= 0, "application tags must be >= 0");
        self.protocol_send(dst, tag, data).await
    }

    async fn protocol_send(&self, dst: usize, tag: Tag, data: MpiData) -> Result<(), SockError> {
        self.pay(self.params.send_overhead_mops, data.bytes).await;
        let seq = {
            let mut seqs = self.seq_out.borrow_mut();
            let s = seqs.entry(dst).or_insert(0);
            let cur = *s;
            *s += 1;
            cur
        };
        let bytes = data.bytes;
        if bytes <= self.params.eager_threshold {
            // Eager: hand off to the transport and return (buffered).
            let sender = self.sender.clone();
            let host = self.hosts[dst].clone();
            let port = self.port_of(dst);
            let wire = bytes + self.params.control_bytes;
            let src = self.rank;
            self.outstanding.set(self.outstanding.get() + 1);
            let outstanding = self.outstanding.clone();
            let drained = self.drained.clone();
            spawn(async move {
                let _ = sender
                    .send_to(
                        &host,
                        port,
                        wire,
                        Payload::new(MpiMsg::Eager {
                            src,
                            seq,
                            tag,
                            data,
                        }),
                    )
                    .await;
                outstanding.set(outstanding.get() - 1);
                if outstanding.get() == 0 {
                    drained.notify_all();
                }
            });
            return Ok(());
        }
        // Rendezvous: RTS, wait for CTS, then ship the data.
        let send_id = self.next_send_id.get();
        self.next_send_id.set(send_id + 1);
        let (tx, rx) = oneshot();
        self.engine.borrow_mut().cts_waiters.insert(send_id, tx);
        {
            let sender = self.sender.clone();
            let host = self.hosts[dst].clone();
            let port = self.port_of(dst);
            let control = self.params.control_bytes;
            let src = self.rank;
            spawn(async move {
                let _ = sender
                    .send_to(
                        &host,
                        port,
                        control,
                        Payload::new(MpiMsg::Rts {
                            src,
                            seq,
                            tag,
                            send_id,
                            bytes,
                        }),
                    )
                    .await;
            });
        }
        match self.params.recv_timeout {
            None => {
                rx.recv().await.map_err(|_| SockError::Closed)?;
            }
            Some(d) => {
                let t0 = mgrid_desim::now();
                match with_timeout(d, rx.recv()).await {
                    Some(r) => {
                        r.map_err(|_| SockError::Closed)?;
                    }
                    None => {
                        // The receiver never granted CTS: stop waiting and
                        // surface the peer as suspect.
                        self.engine.borrow_mut().cts_waiters.remove(&send_id);
                        return Err(
                            self.rank_timeout(dst as i32, mgrid_desim::now().saturating_since(t0))
                        );
                    }
                }
            }
        }
        self.sender
            .send_to(
                &self.hosts[dst],
                self.port_of(dst),
                bytes + self.params.control_bytes,
                Payload::new(MpiMsg::RendezvousData {
                    src: self.rank,
                    send_id,
                    data,
                }),
            )
            .await
    }

    /// Non-blocking send: returns a handle to await completion.
    pub fn isend(
        &self,
        dst: usize,
        tag: Tag,
        data: MpiData,
    ) -> mgrid_desim::JoinHandle<Result<(), SockError>> {
        let comm = self.clone();
        spawn(async move { comm.send(dst, tag, data).await })
    }

    /// Receive a message matching `(src, tag)` (like `MPI_Recv`).
    /// Use [`crate::proto::ANY_SOURCE`] / [`crate::proto::ANY_TAG`] as
    /// wildcards via [`Comm::recv_matching`].
    pub async fn recv(&self, src: usize, tag: Tag) -> Result<RecvMsg, SockError> {
        self.recv_matching(Pattern::of(src, tag)).await
    }

    /// Receive the next message satisfying `pattern`.
    ///
    /// With [`MpiParams::recv_timeout`] set, an unmatched wait past the
    /// deadline fails with [`SockError::TimedOut`] and records the awaited
    /// source (when specific) in [`Comm::failed_ranks`].
    pub async fn recv_matching(&self, pattern: Pattern) -> Result<RecvMsg, SockError> {
        let t0 = mgrid_desim::now();
        let deadline = self.params.recv_timeout.map(|d| t0 + d);
        loop {
            enum Hit {
                Eager(RecvMsg),
                Rts { src: usize, tag: Tag, send_id: u64 },
            }
            let hit = {
                let mut e = self.engine.borrow_mut();
                if let Some(i) = e.eager.iter().position(|(s, t, _)| pattern.accepts(*s, *t)) {
                    let (src, tag, data) = e.eager.remove(i);
                    Some(Hit::Eager(RecvMsg { src, tag, data }))
                } else if let Some(i) = e
                    .rts
                    .iter()
                    .position(|(s, t, _, _)| pattern.accepts(*s, *t))
                {
                    let (src, tag, send_id, _bytes) = e.rts.remove(i);
                    Some(Hit::Rts { src, tag, send_id })
                } else {
                    None
                }
            };
            match hit {
                Some(Hit::Eager(msg)) => {
                    self.pay(self.params.recv_overhead_mops, msg.data.bytes)
                        .await;
                    return Ok(msg);
                }
                Some(Hit::Rts { src, tag, send_id }) => {
                    // Release the sender, then wait for the data.
                    self.sender
                        .send_to(
                            &self.hosts[src],
                            self.port_of(src),
                            self.params.control_bytes,
                            Payload::new(MpiMsg::Cts { send_id }),
                        )
                        .await?;
                    let data = loop {
                        {
                            let mut e = self.engine.borrow_mut();
                            if let Some(d) = e.rdv_data.remove(&(src, send_id)) {
                                break d;
                            }
                        }
                        let n = self.engine.borrow().arrived.clone();
                        self.wait_arrival(n, deadline, t0, src as i32).await?;
                    };
                    self.pay(self.params.recv_overhead_mops, data.bytes).await;
                    return Ok(RecvMsg { src, tag, data });
                }
                None => {
                    let n = self.engine.borrow().arrived.clone();
                    self.wait_arrival(n, deadline, t0, pattern.src).await?;
                }
            }
        }
    }

    /// Combined send+receive (like `MPI_Sendrecv`), overlapping the two.
    pub async fn sendrecv(
        &self,
        dst: usize,
        send_tag: Tag,
        data: MpiData,
        src: usize,
        recv_tag: Tag,
    ) -> Result<RecvMsg, SockError> {
        let send = self.isend(dst, send_tag, data);
        let msg = self.recv(src, recv_tag).await?;
        send.await?;
        Ok(msg)
    }

    fn next_collective_tag(&self) -> Tag {
        let epoch = self.collective_epoch.get();
        self.collective_epoch.set(epoch + 1);
        COLLECTIVE_TAG_BASE - epoch as Tag * 64
    }

    async fn coll_send(&self, dst: usize, tag: Tag, data: MpiData) -> Result<(), SockError> {
        self.protocol_send(dst, tag, data).await
    }

    /// Wrap one collective call with trace events, timing metrics, and a
    /// causal span. Emitted per participating rank; `elapsed_ns` is this
    /// rank's wall time in the collective (skew across ranks is visible
    /// in the histogram spread).
    ///
    /// Each rank records one `Mpi` span per collective. Non-root ranks
    /// publish a `"coll"` flow half-point toward rank 0; rank 0 consumes
    /// one per peer after the collective completes. Collectives are
    /// globally SPMD-ordered, so the k-th half-point on each side of a
    /// `(rank r, rank 0)` key always belongs to the same collective.
    async fn timed<T>(
        &self,
        op: &'static str,
        fut: impl std::future::Future<Output = Result<T, SockError>>,
    ) -> Result<T, SockError> {
        let ranks = self.size();
        obs::emit(|| Event::CollectiveStart { op, ranks });
        let rank = self.rank;
        let span = obs::span_begin(Category::Mpi, op, || {
            let (track, lane, detail) = self.span_attrs.get_or_init(|| {
                (
                    self.hosts[rank].as_str().into(),
                    format!("rank{rank}").into(),
                    format!("x{ranks}").into(),
                )
            });
            (track.clone(), lane.clone(), detail.clone())
        });
        if !span.is_none() && rank != 0 {
            obs::flow_out("coll", &format!("rank{rank}"), "rank0", span);
        }
        let t0 = mgrid_desim::now();
        let out = fut.await;
        let elapsed_ns = (mgrid_desim::now() - t0).as_nanos();
        if !span.is_none() && rank == 0 {
            for peer in 1..ranks {
                obs::flow_in("coll", &format!("rank{peer}"), "rank0", span);
            }
        }
        obs::span_end(span);
        obs::count("mpi.collectives", 1);
        obs::observe("mpi.collective_ns", elapsed_ns);
        obs::emit(|| Event::CollectiveEnd {
            op,
            ranks,
            elapsed_ns,
        });
        out
    }

    /// Barrier (dissemination algorithm, `ceil(log2(n))` rounds).
    pub async fn barrier(&self) -> Result<(), SockError> {
        self.timed("barrier", self.barrier_impl()).await
    }

    async fn barrier_impl(&self) -> Result<(), SockError> {
        let n = self.size();
        if n <= 1 {
            return Ok(());
        }
        let tag0 = self.next_collective_tag();
        let mut k = 1usize;
        let mut round = 0;
        while k < n {
            let to = (self.rank + k) % n;
            let from = (self.rank + n - k) % n;
            let tag = tag0 - round;
            let send = {
                let comm = self.clone();
                spawn(async move { comm.coll_send(to, tag, MpiData::bytes_only(0)).await })
            };
            self.recv(from, tag).await?;
            send.await?;
            k <<= 1;
            round += 1;
        }
        Ok(())
    }

    /// Broadcast from `root` (binomial tree). Non-root ranks receive and
    /// return the broadcast data; the root returns its own.
    pub async fn bcast(&self, root: usize, data: Option<MpiData>) -> Result<MpiData, SockError> {
        self.timed("bcast", self.bcast_impl(root, data)).await
    }

    async fn bcast_impl(&self, root: usize, data: Option<MpiData>) -> Result<MpiData, SockError> {
        let n = self.size();
        let tag = self.next_collective_tag();
        let vrank = (self.rank + n - root) % n;
        let data = if vrank == 0 {
            data.expect("root must supply broadcast data")
        } else {
            // Receive from the parent in the binomial tree.
            let parent_v = vrank & (vrank - 1); // clear lowest set bit
            let parent = (parent_v + root) % n;
            self.recv(parent, tag).await?.data
        };
        // Forward to children: children of v are v | (1<<j) for j above
        // v's lowest set bit range.
        let mut j = 1usize;
        while j < n {
            if vrank & (j - 1) == 0 && vrank & j == 0 {
                let child_v = vrank | j;
                if child_v < n {
                    let child = (child_v + root) % n;
                    self.coll_send(child, tag, data.clone()).await?;
                }
            }
            j <<= 1;
        }
        Ok(data)
    }

    /// Reduce typed values to `root` with `combine` (binomial tree).
    /// `bytes` is the logical payload size used for costing. Returns
    /// `Some(result)` on the root, `None` elsewhere.
    pub async fn reduce<T, F>(
        &self,
        root: usize,
        value: T,
        bytes: u64,
        combine: F,
    ) -> Result<Option<T>, SockError>
    where
        T: Clone + Send + Sync + 'static,
        F: Fn(&T, &T) -> T,
    {
        self.timed("reduce", self.reduce_impl(root, value, bytes, combine))
            .await
    }

    async fn reduce_impl<T, F>(
        &self,
        root: usize,
        value: T,
        bytes: u64,
        combine: F,
    ) -> Result<Option<T>, SockError>
    where
        T: Clone + Send + Sync + 'static,
        F: Fn(&T, &T) -> T,
    {
        let n = self.size();
        let tag = self.next_collective_tag();
        let vrank = (self.rank + n - root) % n;
        let mut acc = value;
        let mut j = 1usize;
        // Receive from children (in increasing j), combine.
        while j < n {
            if vrank & (j - 1) == 0 && vrank & j == 0 {
                let child_v = vrank | j;
                if child_v < n {
                    let child = (child_v + root) % n;
                    let msg = self.recv(child, tag).await?;
                    let other = msg.data.downcast::<T>().expect("type mismatch in reduce");
                    acc = combine(&acc, &other);
                }
            }
            j <<= 1;
        }
        if vrank == 0 {
            return Ok(Some(acc));
        }
        let parent_v = vrank & (vrank - 1);
        let parent = (parent_v + root) % n;
        self.coll_send(parent, tag, MpiData::typed(bytes, acc))
            .await?;
        Ok(None)
    }

    /// Allreduce: reduce to rank 0, then broadcast the result.
    ///
    /// Instrumented as a single `allreduce` collective (the inner reduce
    /// and bcast phases are not double-counted).
    pub async fn allreduce<T, F>(&self, value: T, bytes: u64, combine: F) -> Result<T, SockError>
    where
        T: Clone + Send + Sync + 'static,
        F: Fn(&T, &T) -> T,
    {
        self.timed("allreduce", async {
            let reduced = self.reduce_impl(0, value, bytes, combine).await?;
            let data = self
                .bcast_impl(0, reduced.map(|v| MpiData::typed(bytes, v)))
                .await?;
            Ok(data
                .downcast::<T>()
                .expect("type mismatch in allreduce")
                .as_ref()
                .clone())
        })
        .await
    }

    /// Gather one value per rank at `root`. Returns `Some(values)` (rank
    /// order) on the root, `None` elsewhere.
    pub async fn gather<T: Clone + Send + Sync + 'static>(
        &self,
        root: usize,
        value: T,
        bytes: u64,
    ) -> Result<Option<Vec<T>>, SockError> {
        self.timed("gather", self.gather_impl(root, value, bytes))
            .await
    }

    async fn gather_impl<T: Clone + Send + Sync + 'static>(
        &self,
        root: usize,
        value: T,
        bytes: u64,
    ) -> Result<Option<Vec<T>>, SockError> {
        let n = self.size();
        let tag = self.next_collective_tag();
        if self.rank == root {
            let mut out: Vec<Option<T>> = vec![None; n];
            out[root] = Some(value);
            for _ in 0..n - 1 {
                let msg = self
                    .recv_matching(Pattern {
                        src: crate::proto::ANY_SOURCE,
                        tag,
                    })
                    .await?;
                let v = msg.data.downcast::<T>().expect("type mismatch in gather");
                out[msg.src] = Some(v.as_ref().clone());
            }
            Ok(Some(
                out.into_iter()
                    .map(|v| v.expect("all ranks sent"))
                    .collect(),
            ))
        } else {
            self.coll_send(root, tag, MpiData::typed(bytes, value))
                .await?;
            Ok(None)
        }
    }

    /// All-to-all personalized exchange: `chunks[d]` goes to rank `d`.
    /// Returns the chunks received, indexed by source rank.
    pub async fn alltoall<T: Clone + Send + Sync + 'static>(
        &self,
        chunks: Vec<(T, u64)>,
    ) -> Result<Vec<T>, SockError> {
        self.timed("alltoall", self.alltoall_impl(chunks)).await
    }

    async fn alltoall_impl<T: Clone + Send + Sync + 'static>(
        &self,
        chunks: Vec<(T, u64)>,
    ) -> Result<Vec<T>, SockError> {
        let n = self.size();
        assert_eq!(chunks.len(), n, "alltoall needs one chunk per rank");
        let tag = self.next_collective_tag();
        let mut own: Option<T> = None;
        let mut sends = Vec::new();
        for (d, (chunk, bytes)) in chunks.into_iter().enumerate() {
            if d == self.rank {
                own = Some(chunk);
            } else {
                let comm = self.clone();
                sends.push(spawn(async move {
                    comm.coll_send(d, tag, MpiData::typed(bytes, chunk)).await
                }));
            }
        }
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        out[self.rank] = own;
        for _ in 0..n - 1 {
            let msg = self
                .recv_matching(Pattern {
                    src: crate::proto::ANY_SOURCE,
                    tag,
                })
                .await?;
            let v = msg.data.downcast::<T>().expect("type mismatch in alltoall");
            out[msg.src] = Some(v.as_ref().clone());
        }
        for s in sends {
            s.await?;
        }
        Ok(out
            .into_iter()
            .map(|v| v.expect("all ranks sent"))
            .collect())
    }
}
