//! MPI wire protocol: envelopes, tags, and the eager/rendezvous split.

use std::sync::Arc;

use mgrid_netsim::Payload;

/// An application-level tag (like `MPI_TAG`).
pub type Tag = i32;

/// Matches any source rank (like `MPI_ANY_SOURCE`).
pub const ANY_SOURCE: i32 = -1;
/// Matches any tag (like `MPI_ANY_TAG`).
pub const ANY_TAG: Tag = -2;

/// Data carried by an MPI message. Typed payloads ride along unchanged;
/// the byte count drives the network and copy cost models.
#[derive(Clone, Debug)]
pub struct MpiData {
    /// Logical message size in bytes.
    pub bytes: u64,
    /// The typed payload (may be [`Payload::empty`] for pure-cost traffic).
    pub payload: Payload,
}

impl MpiData {
    /// A message of `bytes` with no payload (cost-only traffic).
    pub fn bytes_only(bytes: u64) -> Self {
        MpiData {
            bytes,
            payload: Payload::empty(),
        }
    }

    /// A typed message; `bytes` is the logical size of `value`. The
    /// payload must be `Send + Sync` so messages can cross shard
    /// boundaries in sharded runs.
    pub fn typed<T: Send + Sync + 'static>(bytes: u64, value: T) -> Self {
        MpiData {
            bytes,
            payload: Payload::new(value),
        }
    }

    /// Downcast the payload.
    pub fn downcast<T: Send + Sync + 'static>(&self) -> Option<Arc<T>> {
        self.payload.downcast()
    }
}

/// Protocol messages exchanged between ranks (the payload of virtual-socket
/// messages).
#[derive(Clone, Debug)]
pub enum MpiMsg {
    /// Small message sent eagerly (buffered at the receiver).
    Eager {
        /// Sending rank.
        src: usize,
        /// Per-(src→dst) sequence number enforcing MPI's non-overtaking
        /// order (transfers may complete out of order on the wire).
        seq: u64,
        /// Application tag.
        tag: Tag,
        /// The data.
        data: MpiData,
    },
    /// Rendezvous request-to-send for a large message.
    Rts {
        /// Sending rank.
        src: usize,
        /// Per-(src→dst) sequence number (the RTS is the ordering point).
        seq: u64,
        /// Application tag.
        tag: Tag,
        /// Unique id of this send on the source rank.
        send_id: u64,
        /// Size of the pending data.
        bytes: u64,
    },
    /// Clear-to-send: the receiver has posted a matching receive.
    Cts {
        /// The send being released.
        send_id: u64,
    },
    /// The rendezvous data itself.
    RendezvousData {
        /// Sending rank.
        src: usize,
        /// The send this data belongs to.
        send_id: u64,
        /// The data.
        data: MpiData,
    },
}

/// A matched, received message as seen by the application.
#[derive(Clone, Debug)]
pub struct RecvMsg {
    /// Sending rank.
    pub src: usize,
    /// Application tag.
    pub tag: Tag,
    /// The data.
    pub data: MpiData,
}

/// A receive pattern: which (source, tag) pairs a posted receive accepts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pattern {
    /// Source rank, or [`ANY_SOURCE`].
    pub src: i32,
    /// Tag, or [`ANY_TAG`].
    pub tag: Tag,
}

impl Pattern {
    /// Match a specific source and tag.
    pub fn of(src: usize, tag: Tag) -> Self {
        Pattern {
            src: src as i32,
            tag,
        }
    }

    /// True if an envelope from `src` with `tag` satisfies this pattern.
    pub fn accepts(&self, src: usize, tag: Tag) -> bool {
        (self.src == ANY_SOURCE || self.src == src as i32)
            && (self.tag == ANY_TAG || self.tag == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_matching() {
        let p = Pattern::of(2, 7);
        assert!(p.accepts(2, 7));
        assert!(!p.accepts(1, 7));
        assert!(!p.accepts(2, 8));
        let any = Pattern {
            src: ANY_SOURCE,
            tag: ANY_TAG,
        };
        assert!(any.accepts(0, 0));
        assert!(any.accepts(9, -100));
        let any_src = Pattern {
            src: ANY_SOURCE,
            tag: 7,
        };
        assert!(any_src.accepts(3, 7));
        assert!(!any_src.accepts(3, 8));
    }

    #[test]
    fn typed_data_roundtrip() {
        let d = MpiData::typed(24, vec![1.0f64, 2.0, 3.0]);
        assert_eq!(d.bytes, 24);
        assert_eq!(*d.downcast::<Vec<f64>>().unwrap(), vec![1.0, 2.0, 3.0]);
        assert!(d.downcast::<String>().is_none());
    }
}
