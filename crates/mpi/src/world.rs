//! `mpirun`: start one process per virtual host and run an SPMD body.

use std::future::Future;
use std::rc::Rc;

use mgrid_desim::time::SimDuration;
use mgrid_desim::timeout::with_timeout;
use mgrid_desim::vclock::VirtualClock;
use mgrid_desim::{obs, spawn, Event};
use mgrid_middleware::{HostTable, ProcessCtx};
use mgrid_netsim::Network;

use crate::comm::{Comm, MpiParams};

/// Launch an MPI world: rank `r` runs on `hosts[r]` (hosts may repeat for
/// multi-process-per-host placements, provided the memory cap fits).
///
/// All ranks' sockets are bound before any body starts, so no traffic is
/// lost to startup races. Returns the bodies' outputs in rank order; every
/// rank's process is terminated afterwards.
///
/// # Examples
///
/// A two-host world over one switched link, each rank reporting its
/// identity (higher layers wire this up from a config — see
/// `microgrid::VirtualGrid::mpirun`):
///
/// ```
/// use mgrid_desim::vclock::VirtualClock;
/// use mgrid_desim::{SimRng, Simulation};
/// use mgrid_hostsim::{OsParams, PhysicalHost, PhysicalHostSpec, SchedulerParams};
/// use mgrid_middleware::HostTable;
/// use mgrid_mpi::{mpirun, MpiParams};
/// use mgrid_netsim::{LinkSpec, NetParams, Network, TopologyBuilder};
///
/// let mut sim = Simulation::new(7);
/// let out = sim.block_on(async {
///     let mut b = TopologyBuilder::new();
///     let sw = b.router("switch");
///     let hosts = ["n0.grid", "n1.grid"];
///     let nodes: Vec<_> = hosts
///         .iter()
///         .map(|name| {
///             let n = b.host(*name);
///             b.link(n, sw, LinkSpec::fast_ethernet());
///             n
///         })
///         .collect();
///     let clock = VirtualClock::identity();
///     let net = Network::new(b.build(), clock.clone(), NetParams::default());
///     let table = HostTable::new();
///     for (i, (name, node)) in hosts.iter().zip(&nodes).enumerate() {
///         let ph = PhysicalHost::new(
///             PhysicalHostSpec::new(format!("phys{i}"), 533.0, 1 << 30),
///             OsParams::default(),
///             SchedulerParams::default(),
///             SimRng::new(100 + i as u64),
///         );
///         table.register(*name, *node, ph.as_direct_virtual());
///     }
///     let hosts: Vec<String> = hosts.iter().map(|h| h.to_string()).collect();
///     mpirun(&table, &net, &clock, &hosts, MpiParams::default(), |comm| async move {
///         (comm.rank(), comm.size())
///     })
///     .await
/// });
/// assert_eq!(out, vec![(0, 2), (1, 2)]);
/// ```
///
/// # Panics
/// Panics if a host is unknown or a process cannot be started (memory).
pub async fn mpirun<T, F, Fut>(
    table: &HostTable,
    net: &Network,
    clock: &VirtualClock,
    hosts: &[String],
    params: MpiParams,
    body: F,
) -> Vec<T>
where
    T: 'static,
    F: Fn(Comm) -> Fut,
    Fut: Future<Output = T> + 'static,
{
    let hosts_rc = Rc::new(hosts.to_vec());
    let mut comms = Vec::with_capacity(hosts.len());
    for (rank, host) in hosts.iter().enumerate() {
        let ctx = ProcessCtx::spawn(table, net, clock, host, format!("mpi-rank{rank}"))
            .unwrap_or_else(|e| panic!("cannot start rank {rank} on {host}: {e}"));
        comms.push(Comm::create(ctx, rank, hosts_rc.clone(), params.clone()));
    }
    let mut handles = Vec::with_capacity(comms.len());
    for comm in &comms {
        let comm2 = comm.clone();
        let fut = body(comm2);
        handles.push(spawn(fut));
    }
    let mut outputs = Vec::with_capacity(handles.len());
    for h in handles {
        outputs.push(h.await);
    }
    for comm in &comms {
        comm.flush().await;
        comm.ctx().exit();
    }
    outputs
}

/// Fault-tolerant `mpirun`: like [`mpirun`], but every rank's body runs
/// under a wall-clock `deadline`. A rank that has not finished by then —
/// because its host crashed (its compute halts forever) or it deadlocked
/// waiting on a dead peer — is abandoned: its slot in the result is `None`
/// and it counts into the `faults.jobs_dropped` metric. Completed ranks
/// return `Some(output)` in rank order.
///
/// The final flush is bounded by the same deadline, so buffered sends to a
/// dead destination cannot wedge teardown.
pub async fn mpirun_resilient<T, F, Fut>(
    table: &HostTable,
    net: &Network,
    clock: &VirtualClock,
    hosts: &[String],
    params: MpiParams,
    deadline: SimDuration,
    body: F,
) -> Vec<Option<T>>
where
    T: 'static,
    F: Fn(Comm) -> Fut,
    Fut: Future<Output = T> + 'static,
{
    let hosts_rc = Rc::new(hosts.to_vec());
    let mut comms = Vec::with_capacity(hosts.len());
    for (rank, host) in hosts.iter().enumerate() {
        let ctx = ProcessCtx::spawn(table, net, clock, host, format!("mpi-rank{rank}"))
            .unwrap_or_else(|e| panic!("cannot start rank {rank} on {host}: {e}"));
        comms.push(Comm::create(ctx, rank, hosts_rc.clone(), params.clone()));
    }
    let mut handles = Vec::with_capacity(comms.len());
    for comm in &comms {
        let comm2 = comm.clone();
        let fut = body(comm2);
        handles.push(spawn(fut));
    }
    let cutoff = mgrid_desim::now() + deadline;
    let mut outputs = Vec::with_capacity(handles.len());
    for (rank, h) in handles.into_iter().enumerate() {
        let remaining = cutoff.saturating_since(mgrid_desim::now());
        let out = with_timeout(remaining, h).await;
        if out.is_none() {
            obs::count("faults.jobs_dropped", 1);
            obs::emit(|| Event::RankTimeout {
                rank: rank as u64,
                waited_ns: deadline.as_nanos(),
            });
        }
        outputs.push(out);
    }
    for comm in &comms {
        let _ = with_timeout(cutoff.saturating_since(mgrid_desim::now()), comm.flush()).await;
        comm.ctx().exit();
    }
    outputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::MpiData;
    use mgrid_desim::{SimRng, SimTime, Simulation};
    use mgrid_hostsim::{OsParams, PhysicalHost, PhysicalHostSpec, SchedulerParams};
    use mgrid_netsim::{LinkSpec, NetParams, NodeId, TopologyBuilder};

    /// A 4-host switched-Ethernet virtual grid on 4 direct physical hosts.
    fn grid4() -> (HostTable, Network, VirtualClock, Vec<String>) {
        let mut b = TopologyBuilder::new();
        let sw = b.router("switch");
        let mut nodes: Vec<(String, NodeId)> = Vec::new();
        for i in 0..4 {
            let name = format!("node{i}.cluster");
            let n = b.host(&name);
            b.link(n, sw, LinkSpec::fast_ethernet());
            nodes.push((name, n));
        }
        let clock = VirtualClock::identity();
        let net = Network::new(b.build(), clock.clone(), NetParams::default());
        let table = HostTable::new();
        for (i, (name, node)) in nodes.iter().enumerate() {
            let ph = PhysicalHost::new(
                PhysicalHostSpec::new(format!("phys{i}"), 533.0, 1 << 30),
                OsParams::default(),
                SchedulerParams::default(),
                SimRng::new(100 + i as u64),
            );
            table.register(name, *node, ph.as_direct_virtual());
        }
        let names = nodes.into_iter().map(|(n, _)| n).collect();
        (table, net, clock, names)
    }

    fn run_world<T: 'static>(
        seed: u64,
        body: impl Fn(Comm) -> std::pin::Pin<Box<dyn Future<Output = T>>> + 'static,
    ) -> Vec<T> {
        let mut sim = Simulation::new(seed);
        let out = sim.block_on(async move {
            let (table, net, clock, hosts) = grid4();
            mpirun(&table, &net, &clock, &hosts, MpiParams::default(), body).await
        });
        out
    }

    #[test]
    fn ranks_and_size() {
        let out = run_world(1, |comm| {
            Box::pin(async move { (comm.rank(), comm.size()) })
        });
        assert_eq!(out, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn ring_send_recv() {
        let out = run_world(2, |comm| {
            Box::pin(async move {
                let n = comm.size();
                let next = (comm.rank() + 1) % n;
                let prev = (comm.rank() + n - 1) % n;
                let msg = comm
                    .sendrecv(next, 7, MpiData::typed(8, comm.rank() as u64), prev, 7)
                    .await
                    .unwrap();
                *msg.data.downcast::<u64>().unwrap()
            })
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn nonovertaking_same_tag() {
        let out = run_world(3, |comm| {
            Box::pin(async move {
                match comm.rank() {
                    0 => {
                        // A big (rendezvous) then a small (eager) message
                        // with the same tag: receiver must see them in
                        // send order.
                        comm.send(1, 5, MpiData::typed(100_000, 1u32))
                            .await
                            .unwrap();
                        comm.send(1, 5, MpiData::typed(16, 2u32)).await.unwrap();
                        vec![]
                    }
                    1 => {
                        let a = comm.recv(0, 5).await.unwrap();
                        let b = comm.recv(0, 5).await.unwrap();
                        vec![
                            *a.data.downcast::<u32>().unwrap(),
                            *b.data.downcast::<u32>().unwrap(),
                        ]
                    }
                    _ => vec![],
                }
            })
        });
        assert_eq!(out[1], vec![1, 2]);
    }

    #[test]
    fn eager_overlapping_sends_preserve_order() {
        let out = run_world(4, |comm| {
            Box::pin(async move {
                match comm.rank() {
                    0 => {
                        // isend a large eager message, then a tiny one:
                        // the tiny one would win the race without seqs.
                        let h1 = comm.isend(1, 9, MpiData::typed(16_000, 10u32));
                        let h2 = comm.isend(1, 9, MpiData::typed(8, 20u32));
                        h1.await.unwrap();
                        h2.await.unwrap();
                        0
                    }
                    1 => {
                        let a = comm.recv(0, 9).await.unwrap();
                        *a.data.downcast::<u32>().unwrap()
                    }
                    _ => 0,
                }
            })
        });
        assert_eq!(out[1], 10);
    }

    #[test]
    fn barrier_aligns_ranks() {
        let out = run_world(5, |comm| {
            Box::pin(async move {
                // Stagger arrival; everyone leaves at (or after) the
                // slowest arrival.
                let d = mgrid_desim::SimDuration::from_millis(10 * (comm.rank() as u64 + 1));
                mgrid_desim::sleep(d).await;
                comm.barrier().await.unwrap();
                mgrid_desim::now()
            })
        });
        let max_arrival = SimTime::from_nanos(40_000_000);
        for t in out {
            assert!(t >= max_arrival, "left barrier at {t}");
            assert!(
                t < max_arrival + mgrid_desim::SimDuration::from_millis(5),
                "barrier too slow: {t}"
            );
        }
    }

    #[test]
    fn bcast_from_each_root() {
        for root in 0..4usize {
            let out = run_world(6 + root as u64, move |comm| {
                Box::pin(async move {
                    let data = if comm.rank() == root {
                        Some(MpiData::typed(64, format!("from-{root}")))
                    } else {
                        None
                    };
                    let got = comm.bcast(root, data).await.unwrap();
                    got.downcast::<String>().unwrap().as_ref().clone()
                })
            });
            assert!(out.iter().all(|s| s == &format!("from-{root}")));
        }
    }

    #[test]
    fn allreduce_sums_vectors() {
        let out = run_world(10, |comm| {
            Box::pin(async move {
                let v = vec![comm.rank() as f64, 1.0];
                comm.allreduce(v, 16, |a, b| {
                    a.iter().zip(b).map(|(x, y)| x + y).collect::<Vec<f64>>()
                })
                .await
                .unwrap()
            })
        });
        for v in out {
            assert_eq!(v, vec![6.0, 4.0]); // 0+1+2+3, 1*4
        }
    }

    #[test]
    fn reduce_max_at_root() {
        let out = run_world(11, |comm| {
            Box::pin(async move {
                comm.reduce(2, (comm.rank() as u64 * 7) % 5, 8, |a, b| *a.max(b))
                    .await
                    .unwrap()
            })
        });
        assert_eq!(out[2], Some(4)); // values 0,2,4,1
        assert_eq!(out[0], None);
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = run_world(12, |comm| {
            Box::pin(async move { comm.gather(0, comm.rank() as u32 * 100, 4).await.unwrap() })
        });
        assert_eq!(out[0], Some(vec![0, 100, 200, 300]));
        assert_eq!(out[1], None);
    }

    #[test]
    fn alltoall_exchanges_chunks() {
        let out = run_world(13, |comm| {
            Box::pin(async move {
                let chunks: Vec<(u32, u64)> = (0..comm.size())
                    .map(|d| ((comm.rank() * 10 + d) as u32, 4))
                    .collect();
                comm.alltoall(chunks).await.unwrap()
            })
        });
        // out[r][s] = s*10 + r
        for (r, row) in out.iter().enumerate() {
            for (s, v) in row.iter().enumerate() {
                assert_eq!(*v, (s * 10 + r) as u32);
            }
        }
    }

    #[test]
    fn recv_timeout_surfaces_dead_rank() {
        let mut sim = Simulation::new(21);
        let out = sim.block_on(async move {
            let (table, net, clock, hosts) = grid4();
            let params = MpiParams {
                recv_timeout: Some(mgrid_desim::SimDuration::from_secs(2)),
                ..MpiParams::default()
            };
            let table2 = table.clone();
            // Rank 3's host dies before it ever sends, so rank 0's receive
            // from it must time out and mark the rank suspect.
            mpirun(&table, &net, &clock, &hosts, params, move |comm| {
                let table = table2.clone();
                Box::pin(async move {
                    match comm.rank() {
                        0 => {
                            let err = comm.recv(3, 1).await.unwrap_err();
                            assert_eq!(err, mgrid_middleware::SockError::TimedOut);
                            comm.failed_ranks()
                        }
                        3 => {
                            table.lookup("node3.cluster").unwrap().vhost.crash();
                            Vec::new()
                        }
                        _ => Vec::new(),
                    }
                }) as std::pin::Pin<Box<dyn Future<Output = Vec<usize>>>>
            })
            .await
        });
        assert_eq!(out[0], vec![3]);
        let m = sim.obs().metrics().snapshot();
        assert!(m.counter("mpi.rank_timeouts") >= 1);
    }

    #[test]
    fn resilient_run_drops_crashed_rank() {
        let mut sim = Simulation::new(22);
        let out = sim.block_on(async move {
            let (table, net, clock, hosts) = grid4();
            let params = MpiParams {
                recv_timeout: Some(mgrid_desim::SimDuration::from_secs(1)),
                ..MpiParams::default()
            };
            let table2 = table.clone();
            mpirun_resilient(
                &table,
                &net,
                &clock,
                &hosts,
                params,
                mgrid_desim::SimDuration::from_secs(5),
                move |comm| {
                    let table = table2.clone();
                    Box::pin(async move {
                        if comm.rank() == 2 {
                            // Host dies 100ms in; the rank's compute halts.
                            mgrid_desim::sleep(mgrid_desim::SimDuration::from_millis(100)).await;
                            table.lookup("node2.cluster").unwrap().vhost.crash();
                            comm.ctx().compute_mops(1.0).await;
                        }
                        comm.rank()
                    }) as std::pin::Pin<Box<dyn Future<Output = usize>>>
                },
            )
            .await
        });
        assert_eq!(out, vec![Some(0), Some(1), None, Some(3)]);
        let m = sim.obs().metrics().snapshot();
        assert_eq!(m.counter("faults.jobs_dropped"), 1);
    }

    #[test]
    fn ping_pong_latency_sane() {
        let out = run_world(14, |comm| {
            Box::pin(async move {
                if comm.rank() == 0 {
                    let t0 = mgrid_desim::now();
                    let iters = 10;
                    for _ in 0..iters {
                        comm.send(1, 1, MpiData::bytes_only(4)).await.unwrap();
                        comm.recv(1, 2).await.unwrap();
                    }
                    let rtt = (mgrid_desim::now() - t0).as_secs_f64() / iters as f64;
                    Some(rtt)
                } else if comm.rank() == 1 {
                    for _ in 0..10 {
                        comm.recv(0, 1).await.unwrap();
                        comm.send(0, 2, MpiData::bytes_only(4)).await.unwrap();
                    }
                    None
                } else {
                    None
                }
            })
        });
        let rtt = out[0].unwrap();
        // Two switched-Ethernet hops each way (~50us prop per link) plus
        // software overheads: plausible LAN RTT is 200us..1ms.
        assert!(rtt > 150e-6 && rtt < 1.5e-3, "rtt {rtt}");
    }
}
