//! End-to-end observability: a small grid run must leave footprints in
//! every layer — scheduler quanta, network packets, memory registrations —
//! both as metrics counters and as typed trace events, and the trace must
//! encode to valid JSON lines.

use std::future::Future;
use std::pin::Pin;

use microgrid::apps::npb::{self, NpbBenchmark, NpbClass, NpbResult};
use microgrid::desim::{Category, Simulation};
use microgrid::mpi::MpiParams;
use microgrid::{presets, VirtualGrid};

fn run_small_grid(sim: &mut Simulation) {
    let config = presets::alpha_cluster();
    let results = sim.block_on(async move {
        let grid = VirtualGrid::build(config).expect("valid preset");
        grid.mpirun_all(MpiParams::default(), move |comm| {
            Box::pin(npb::run(NpbBenchmark::IS, comm, NpbClass::S, None))
                as Pin<Box<dyn Future<Output = NpbResult>>>
        })
        .await
    });
    assert!(results.iter().all(|r| r.verified));
}

#[test]
fn small_grid_run_populates_metrics() {
    let mut sim = Simulation::new(11);
    run_small_grid(&mut sim);
    let snap = sim.obs().metrics().snapshot();

    assert!(snap.counter("sched.quanta") > 0, "no scheduler quanta");
    assert!(snap.counter("net.packets_tx") > 0, "no packets transmitted");
    assert!(snap.counter("net.bytes_tx") > 0, "no bytes transmitted");
    assert!(snap.counter("mem.allocs") > 0, "no memory registrations");
    assert!(snap.counter("vsock.sends") > 0, "no vsocket sends");
    assert!(snap.counter("mpi.collectives") > 0, "no MPI collectives");

    // Histograms observed on the hot paths.
    let names: Vec<&str> = snap.histograms.iter().map(|h| h.name.as_str()).collect();
    assert!(names.contains(&"sched.quantum_wall_ns"), "{names:?}");
    assert!(names.contains(&"net.queue_depth_bytes"), "{names:?}");
    assert!(names.contains(&"mpi.collective_ns"), "{names:?}");

    // The rendered summary groups by category prefix.
    let table = snap.to_table();
    assert!(table.contains("[sched]"), "{table}");
    assert!(table.contains("[net]"), "{table}");
}

#[test]
fn small_grid_run_traces_all_layers_as_valid_json_lines() {
    let mut sim = Simulation::new(11);
    sim.obs().enable_tracing(1 << 20);
    run_small_grid(&mut sim);
    let tracer = sim.obs().tracer();

    assert!(!tracer.events_in(Category::Sched).is_empty());
    assert!(!tracer.events_in(Category::Net).is_empty());
    assert!(!tracer.events_in(Category::Mem).is_empty());
    assert!(!tracer.events_in(Category::Vsock).is_empty());
    assert!(!tracer.events_in(Category::Mpi).is_empty());

    // Every line is a standalone JSON object with the envelope fields.
    #[derive(serde::Deserialize)]
    struct Envelope {
        t_ns: u64,
        cat: String,
        event: String,
    }
    let mut last_t = 0;
    for ev in tracer.events() {
        let line = ev.to_json_line();
        let v: Envelope =
            serde_json::from_str(&line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
        assert!(v.t_ns >= last_t, "timestamps must be nondecreasing");
        last_t = v.t_ns;
        assert!(!v.cat.is_empty(), "{line}");
        assert!(!v.event.is_empty(), "{line}");
    }

    // Determinism: the same seed yields the same event stream.
    let mut sim2 = Simulation::new(11);
    sim2.obs().enable_tracing(1 << 20);
    run_small_grid(&mut sim2);
    let lines: Vec<String> = tracer.events().iter().map(|e| e.to_json_line()).collect();
    let lines2: Vec<String> = sim2
        .obs()
        .tracer()
        .events()
        .iter()
        .map(|e| e.to_json_line())
        .collect();
    assert_eq!(lines, lines2);
}
