//! End-to-end observability: a small grid run must leave footprints in
//! every layer — scheduler quanta, network packets, memory registrations —
//! both as metrics counters and as typed trace events, and the trace must
//! encode to valid JSON lines. The causal span layer gets the same
//! treatment: spans and flows from every instrumented subsystem, plus
//! byte-identical profiler and critical-path reports across same-seed
//! runs and across the sequential vs sharded engines.

use std::future::Future;
use std::pin::Pin;

use microgrid::apps::npb::{self, NpbBenchmark, NpbClass, NpbResult};
use microgrid::desim::shard::{run_sharded_stats, ShardHandle, ShardPlan, ShardRun};
use microgrid::desim::time::SimDuration;
use microgrid::desim::{profile, Category, Simulation, SpanSnapshot};
use microgrid::mpi::MpiParams;
use microgrid::{presets, VirtualGrid};

fn run_small_grid(sim: &mut Simulation) {
    let config = presets::alpha_cluster();
    let results = sim.block_on(async move {
        let grid = VirtualGrid::build(config).expect("valid preset");
        grid.mpirun_all(MpiParams::default(), move |comm| {
            Box::pin(npb::run(NpbBenchmark::IS, comm, NpbClass::S, None))
                as Pin<Box<dyn Future<Output = NpbResult>>>
        })
        .await
    });
    assert!(results.iter().all(|r| r.verified));
}

#[test]
fn small_grid_run_populates_metrics() {
    let mut sim = Simulation::new(11);
    run_small_grid(&mut sim);
    let snap = sim.obs().metrics().snapshot();

    assert!(snap.counter("sched.quanta") > 0, "no scheduler quanta");
    assert!(snap.counter("net.packets_tx") > 0, "no packets transmitted");
    assert!(snap.counter("net.bytes_tx") > 0, "no bytes transmitted");
    assert!(snap.counter("mem.allocs") > 0, "no memory registrations");
    assert!(snap.counter("vsock.sends") > 0, "no vsocket sends");
    assert!(snap.counter("mpi.collectives") > 0, "no MPI collectives");

    // Histograms observed on the hot paths.
    let names: Vec<&str> = snap.histograms.iter().map(|h| h.name.as_str()).collect();
    assert!(names.contains(&"sched.quantum_wall_ns"), "{names:?}");
    assert!(names.contains(&"net.queue_depth_bytes"), "{names:?}");
    assert!(names.contains(&"mpi.collective_ns"), "{names:?}");

    // The rendered summary groups by category prefix.
    let table = snap.to_table();
    assert!(table.contains("[sched]"), "{table}");
    assert!(table.contains("[net]"), "{table}");
}

#[test]
fn small_grid_run_traces_all_layers_as_valid_json_lines() {
    let mut sim = Simulation::new(11);
    sim.obs().enable_tracing(1 << 20);
    run_small_grid(&mut sim);
    let tracer = sim.obs().tracer();

    assert!(!tracer.events_in(Category::Sched).is_empty());
    assert!(!tracer.events_in(Category::Net).is_empty());
    assert!(!tracer.events_in(Category::Mem).is_empty());
    assert!(!tracer.events_in(Category::Vsock).is_empty());
    assert!(!tracer.events_in(Category::Mpi).is_empty());

    // Every line is a standalone JSON object with the envelope fields.
    #[derive(serde::Deserialize)]
    struct Envelope {
        t_ns: u64,
        cat: String,
        event: String,
    }
    let mut last_t = 0;
    for ev in tracer.events() {
        let line = ev.to_json_line();
        let v: Envelope =
            serde_json::from_str(&line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
        assert!(v.t_ns >= last_t, "timestamps must be nondecreasing");
        last_t = v.t_ns;
        assert!(!v.cat.is_empty(), "{line}");
        assert!(!v.event.is_empty(), "{line}");
    }

    // Determinism: the same seed yields the same event stream.
    let mut sim2 = Simulation::new(11);
    sim2.obs().enable_tracing(1 << 20);
    run_small_grid(&mut sim2);
    let lines: Vec<String> = tracer.events().iter().map(|e| e.to_json_line()).collect();
    let lines2: Vec<String> = sim2
        .obs()
        .tracer()
        .events()
        .iter()
        .map(|e| e.to_json_line())
        .collect();
    assert_eq!(lines, lines2);
}

#[test]
fn span_layer_records_flows_and_renders_deterministic_tables() {
    let run = || {
        let mut sim = Simulation::new(11);
        sim.obs().enable_spans();
        run_small_grid(&mut sim);
        sim.obs().spans().snapshot()
    };
    let snap = run();
    assert!(!snap.spans.is_empty(), "no spans recorded");

    // Every instrumented layer leaves spans: scheduler quanta, vsocket
    // send/recv, transport sends, and MPI collectives.
    let names: std::collections::BTreeSet<&str> = snap.spans.iter().map(|s| s.name).collect();
    for want in ["quantum", "vsock_send", "vsock_recv", "net_send"] {
        assert!(names.contains(want), "missing span {want}: {names:?}");
    }
    assert!(
        snap.spans.iter().any(|s| matches!(s.cat, Category::Mpi)),
        "no MPI collective spans"
    );

    // Both cross-process flow classes resolve: vsock message edges and
    // collective rendezvous edges into rank 0.
    let classes: std::collections::BTreeSet<&str> = snap.flows.iter().map(|f| f.class).collect();
    assert!(classes.contains("msg"), "no vsock flows: {classes:?}");
    assert!(classes.contains("coll"), "no collective flows: {classes:?}");

    // The rendered reports are byte-identical across same-seed runs.
    let snap2 = run();
    let prof = profile::Profile::from_snapshot(&snap).to_table();
    assert_eq!(
        prof,
        profile::Profile::from_snapshot(&snap2).to_table(),
        "profiler attribution table must be byte-identical across same-seed runs"
    );
    let cp = profile::critical_path(&snap);
    assert_eq!(
        cp.to_table(),
        profile::critical_path(&snap2).to_table(),
        "critical-path report must be byte-identical across same-seed runs"
    );
    assert!(prof.contains("vsock_send"), "{prof}");
    assert!(!cp.hops.is_empty(), "critical path should have hops");
}

#[test]
fn sharded_engine_records_identical_spans_to_the_sequential_engine() {
    let sequential = {
        let mut sim = Simulation::new(11);
        sim.obs().enable_spans();
        run_small_grid(&mut sim);
        sim.obs().seal();
        sim.obs().spans().snapshot()
    };

    // The same workload on the two-shard engine (workload shard plus an
    // idle companion), with the capture sealed at root completion — the
    // same pattern `mgrid run` uses under MGRID_SHARDS.
    type Factory = Box<dyn FnOnce(ShardHandle<()>) -> ShardRun<(), Option<SpanSnapshot>> + Send>;
    let workload: Factory = Box::new(|_h| {
        let sim = Simulation::new(11);
        sim.obs().enable_spans();
        let obs = sim.obs().clone();
        let out = std::rc::Rc::new(std::cell::RefCell::new(None));
        let out2 = out.clone();
        let config = presets::alpha_cluster();
        let root = sim.spawn(async move {
            let grid = VirtualGrid::build(config).expect("valid preset");
            let results = grid
                .mpirun_all(MpiParams::default(), move |comm| {
                    Box::pin(npb::run(NpbBenchmark::IS, comm, NpbClass::S, None))
                        as Pin<Box<dyn Future<Output = NpbResult>>>
                })
                .await;
            assert!(results.iter().all(|r| r.verified));
            obs.seal();
            *out2.borrow_mut() = Some(obs.spans().snapshot());
        });
        ShardRun {
            sim,
            deliver: Box::new(|_, _| {}),
            root_done: Box::new(move || root.is_finished()),
            advise: None,
            finish: Box::new(move |_sim| out.borrow_mut().take()),
        }
    });
    let idle: Factory = Box::new(|_h| ShardRun {
        sim: Simulation::new(0),
        deliver: Box::new(|_, _| {}),
        root_done: Box::new(|| true),
        advise: None,
        finish: Box::new(|_sim| None),
    });
    let plan = ShardPlan::connected(2, SimDuration::from_secs(1));
    let (mut outs, _stats) = run_sharded_stats(plan, vec![workload, idle]);
    let sharded = outs
        .swap_remove(0)
        .expect("workload shard finished without a capture");

    assert_eq!(
        sequential, sharded,
        "sharded engine must record byte-identical spans and flows"
    );
    assert_eq!(
        profile::critical_path(&sequential).to_table(),
        profile::critical_path(&sharded).to_table()
    );
}
