//! Grid partitioner for sharded parallel runs.
//!
//! Splits a [`GridConfig`] into logical processes for the sharded engine
//! (`mgrid_desim::shard`). The partitioning unit is the **physical host**:
//! every virtual host mapped onto a physical host shares its scheduler
//! state, so they must land in one shard. Units (physical hosts and
//! routers) are merged Kruskal-style along the *lowest*-latency links
//! first, which means the final cut runs along the **highest**-latency
//! links — exactly where conservative lookahead is cheapest, because the
//! lookahead of the run is the minimum propagation delay across the cut.
//!
//! The result is deterministic: units are numbered in configuration
//! order, edges sort by `(delay, config order)`, and shard ids are
//! assigned by the smallest unit index each group contains.

use mgrid_desim::shard::ShardPlan;
use mgrid_desim::time::SimDuration;
use mgrid_desim::FxHashMap;

use crate::config::GridConfig;

/// The outcome of partitioning a grid into shards.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Number of shards actually produced (≤ requested; a grid can never
    /// split finer than its physical hosts + routers).
    pub shards: usize,
    /// Shard of every network node (virtual host or router), by name.
    pub node_shard: FxHashMap<String, usize>,
    /// Conservative lookahead: the minimum propagation delay over cut
    /// links. `None` when nothing is cut (single shard or disconnected
    /// groups with no cross traffic).
    pub lookahead: Option<SimDuration>,
    /// Per-pair conservative lookahead: `pair_lookahead[s][d]` is the
    /// minimum delay over the cut links joining shards `s` and `d`
    /// directly (duplex links count both ways), `None` when no direct
    /// link joins the pair. Strictly wider than the single global
    /// [`Partition::lookahead`] for any cut with more than one distinct
    /// latency — the event-driven engine grants shards separated by a
    /// slow pair a correspondingly larger safe window.
    pub pair_lookahead: Vec<Vec<Option<SimDuration>>>,
}

impl Partition {
    /// Shard of node `name`, if it exists in the grid.
    pub fn shard_of(&self, name: &str) -> Option<usize> {
        self.node_shard.get(name).copied()
    }

    /// The [`ShardPlan`] this partition induces: a connected plan
    /// carrying the per-pair lookahead matrix when the cut carries
    /// traffic, an edge-free independent plan when nothing is cut.
    pub fn shard_plan(&self) -> ShardPlan {
        match self.lookahead {
            Some(la) if self.shards > 1 => ShardPlan::connected(self.shards, la)
                .with_lookahead_matrix(self.pair_lookahead.clone()),
            _ => ShardPlan::independent(self.shards.max(1)),
        }
    }
}

struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
        }
    }
    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let r = self.find(self.parent[x]);
            self.parent[x] = r;
            r
        } else {
            x
        }
    }
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        // Attach the larger root under the smaller so shard numbering by
        // minimum unit index stays stable.
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi] = lo;
        true
    }
}

/// Partition `config` into (at most) `shards` groups along its
/// highest-latency links.
///
/// # Examples
///
/// ```
/// use microgrid::{partition::partition, presets};
/// use mgrid_desim::time::SimDuration;
///
/// // The vBNS testbed: two LAN sites joined by a 25 ms long-haul link.
/// let cfg = presets::vbns_grid(155e6);
/// let part = partition(&cfg, 2);
/// assert_eq!(part.shards, 2);
/// // The cut lands on the cross-country hop, so both UCSD processes
/// // stay together and the lookahead is the 25 ms bottleneck delay.
/// assert_eq!(part.shard_of("ucsd0"), part.shard_of("ucsd1"));
/// assert_eq!(part.shard_of("uiuc0"), part.shard_of("uiuc1"));
/// assert_ne!(part.shard_of("ucsd0"), part.shard_of("uiuc0"));
/// assert_eq!(part.lookahead, Some(SimDuration::from_millis(25)));
/// ```
pub fn partition(config: &GridConfig, shards: usize) -> Partition {
    let shards = shards.max(1);

    // Units: physical hosts first (in config order), then routers.
    let mut unit_of: FxHashMap<&str, usize> = FxHashMap::default();
    for p in &config.physical_hosts {
        let next = unit_of.len();
        unit_of.entry(p.name.as_str()).or_insert(next);
    }
    for r in &config.network.routers {
        let next = unit_of.len();
        unit_of.entry(r.as_str()).or_insert(next);
    }
    // Virtual hosts resolve to their physical host's unit.
    let vhost_unit: FxHashMap<&str, usize> = config
        .virtual_hosts
        .iter()
        .map(|v| (v.spec.name.as_str(), unit_of[v.mapped_to.as_str()]))
        .collect();
    let unit = |name: &str| -> usize {
        vhost_unit
            .get(name)
            .or_else(|| unit_of.get(name))
            .copied()
            .expect("validated config names resolve")
    };

    let n_units = unit_of.len();
    let target = shards.min(n_units);
    let mut dsu = Dsu::new(n_units);
    let mut groups = n_units;

    // Kruskal: merge along the cheapest (lowest-delay) links first, so
    // the links left uncut — the shard boundary — are the slowest ones.
    let mut edges: Vec<(SimDuration, usize, usize, usize)> = config
        .network
        .links
        .iter()
        .enumerate()
        .map(|(i, l)| (l.delay, i, unit(&l.a), unit(&l.b)))
        .collect();
    edges.sort_by_key(|e| (e.0, e.1));
    for &(_, _, a, b) in &edges {
        if groups <= target {
            break;
        }
        if dsu.union(a, b) {
            groups -= 1;
        }
    }
    // Disconnected leftovers beyond the target collapse into unit 0's
    // group (no cross-traffic, so the merge costs nothing).
    if groups > target {
        for u in 1..n_units {
            if groups <= target {
                break;
            }
            if dsu.union(0, u) {
                groups -= 1;
            }
        }
    }

    // Number shards by the smallest unit index in each group.
    let mut shard_of_root: FxHashMap<usize, usize> = FxHashMap::default();
    let mut roots: Vec<usize> = (0..n_units).map(|u| dsu.find(u)).collect();
    {
        let mut seen: Vec<usize> = roots.clone();
        seen.sort_unstable();
        seen.dedup();
        for (i, r) in seen.into_iter().enumerate() {
            shard_of_root.insert(r, i);
        }
    }
    let shard_of_unit = |u: usize, roots: &[usize]| shard_of_root[&roots[u]];
    roots = (0..n_units).map(|u| dsu.find(u)).collect();

    let mut node_shard = FxHashMap::default();
    for v in &config.virtual_hosts {
        node_shard.insert(
            v.spec.name.clone(),
            shard_of_unit(vhost_unit[v.spec.name.as_str()], &roots),
        );
    }
    for r in &config.network.routers {
        node_shard.insert(r.clone(), shard_of_unit(unit_of[r.as_str()], &roots));
    }

    let lookahead = config
        .network
        .links
        .iter()
        .filter(|l| node_shard[&l.a] != node_shard[&l.b])
        .map(|l| l.delay)
        .min();

    // Per-pair matrix: minimum delay over the direct cut links of each
    // shard pair (config links are duplex, so both directions get the
    // entry).
    let shards_out = shard_of_root.len();
    let mut pair_lookahead = vec![vec![None; shards_out]; shards_out];
    for l in &config.network.links {
        let (sa, sb) = (node_shard[&l.a], node_shard[&l.b]);
        if sa == sb {
            continue;
        }
        for (x, y) in [(sa, sb), (sb, sa)] {
            pair_lookahead[x][y] = match pair_lookahead[x][y] {
                Some(d) if d <= l.delay => Some(d),
                _ => Some(l.delay),
            };
        }
    }

    Partition {
        shards: shards_out,
        node_shard,
        lookahead,
        pair_lookahead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn single_shard_cuts_nothing() {
        let cfg = presets::alpha_cluster();
        let p = partition(&cfg, 1);
        assert_eq!(p.shards, 1);
        assert!(p.lookahead.is_none());
        assert!(p.node_shard.values().all(|&s| s == 0));
    }

    #[test]
    fn vbns_cuts_the_long_haul_link() {
        let cfg = presets::vbns_grid(622e6);
        let p = partition(&cfg, 2);
        assert_eq!(p.shards, 2);
        // Sites stay whole; the 25 ms vBNS hop is the boundary.
        assert_eq!(p.shard_of("ucsd0"), p.shard_of("ucsd-gw"));
        assert_eq!(p.shard_of("uiuc1"), p.shard_of("uiuc-gw"));
        assert_ne!(p.shard_of("vbns-la"), p.shard_of("vbns-chi"));
        assert_eq!(p.lookahead, Some(SimDuration::from_millis(25)));
    }

    #[test]
    fn request_beyond_units_clamps() {
        let cfg = presets::vbns_grid(155e6);
        // 4 physical hosts + 6 routers = 10 units max.
        let p = partition(&cfg, 64);
        assert_eq!(p.shards, 10);
    }

    #[test]
    fn vhosts_follow_their_physical_host() {
        let mut cfg = presets::vbns_grid(155e6);
        // Remap both UIUC processes onto one physical host: they must
        // now share a shard no matter where the links point.
        cfg.virtual_hosts[3].mapped_to = "phys2".into();
        let p = partition(&cfg, 8);
        assert_eq!(p.shard_of("uiuc0"), p.shard_of("uiuc1"));
    }

    #[test]
    fn pair_matrix_covers_the_cut_both_ways() {
        let cfg = presets::vbns_grid(622e6);
        let p = partition(&cfg, 2);
        assert_eq!(p.shards, 2);
        // One duplex long-haul link joins the two sites; the matrix
        // carries its delay in both directions and nothing on the
        // diagonal.
        assert_eq!(p.pair_lookahead[0][1], Some(SimDuration::from_millis(25)));
        assert_eq!(p.pair_lookahead[1][0], Some(SimDuration::from_millis(25)));
        assert_eq!(p.pair_lookahead[0][0], None);
        assert_eq!(p.pair_lookahead[1][1], None);
    }

    #[test]
    fn shard_plan_matches_the_partition() {
        let cfg = presets::vbns_grid(155e6);
        let p = partition(&cfg, 2);
        let plan = p.shard_plan();
        assert_eq!(plan.shards(), 2);
        assert_eq!(plan.lookahead(), Some(SimDuration::from_millis(25)));
        // A single-shard partition cuts nothing: edge-free plan.
        let solo = partition(&cfg, 1).shard_plan();
        assert_eq!(solo.shards(), 1);
        assert_eq!(solo.lookahead(), None);
    }

    #[test]
    fn numbering_is_deterministic() {
        let cfg = presets::vbns_grid(155e6);
        let a = partition(&cfg, 3);
        let b = partition(&cfg, 3);
        assert_eq!(a.shards, b.shards);
        for (k, v) in &a.node_shard {
            assert_eq!(b.node_shard.get(k), Some(v), "node {k}");
        }
    }
}
