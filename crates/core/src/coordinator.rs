//! Global coordination: choosing the simulation rate (paper §2.3).
//!
//! "The simulation rate (SR) is defined for each resource type r as
//! `SR_r = spec(physical r) / spec(virtual r mapped to this physical
//! resource)`. … No resource should be allowed to work faster than this
//! rate … This global coordination mechanism for the rate of simulation
//! over all available resources ensures accurate performance analysis."
//!
//! For CPUs the bound is per *physical host*: the virtual hosts mapped to
//! it together need `rate * sum(virtual speeds)` of its capacity, so
//! `rate <= C_p / sum(V)`. The network simulator in this reproduction is
//! not itself resource-bound (it is simulated, not run on a real NIC), so
//! networks constrain the rate only through an optional explicit cap —
//! standing in for NSE's unpredictable compute demand, which the paper
//! lists as an open problem.

use mgrid_desim::FxHashMap;

use crate::config::{ConfigError, GridConfig, RatePolicy};

/// Per-resource simulation-rate bounds, and the chosen global rate.
#[derive(Clone, Debug)]
pub struct RatePlan {
    /// `(physical host, feasible rate bound)` per CPU, ascending.
    pub cpu_bounds: Vec<(String, f64)>,
    /// The binding constraint.
    pub feasible: f64,
    /// The rate actually selected by the policy.
    pub chosen: f64,
}

/// Sort CPU bounds ascending by feasible rate, host name as tie-break.
/// `total_cmp` keeps the order total even if a bound is NaN (e.g. a
/// degraded-speed fraction dividing 0/0), so a degenerate bound sorts
/// last deterministically instead of panicking the coordinator.
pub(crate) fn sort_cpu_bounds(bounds: &mut [(String, f64)]) {
    bounds.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
}

/// Compute the feasible bound and select the rate per the config's policy.
pub fn plan_rate(config: &GridConfig) -> Result<RatePlan, ConfigError> {
    config.validate()?;
    let mut demand: FxHashMap<&str, f64> = FxHashMap::default();
    for v in &config.virtual_hosts {
        *demand.entry(v.mapped_to.as_str()).or_insert(0.0) += v.spec.speed_mops;
    }
    let mut cpu_bounds: Vec<(String, f64)> = config
        .physical_hosts
        .iter()
        .filter_map(|p| {
            demand
                .get(p.name.as_str())
                .map(|v| (p.name.clone(), p.speed_mops / v))
        })
        .collect();
    sort_cpu_bounds(&mut cpu_bounds);
    let feasible = cpu_bounds.first().map(|(_, r)| *r).unwrap_or(f64::INFINITY);
    let chosen = match config.rate {
        RatePolicy::Auto { safety } => {
            assert!(
                safety > 0.0 && safety <= 1.0,
                "safety factor must be in (0,1], got {safety}"
            );
            if feasible.is_finite() {
                feasible * safety
            } else {
                1.0
            }
        }
        RatePolicy::Fixed(r) => {
            if r > feasible {
                return Err(ConfigError::InfeasibleRate {
                    requested: format!("{r}"),
                    feasible: format!("{feasible}"),
                });
            }
            r
        }
    };
    Ok(RatePlan {
        cpu_bounds,
        feasible,
        chosen,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NetworkConfig, VirtualHostConfig};
    use mgrid_desim::time::SimDuration;
    use mgrid_hostsim::{PhysicalHostSpec, VirtualHostSpec};

    fn config(rate: RatePolicy) -> GridConfig {
        GridConfig {
            name: "c".into(),
            physical_hosts: vec![
                PhysicalHostSpec::new("p0", 500.0, 1 << 30),
                PhysicalHostSpec::new("p1", 1000.0, 1 << 30),
            ],
            virtual_hosts: vec![
                VirtualHostConfig {
                    spec: VirtualHostSpec::new("v0", 100.0, 1 << 27),
                    mapped_to: "p0".into(),
                },
                VirtualHostConfig {
                    spec: VirtualHostSpec::new("v1", 150.0, 1 << 27),
                    mapped_to: "p0".into(),
                },
                VirtualHostConfig {
                    spec: VirtualHostSpec::new("v2", 100.0, 1 << 27),
                    mapped_to: "p1".into(),
                },
            ],
            network: NetworkConfig::default(),
            rate,
            quantum: SimDuration::from_millis(10),
            seed: 0,
            faults: None,
            shards: None,
        }
    }

    #[test]
    fn feasible_is_min_over_hosts() {
        // p0: 500/(100+150) = 2.0 ; p1: 1000/100 = 10.0.
        let plan = plan_rate(&config(RatePolicy::Auto { safety: 1.0 })).unwrap();
        assert_eq!(plan.feasible, 2.0);
        assert_eq!(plan.chosen, 2.0);
        assert_eq!(plan.cpu_bounds[0].0, "p0");
    }

    #[test]
    fn safety_factor_scales_choice() {
        let plan = plan_rate(&config(RatePolicy::Auto { safety: 0.5 })).unwrap();
        assert_eq!(plan.chosen, 1.0);
    }

    #[test]
    fn fixed_rate_within_bound_accepted() {
        let plan = plan_rate(&config(RatePolicy::Fixed(0.04))).unwrap();
        assert_eq!(plan.chosen, 0.04);
    }

    #[test]
    fn fixed_rate_beyond_bound_rejected() {
        let err = plan_rate(&config(RatePolicy::Fixed(3.0))).unwrap_err();
        assert!(matches!(err, ConfigError::InfeasibleRate { .. }));
    }

    #[test]
    fn zero_speed_virtual_host_rejected() {
        // A 0-Mops virtual host would make its physical host's demand sum
        // zero and the bound `C_p / sum(demand)` infinite; plan_rate must
        // refuse instead of silently choosing an unbounded rate.
        let mut c = config(RatePolicy::Auto { safety: 1.0 });
        c.virtual_hosts = vec![VirtualHostConfig {
            spec: VirtualHostSpec::new("v0", 0.0, 1 << 27),
            mapped_to: "p0".into(),
        }];
        let err = plan_rate(&c).unwrap_err();
        assert_eq!(err, ConfigError::NonPositiveSpeed("v0".into()));
    }

    #[test]
    fn nan_bound_sorts_without_panicking() {
        // plan_rate's validation rejects NaN speeds at the config layer,
        // but the sort must stay total on its own: a NaN bound (0/0 from
        // a fully degraded host) used to panic `partial_cmp(..).unwrap()`.
        let mut bounds = vec![
            ("pb".to_string(), f64::NAN),
            ("pa".to_string(), 2.0),
            ("pc".to_string(), f64::NAN),
            ("pd".to_string(), 0.5),
        ];
        sort_cpu_bounds(&mut bounds);
        assert_eq!(bounds[0].0, "pd");
        assert_eq!(bounds[1].0, "pa");
        // NaN sorts after every finite value under total_cmp, names break
        // the tie deterministically.
        assert_eq!(bounds[2].0, "pb");
        assert_eq!(bounds[3].0, "pc");
        assert!(bounds[2].1.is_nan() && bounds[3].1.is_nan());
    }

    #[test]
    fn nan_speed_physical_host_rejected() {
        let mut c = config(RatePolicy::Auto { safety: 1.0 });
        c.physical_hosts[0] = PhysicalHostSpec::new("p0", f64::NAN, 1 << 30);
        let err = plan_rate(&c).unwrap_err();
        assert_eq!(err, ConfigError::NonPositiveSpeed("p0".into()));
    }

    #[test]
    fn unmapped_virtual_host_rejected_not_unconstrained() {
        // Mapping to a host the config never declares must be an error,
        // not a virtual host that silently contributes no CPU constraint.
        let mut c = config(RatePolicy::Auto { safety: 1.0 });
        c.virtual_hosts[1].mapped_to = "ghost".into();
        let err = plan_rate(&c).unwrap_err();
        assert_eq!(err, ConfigError::UnknownPhysicalHost("ghost".into()));
    }

    #[test]
    fn slower_virtual_cpu_allows_faster_than_realtime() {
        // A 10-Mops virtual host on a 500-Mops physical host could run 50x
        // real time (the paper's "can be run at a variety of actual
        // speeds" observation behind Fig 15).
        let mut c = config(RatePolicy::Auto { safety: 1.0 });
        c.virtual_hosts = vec![VirtualHostConfig {
            spec: VirtualHostSpec::new("slow", 10.0, 1 << 27),
            mapped_to: "p0".into(),
        }];
        let plan = plan_rate(&c).unwrap();
        assert_eq!(plan.feasible, 50.0);
    }
}
