//! Virtual Grid configuration.
//!
//! A [`GridConfig`] is the complete, serializable description of one
//! virtual Grid experiment: the physical (emulation) hosts, the virtual
//! hosts and their mapping, the virtual network topology, and the
//! simulation-rate policy. It corresponds to the paper's "network
//! configuration files" plus the GIS virtual-resource records that the
//! MicroGrid reads at startup (§2.4.2, Fig 3).

use mgrid_desim::time::SimDuration;
use mgrid_faults::FaultPlan;
use mgrid_hostsim::{PhysicalHostSpec, VirtualHostSpec};
use serde::{Deserialize, Serialize};

/// How the global simulation rate is chosen (paper §2.3).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum RatePolicy {
    /// The maximum feasible rate times a safety factor in `(0, 1]`.
    Auto {
        /// Fraction of the feasible bound actually used.
        safety: f64,
    },
    /// A fixed rate (must not exceed the feasible bound).
    Fixed(f64),
}

impl Default for RatePolicy {
    fn default() -> Self {
        RatePolicy::Auto { safety: 0.95 }
    }
}

/// One virtual host and its mapping.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VirtualHostConfig {
    /// The host's virtual specification.
    pub spec: VirtualHostSpec,
    /// Name of the physical host carrying it.
    pub mapped_to: String,
}

/// A duplex link between two named nodes (virtual hosts or routers).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinkConfig {
    /// One end (virtual host or router name).
    pub a: String,
    /// The other end.
    pub b: String,
    /// Bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// FIFO queue capacity in bytes (`None` = default 512 KB).
    pub queue_bytes: Option<u64>,
}

/// The virtual network: routers plus links among named nodes.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Router names (virtual hosts are nodes implicitly).
    pub routers: Vec<String>,
    /// Duplex links.
    pub links: Vec<LinkConfig>,
}

/// A complete virtual Grid description.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GridConfig {
    /// Configuration name (the GIS `Configuration_Name` attribute).
    pub name: String,
    /// Emulation-cluster hosts.
    pub physical_hosts: Vec<PhysicalHostSpec>,
    /// Virtual hosts and their mappings.
    pub virtual_hosts: Vec<VirtualHostConfig>,
    /// The virtual network.
    pub network: NetworkConfig,
    /// Simulation-rate policy.
    pub rate: RatePolicy,
    /// MicroGrid scheduler quantum (paper default 10 ms; Fig 11 sweeps it).
    pub quantum: SimDuration,
    /// Seed for every stochastic model component.
    pub seed: u64,
    /// Scripted fault scenario injected while the grid runs (`None` = no
    /// faults). Ignored on baseline grids: the physical-grid condition has
    /// no fault injector to compare against.
    pub faults: Option<FaultPlan>,
    /// Number of logical shards for parallel execution (`None` or `1` =
    /// the sequential engine). The partitioner ([`crate::partition`])
    /// groups virtual hosts by physical host and cuts the highest-latency
    /// links; older configs without this field parse as `None`.
    pub shards: Option<usize>,
}

/// Configuration validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A virtual host maps to an unknown physical host.
    UnknownPhysicalHost(String),
    /// A link endpoint names no virtual host or router.
    UnknownNode(String),
    /// Duplicate name.
    DuplicateName(String),
    /// A fixed rate exceeds the feasible bound.
    InfeasibleRate {
        /// Requested rate.
        requested: String,
        /// Feasible bound.
        feasible: String,
    },
    /// A host (physical or virtual) declares a non-positive CPU speed,
    /// which would make the coordinator's `C_p / sum(demand)` bound
    /// meaningless (zero demand divides to infinity).
    NonPositiveSpeed(String),
    /// A fault-plan event is malformed: bad parameters or a reference to
    /// a name the grid does not define.
    InvalidFault(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::UnknownPhysicalHost(h) => write!(f, "unknown physical host {h:?}"),
            ConfigError::UnknownNode(n) => write!(f, "unknown network node {n:?}"),
            ConfigError::DuplicateName(n) => write!(f, "duplicate name {n:?}"),
            ConfigError::InfeasibleRate {
                requested,
                feasible,
            } => write!(f, "rate {requested} exceeds feasible bound {feasible}"),
            ConfigError::NonPositiveSpeed(h) => {
                write!(f, "host {h:?} declares a non-positive CPU speed")
            }
            ConfigError::InvalidFault(why) => write!(f, "invalid fault plan: {why}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl GridConfig {
    /// Check referential integrity (names resolve, no duplicates, speeds
    /// positive) and, when a fault plan is present, that every fault has
    /// sound parameters and targets a name the grid defines.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let mut seen = mgrid_desim::FxHashSet::default();
        for p in &self.physical_hosts {
            if !seen.insert(p.name.clone()) {
                return Err(ConfigError::DuplicateName(p.name.clone()));
            }
            if p.speed_mops.is_nan() || p.speed_mops <= 0.0 {
                return Err(ConfigError::NonPositiveSpeed(p.name.clone()));
            }
        }
        let mut nodes = mgrid_desim::FxHashSet::default();
        let mut vhosts = mgrid_desim::FxHashSet::default();
        for v in &self.virtual_hosts {
            if !seen.insert(v.spec.name.clone()) || !nodes.insert(v.spec.name.clone()) {
                return Err(ConfigError::DuplicateName(v.spec.name.clone()));
            }
            vhosts.insert(v.spec.name.clone());
            if !self.physical_hosts.iter().any(|p| p.name == v.mapped_to) {
                return Err(ConfigError::UnknownPhysicalHost(v.mapped_to.clone()));
            }
            if v.spec.speed_mops.is_nan() || v.spec.speed_mops <= 0.0 {
                return Err(ConfigError::NonPositiveSpeed(v.spec.name.clone()));
            }
        }
        for r in &self.network.routers {
            if !seen.insert(r.clone()) || !nodes.insert(r.clone()) {
                return Err(ConfigError::DuplicateName(r.clone()));
            }
        }
        for l in &self.network.links {
            for end in [&l.a, &l.b] {
                if !nodes.contains(end) {
                    return Err(ConfigError::UnknownNode(end.clone()));
                }
            }
        }
        if let Some(plan) = &self.faults {
            plan.check_params().map_err(ConfigError::InvalidFault)?;
            for ev in &plan.events {
                for name in ev.kind.node_refs() {
                    let known = if ev.kind.is_host_fault() {
                        vhosts.contains(name)
                    } else {
                        nodes.contains(name)
                    };
                    if !known {
                        return Err(ConfigError::InvalidFault(format!(
                            "{} targets unknown node {name:?}",
                            ev.kind.name()
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Effective shard count: `shards`, clamped to at least 1.
    ///
    /// # Examples
    ///
    /// ```
    /// let mut c = microgrid::presets::alpha_cluster();
    /// assert_eq!(c.shard_count(), 1); // presets default to sequential
    /// c.shards = Some(4);
    /// assert_eq!(c.shard_count(), 4);
    /// ```
    pub fn shard_count(&self) -> usize {
        self.shards.unwrap_or(1).max(1)
    }

    /// Names of all virtual hosts, in configuration order.
    pub fn virtual_host_names(&self) -> Vec<String> {
        self.virtual_hosts
            .iter()
            .map(|v| v.spec.name.clone())
            .collect()
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serializes")
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GridConfig {
        GridConfig {
            name: "Test_Configuration".into(),
            physical_hosts: vec![PhysicalHostSpec::new("phys0", 533.0, 1 << 30)],
            virtual_hosts: vec![VirtualHostConfig {
                spec: VirtualHostSpec::new("vm0", 100.0, 1 << 27),
                mapped_to: "phys0".into(),
            }],
            network: NetworkConfig {
                routers: vec!["r0".into()],
                links: vec![LinkConfig {
                    a: "vm0".into(),
                    b: "r0".into(),
                    bandwidth_bps: 100e6,
                    delay: SimDuration::from_micros(50),
                    queue_bytes: None,
                }],
            },
            rate: RatePolicy::default(),
            quantum: SimDuration::from_millis(10),
            seed: 1,
            faults: None,
            shards: None,
        }
    }

    #[test]
    fn valid_config_passes() {
        assert_eq!(sample().validate(), Ok(()));
    }

    #[test]
    fn unknown_mapping_rejected() {
        let mut c = sample();
        c.virtual_hosts[0].mapped_to = "ghost".into();
        assert!(matches!(
            c.validate(),
            Err(ConfigError::UnknownPhysicalHost(_))
        ));
    }

    #[test]
    fn unknown_link_endpoint_rejected() {
        let mut c = sample();
        c.network.links[0].b = "nowhere".into();
        assert!(matches!(c.validate(), Err(ConfigError::UnknownNode(_))));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut c = sample();
        c.network.routers.push("vm0".into());
        assert!(matches!(c.validate(), Err(ConfigError::DuplicateName(_))));
    }

    #[test]
    fn nonpositive_speed_rejected() {
        let mut c = sample();
        c.virtual_hosts[0].spec.speed_mops = 0.0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::NonPositiveSpeed("vm0".into()))
        );
        let mut c = sample();
        c.physical_hosts[0].speed_mops = -1.0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::NonPositiveSpeed("phys0".into()))
        );
    }

    #[test]
    fn fault_plan_bad_params_rejected() {
        use mgrid_faults::{FaultKind, FaultPlan};
        let mut c = sample();
        c.faults = Some(FaultPlan::new().at(
            SimDuration::from_secs(1),
            FaultKind::LinkLoss {
                a: "vm0".into(),
                b: "r0".into(),
                per_mille: 1500,
            },
        ));
        assert!(matches!(c.validate(), Err(ConfigError::InvalidFault(_))));
    }

    #[test]
    fn fault_targeting_unknown_node_rejected() {
        use mgrid_faults::{FaultKind, FaultPlan};
        let mut c = sample();
        c.faults = Some(FaultPlan::new().at(
            SimDuration::from_secs(1),
            FaultKind::LinkDown {
                a: "vm0".into(),
                b: "ghost".into(),
            },
        ));
        assert!(matches!(c.validate(), Err(ConfigError::InvalidFault(_))));
    }

    #[test]
    fn host_fault_must_target_a_virtual_host() {
        use mgrid_faults::{FaultKind, FaultPlan};
        // Routers are network nodes but not hosts: crashing one is a
        // config error, not a silent no-op.
        let mut c = sample();
        c.faults = Some(FaultPlan::new().at(
            SimDuration::from_secs(1),
            FaultKind::HostCrash { host: "r0".into() },
        ));
        assert!(matches!(c.validate(), Err(ConfigError::InvalidFault(_))));
        let mut ok = sample();
        ok.faults = Some(FaultPlan::new().at(
            SimDuration::from_secs(1),
            FaultKind::HostCrash { host: "vm0".into() },
        ));
        assert_eq!(ok.validate(), Ok(()));
    }

    #[test]
    fn json_roundtrip() {
        let c = sample();
        let json = c.to_json();
        let back = GridConfig::from_json(&json).unwrap();
        assert_eq!(back.name, c.name);
        assert_eq!(back.virtual_hosts.len(), 1);
        assert_eq!(back.network.links[0].bandwidth_bps, 100e6);
    }
}
