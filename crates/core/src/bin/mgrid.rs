//! `mgrid` — run Grid workloads on virtual Grids from the command line.
//!
//! ```text
//! mgrid presets                          # list built-in configurations
//! mgrid dump alpha_cluster > grid.json   # write a preset's JSON
//! mgrid validate grid.json               # check a configuration
//! mgrid rate grid.json                   # show the coordinator's plan
//! mgrid run grid.json MG S               # NPB MG class S on the MicroGrid
//! mgrid run grid.json MG S --baseline    # ... on the physical baseline
//! mgrid run grid.json wavetoy 50         # CACTUS WaveToy, 50^3 grid
//! mgrid run grid.json MG S --trace-out trace.jsonl   # + JSON-lines trace
//! ```
//!
//! Every `run` prints a per-category metrics summary (scheduler quanta,
//! network traffic, vsocket and MPI activity) after the result line.
//! `--trace-out <path>` additionally enables the typed-event tracer and
//! writes one JSON object per line; `--trace-cap <n>` bounds the retained
//! events (default 65536, oldest evicted first — evictions show up as the
//! `trace.dropped` counter in the summary).

use std::future::Future;
use std::pin::Pin;

use microgrid::apps::npb::{self, NpbBenchmark, NpbClass, NpbResult};
use microgrid::apps::wavetoy::{self, WaveToyConfig, WaveToyResult};
use microgrid::desim::Simulation;
use microgrid::mpi::MpiParams;
use microgrid::{plan_rate, presets, GridConfig, VirtualGrid};

fn preset_by_name(name: &str) -> Option<GridConfig> {
    match name {
        "alpha_cluster" => Some(presets::alpha_cluster()),
        "alpha_cluster_shared" => Some(presets::alpha_cluster_shared()),
        "hpvm_cluster" => Some(presets::hpvm_cluster()),
        "vbns_oc12" => Some(presets::vbns_grid(622e6)),
        "vbns_oc3" => Some(presets::vbns_grid(155e6)),
        "vbns_10mbps" => Some(presets::vbns_grid(10e6)),
        "fig17_cluster" => Some(presets::fig17_cluster()),
        _ => None,
    }
}

const PRESETS: &[&str] = &[
    "alpha_cluster",
    "alpha_cluster_shared",
    "hpvm_cluster",
    "vbns_oc12",
    "vbns_oc3",
    "vbns_10mbps",
    "fig17_cluster",
];

fn load_config(path_or_preset: &str) -> GridConfig {
    if let Some(c) = preset_by_name(path_or_preset) {
        return c;
    }
    let text = std::fs::read_to_string(path_or_preset).unwrap_or_else(|e| {
        eprintln!("cannot read {path_or_preset}: {e}");
        std::process::exit(2);
    });
    GridConfig::from_json(&text).unwrap_or_else(|e| {
        eprintln!("invalid configuration {path_or_preset}: {e}");
        std::process::exit(2);
    })
}

fn usage() -> ! {
    eprintln!(
        "usage: mgrid <command>\n\
         \x20 presets\n\
         \x20 dump <preset>\n\
         \x20 validate <config.json|preset>\n\
         \x20 rate <config.json|preset>\n\
         \x20 run <config.json|preset> <EP|BT|LU|MG|IS|CG|FT|SP> <S|A> [--baseline]\n\
         \x20 run <config.json|preset> wavetoy <grid-edge> [--baseline]\n\
         \x20 run options: --trace-out <path> [--trace-cap <n>]"
    );
    std::process::exit(2);
}

/// Observability options of `mgrid run`.
struct ObsOpts {
    trace_out: Option<String>,
    trace_cap: usize,
}

/// Strip `--trace-out`/`--trace-cap` from `args`, returning the rest.
fn parse_obs_opts(args: &[String]) -> (Vec<String>, ObsOpts) {
    let mut rest = Vec::new();
    let mut opts = ObsOpts {
        trace_out: None,
        trace_cap: 65536,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trace-out" => {
                let Some(path) = args.get(i + 1) else { usage() };
                opts.trace_out = Some(path.clone());
                i += 2;
            }
            "--trace-cap" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    usage()
                };
                opts.trace_cap = n;
                i += 2;
            }
            _ => {
                rest.push(args[i].clone());
                i += 1;
            }
        }
    }
    (rest, opts)
}

/// After a run: dump the trace (if requested) and print the metrics
/// summary, including the `trace.dropped` counter.
fn finish_run(sim: &Simulation, opts: &ObsOpts) {
    let obs = sim.obs();
    let dropped = obs.tracer().dropped();
    if dropped > 0 || opts.trace_out.is_some() {
        obs.metrics().count("trace.dropped", dropped);
    }
    if let Some(path) = &opts.trace_out {
        let mut out = String::new();
        for ev in obs.tracer().events() {
            out.push_str(&ev.to_json_line());
            out.push('\n');
        }
        if let Err(e) = std::fs::write(path, out) {
            eprintln!("cannot write trace to {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "trace: {} events written to {path} ({dropped} dropped)",
            obs.tracer().len()
        );
    }
    let snapshot = obs.metrics().snapshot();
    if !snapshot.is_empty() {
        println!("-- metrics --");
        print!("{}", snapshot.to_table());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("presets") => {
            for p in PRESETS {
                println!("{p}");
            }
        }
        Some("dump") => {
            let name = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let Some(c) = preset_by_name(name) else {
                eprintln!("unknown preset {name:?} (try `mgrid presets`)");
                std::process::exit(2);
            };
            println!("{}", c.to_json());
        }
        Some("validate") => {
            let config = load_config(args.get(1).map(String::as_str).unwrap_or_else(|| usage()));
            match config.validate() {
                Ok(()) => println!(
                    "ok: {} ({} virtual hosts)",
                    config.name,
                    config.virtual_hosts.len()
                ),
                Err(e) => {
                    eprintln!("invalid: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("rate") => {
            let config = load_config(args.get(1).map(String::as_str).unwrap_or_else(|| usage()));
            match plan_rate(&config) {
                Ok(plan) => {
                    println!("feasible rate bound: {:.4}", plan.feasible);
                    println!("chosen rate:         {:.4}", plan.chosen);
                    for (host, bound) in &plan.cpu_bounds {
                        println!("  {host}: <= {bound:.4}");
                    }
                }
                Err(e) => {
                    eprintln!("infeasible: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("run") => run_cmd(&args[1..]),
        _ => usage(),
    }
}

fn run_cmd(args: &[String]) {
    let (args, obs_opts) = parse_obs_opts(args);
    if args.len() < 2 {
        usage();
    }
    let config = load_config(&args[0]);
    let baseline = args.iter().any(|a| a == "--baseline");
    let app = args[1].to_ascii_uppercase();
    let mode = if baseline {
        "physical baseline"
    } else {
        "MicroGrid"
    };
    println!("running {app} on '{}' ({mode})", config.name);

    if app == "WAVETOY" {
        let edge: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(50);
        let wt = WaveToyConfig {
            grid_edge: edge,
            steps: 100,
        };
        let mut sim = Simulation::new(config.seed);
        if obs_opts.trace_out.is_some() {
            sim.obs().enable_tracing(obs_opts.trace_cap);
        }
        let results = sim.block_on(async move {
            let grid = build(config, baseline);
            grid.mpirun_all(MpiParams::default(), move |comm| {
                Box::pin(wavetoy::run(comm, wt, None))
                    as Pin<Box<dyn Future<Output = WaveToyResult>>>
            })
            .await
        });
        let r = &results[0];
        println!(
            "wavetoy {}^3: {:.3} virtual s, energy drift {:.4}, verified {}",
            r.grid_edge, r.virtual_seconds, r.energy_drift, r.verified
        );
        finish_run(&sim, &obs_opts);
        return;
    }

    let bench = match app.as_str() {
        "EP" => NpbBenchmark::EP,
        "BT" => NpbBenchmark::BT,
        "LU" => NpbBenchmark::LU,
        "MG" => NpbBenchmark::MG,
        "IS" => NpbBenchmark::IS,
        "CG" => NpbBenchmark::CG,
        "FT" => NpbBenchmark::FT,
        "SP" => NpbBenchmark::SP,
        other => {
            eprintln!("unknown application {other:?}");
            std::process::exit(2);
        }
    };
    let class = match args.get(2).map(String::as_str) {
        Some("A") | Some("a") => NpbClass::A,
        _ => NpbClass::S,
    };
    let mut sim = Simulation::new(config.seed);
    if obs_opts.trace_out.is_some() {
        sim.obs().enable_tracing(obs_opts.trace_cap);
    }
    let results = sim.block_on(async move {
        let grid = build(config, baseline);
        grid.mpirun_all(MpiParams::default(), move |comm| {
            Box::pin(npb::run(bench, comm, class, None)) as Pin<Box<dyn Future<Output = NpbResult>>>
        })
        .await
    });
    let r = &results[0];
    println!(
        "{} class {}: {:.3} virtual s on {} ranks, verified {}",
        r.benchmark,
        r.class.name(),
        r.virtual_seconds,
        r.ranks,
        r.verified
    );
    finish_run(&sim, &obs_opts);
}

fn build(config: GridConfig, baseline: bool) -> VirtualGrid {
    let result = if baseline {
        VirtualGrid::build_baseline(config)
    } else {
        VirtualGrid::build(config)
    };
    result.unwrap_or_else(|e| {
        eprintln!("cannot build grid: {e}");
        std::process::exit(1);
    })
}
