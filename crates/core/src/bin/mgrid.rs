//! `mgrid` — run Grid workloads on virtual Grids from the command line.
//!
//! ```text
//! mgrid presets                          # list built-in configurations
//! mgrid dump alpha_cluster > grid.json   # write a preset's JSON
//! mgrid validate grid.json               # check a configuration
//! mgrid rate grid.json                   # show the coordinator's plan
//! mgrid run grid.json MG S               # NPB MG class S on the MicroGrid
//! mgrid run grid.json MG S --baseline    # ... on the physical baseline
//! mgrid run grid.json wavetoy 50         # CACTUS WaveToy, 50^3 grid
//! mgrid run grid.json MG S --trace-out trace.jsonl    # + JSON-lines trace
//! mgrid run grid.json MG S --profile-out trace.json   # + Perfetto export
//! ```
//!
//! Every `run` prints a per-category metrics summary (scheduler quanta,
//! network traffic, vsocket and MPI activity) after the result line.
//! `--trace-out <path>` additionally enables the typed-event tracer and
//! streams one JSON object per line to the file as events are recorded;
//! `--trace-cap <n>` bounds the in-memory ring (default 65536, oldest
//! evicted first — evictions show up as the `trace.dropped` counter in
//! the summary, but every event still reaches the stream).
//!
//! `--profile-out <path>` enables causal span recording and, after the
//! run, prints the virtual-time profiler attribution table and the
//! critical-path report, then writes a Chrome trace-event JSON file
//! loadable at <https://ui.perfetto.dev> (see `docs/OBSERVABILITY.md`).
//!
//! `MGRID_SHARDS=<n>` routes the run through the deterministic sharded
//! engine (the workload shard plus idle companions); all tables and the
//! trace stream are byte-identical to the sequential run, and the
//! Perfetto export additionally gains per-shard epoch lanes.

use std::future::Future;
use std::pin::Pin;

use microgrid::apps::npb::{self, NpbBenchmark, NpbClass, NpbResult};
use microgrid::apps::wavetoy::{self, WaveToyConfig, WaveToyResult};
use microgrid::desim::metrics::MetricsSnapshot;
use microgrid::desim::obs::Obs;
use microgrid::desim::shard::{run_sharded_stats, EpochStats, ShardHandle, ShardPlan, ShardRun};
use microgrid::desim::time::SimDuration;
use microgrid::desim::trace::TraceEvent;
use microgrid::desim::{perfetto, profile, Simulation, SpanSnapshot};
use microgrid::mpi::MpiParams;
use microgrid::{plan_rate, presets, GridConfig, VirtualGrid};

fn preset_by_name(name: &str) -> Option<GridConfig> {
    match name {
        "alpha_cluster" => Some(presets::alpha_cluster()),
        "alpha_cluster_shared" => Some(presets::alpha_cluster_shared()),
        "hpvm_cluster" => Some(presets::hpvm_cluster()),
        "vbns_oc12" => Some(presets::vbns_grid(622e6)),
        "vbns_oc3" => Some(presets::vbns_grid(155e6)),
        "vbns_10mbps" => Some(presets::vbns_grid(10e6)),
        "fig17_cluster" => Some(presets::fig17_cluster()),
        _ => None,
    }
}

const PRESETS: &[&str] = &[
    "alpha_cluster",
    "alpha_cluster_shared",
    "hpvm_cluster",
    "vbns_oc12",
    "vbns_oc3",
    "vbns_10mbps",
    "fig17_cluster",
];

fn load_config(path_or_preset: &str) -> GridConfig {
    if let Some(c) = preset_by_name(path_or_preset) {
        return c;
    }
    let text = std::fs::read_to_string(path_or_preset).unwrap_or_else(|e| {
        eprintln!("cannot read {path_or_preset}: {e}");
        std::process::exit(2);
    });
    GridConfig::from_json(&text).unwrap_or_else(|e| {
        eprintln!("invalid configuration {path_or_preset}: {e}");
        std::process::exit(2);
    })
}

fn usage() -> ! {
    eprintln!(
        "usage: mgrid <command>\n\
         \x20 presets\n\
         \x20 dump <preset>\n\
         \x20 validate <config.json|preset>\n\
         \x20 rate <config.json|preset>\n\
         \x20 run <config.json|preset> <EP|BT|LU|MG|IS|CG|FT|SP> <S|A> [--baseline]\n\
         \x20 run <config.json|preset> wavetoy <grid-edge> [--baseline]\n\
         \x20 run options: --trace-out <path> [--trace-cap <n>] --profile-out <path>"
    );
    std::process::exit(2);
}

/// Observability options of `mgrid run`.
#[derive(Clone)]
struct ObsOpts {
    trace_out: Option<String>,
    trace_cap: usize,
    profile_out: Option<String>,
}

/// Strip `--trace-out`/`--trace-cap`/`--profile-out` from `args`,
/// returning the rest.
fn parse_obs_opts(args: &[String]) -> (Vec<String>, ObsOpts) {
    let mut rest = Vec::new();
    let mut opts = ObsOpts {
        trace_out: None,
        trace_cap: 65536,
        profile_out: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trace-out" => {
                let Some(path) = args.get(i + 1) else { usage() };
                opts.trace_out = Some(path.clone());
                i += 2;
            }
            "--trace-cap" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    usage()
                };
                opts.trace_cap = n;
                i += 2;
            }
            "--profile-out" => {
                let Some(path) = args.get(i + 1) else { usage() };
                opts.profile_out = Some(path.clone());
                i += 2;
            }
            _ => {
                rest.push(args[i].clone());
                i += 1;
            }
        }
    }
    (rest, opts)
}

/// Everything the observability layer recorded, snapshotted at the
/// instant the root workload completed (and the [`Obs`] was sealed), so
/// the report is byte-identical whether or not the sharded engine
/// overran the root by part of an epoch window.
struct ObsCapture {
    metrics: MetricsSnapshot,
    spans: SpanSnapshot,
    events: Vec<TraceEvent>,
    streamed: u64,
    dropped: u64,
    sink_error: Option<String>,
}

/// Seal the observability layer and snapshot it. Called as the root
/// workload's final act, while still inside the simulation: sealing
/// first stops the tracer (flushing the stream sink) and the span store,
/// so nothing recorded after this instant — by daemons the sharded
/// engine may still run until its epoch horizon — can reach the capture.
fn capture_obs(obs: &Obs, opts: &ObsOpts) -> ObsCapture {
    obs.seal();
    let tracer = obs.tracer();
    let dropped = tracer.dropped();
    if dropped > 0 || opts.trace_out.is_some() {
        obs.metrics().count("trace.dropped", dropped);
    }
    for (kind, n) in tracer.kind_counts() {
        obs.metrics().count(&format!("trace.events.{kind}"), n);
    }
    let spans = obs.spans().snapshot();
    if opts.profile_out.is_some() {
        obs.metrics().count("trace.spans", spans.spans.len() as u64);
        if spans.dropped > 0 {
            obs.metrics().count("trace.spans_dropped", spans.dropped);
        }
    }
    ObsCapture {
        metrics: obs.metrics().snapshot(),
        events: tracer.events(),
        streamed: tracer.streamed(),
        dropped,
        sink_error: tracer.sink_error(),
        spans,
    }
}

/// Shard count for `mgrid run`: `MGRID_SHARDS` (default 1, clamped to
/// at least 1). Values above 1 add idle companion shards alongside the
/// workload shard, exercising the sharded engine's epoch machinery.
fn shard_count() -> usize {
    std::env::var("MGRID_SHARDS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(1)
        .max(1)
}

type Factory<R> =
    Box<dyn FnOnce(ShardHandle<()>) -> ShardRun<(), Option<(Vec<R>, ObsCapture)>> + Send>;

/// Boxed entry point handed to [`execute`]: builds the root future once
/// the simulation context is live.
type Work<R> = Box<dyn FnOnce() -> Pin<Box<dyn Future<Output = Vec<R>>>> + Send>;

/// Run `work` to completion under the observability options, either
/// inline (`MGRID_SHARDS` unset or 1 — byte-identical to
/// [`Simulation::block_on`]) or on the sharded engine with idle
/// companion shards. Returns the workload results, the sealed
/// observability capture, and the engine's epoch stats (empty records
/// for the inline path).
fn execute<R: Send + 'static>(
    seed: u64,
    opts: &ObsOpts,
    work: Work<R>,
) -> (Vec<R>, ObsCapture, EpochStats) {
    let sink_file = opts.trace_out.as_ref().map(|path| {
        std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create trace file {path}: {e}");
            std::process::exit(2);
        })
    });
    let shards = shard_count();
    let opts2 = opts.clone();
    let workload: Factory<R> = Box::new(move |_h| {
        let sim = Simulation::new(seed);
        let obs = sim.obs().clone();
        if opts2.trace_out.is_some() {
            obs.enable_tracing(opts2.trace_cap);
            if let Some(f) = sink_file {
                obs.tracer().set_sink(Box::new(std::io::BufWriter::new(f)));
            }
        }
        if opts2.profile_out.is_some() {
            obs.enable_spans();
        }
        let out = std::rc::Rc::new(std::cell::RefCell::new(None));
        let out2 = out.clone();
        let root = sim.spawn(async move {
            let results = work().await;
            let capture = capture_obs(&obs, &opts2);
            *out2.borrow_mut() = Some((results, capture));
        });
        ShardRun {
            sim,
            deliver: Box::new(|_, _| {}),
            root_done: Box::new(move || root.is_finished()),
            advise: None,
            finish: Box::new(move |_sim| out.borrow_mut().take()),
        }
    });
    let mut factories = vec![workload];
    for _ in 1..shards {
        factories.push(Box::new(move |_h: ShardHandle<()>| ShardRun {
            sim: Simulation::new(0),
            deliver: Box::new(|_, _| {}),
            root_done: Box::new(|| true),
            advise: None,
            finish: Box::new(|_sim| None),
        }) as Factory<R>);
    }
    let plan = ShardPlan::connected(shards, SimDuration::from_secs(1)).with_epoch_log();
    let (mut outs, stats) = run_sharded_stats(plan, factories);
    let (results, capture) = outs
        .swap_remove(0)
        .expect("workload shard finished without producing a result");
    (results, capture, stats)
}

/// After a run: report the trace stream, print the profiler attribution
/// and critical-path tables plus write the Perfetto export (when
/// profiling), and print the metrics summary.
fn report_run(capture: &ObsCapture, stats: &EpochStats, opts: &ObsOpts) {
    if let Some(path) = &opts.trace_out {
        if let Some(e) = &capture.sink_error {
            eprintln!("trace stream to {path} failed: {e}");
            std::process::exit(1);
        }
        println!(
            "trace: {} events streamed to {path} ({} dropped from ring)",
            capture.streamed, capture.dropped
        );
    }
    if let Some(path) = &opts.profile_out {
        let prof = profile::Profile::from_snapshot(&capture.spans);
        println!("-- profile --");
        print!("{}", prof.to_table());
        let cp = profile::critical_path(&capture.spans);
        println!("-- critical path --");
        print!("{}", cp.to_table());
        let json = perfetto::export(&capture.spans, &capture.events, &stats.records);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("cannot write profile to {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "profile: {} spans, {} flows written to {path}",
            capture.spans.spans.len(),
            capture.spans.flows.len()
        );
    }
    if !capture.metrics.is_empty() {
        println!("-- metrics --");
        print!("{}", capture.metrics.to_table());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("presets") => {
            for p in PRESETS {
                println!("{p}");
            }
        }
        Some("dump") => {
            let name = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let Some(c) = preset_by_name(name) else {
                eprintln!("unknown preset {name:?} (try `mgrid presets`)");
                std::process::exit(2);
            };
            println!("{}", c.to_json());
        }
        Some("validate") => {
            let config = load_config(args.get(1).map(String::as_str).unwrap_or_else(|| usage()));
            match config.validate() {
                Ok(()) => println!(
                    "ok: {} ({} virtual hosts)",
                    config.name,
                    config.virtual_hosts.len()
                ),
                Err(e) => {
                    eprintln!("invalid: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("rate") => {
            let config = load_config(args.get(1).map(String::as_str).unwrap_or_else(|| usage()));
            match plan_rate(&config) {
                Ok(plan) => {
                    println!("feasible rate bound: {:.4}", plan.feasible);
                    println!("chosen rate:         {:.4}", plan.chosen);
                    for (host, bound) in &plan.cpu_bounds {
                        println!("  {host}: <= {bound:.4}");
                    }
                }
                Err(e) => {
                    eprintln!("infeasible: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("run") => run_cmd(&args[1..]),
        _ => usage(),
    }
}

fn run_cmd(args: &[String]) {
    let (args, obs_opts) = parse_obs_opts(args);
    if args.len() < 2 {
        usage();
    }
    let config = load_config(&args[0]);
    let seed = config.seed;
    let baseline = args.iter().any(|a| a == "--baseline");
    let app = args[1].to_ascii_uppercase();
    let mode = if baseline {
        "physical baseline"
    } else {
        "MicroGrid"
    };
    println!("running {app} on '{}' ({mode})", config.name);

    if app == "WAVETOY" {
        let edge: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(50);
        let wt = WaveToyConfig {
            grid_edge: edge,
            steps: 100,
        };
        let (results, capture, stats) = execute(
            seed,
            &obs_opts,
            Box::new(move || {
                Box::pin(async move {
                    let grid = build(config, baseline);
                    grid.mpirun_all(MpiParams::default(), move |comm| {
                        Box::pin(wavetoy::run(comm, wt, None))
                            as Pin<Box<dyn Future<Output = WaveToyResult>>>
                    })
                    .await
                })
            }),
        );
        let r = &results[0];
        println!(
            "wavetoy {}^3: {:.3} virtual s, energy drift {:.4}, verified {}",
            r.grid_edge, r.virtual_seconds, r.energy_drift, r.verified
        );
        report_run(&capture, &stats, &obs_opts);
        return;
    }

    let bench = match app.as_str() {
        "EP" => NpbBenchmark::EP,
        "BT" => NpbBenchmark::BT,
        "LU" => NpbBenchmark::LU,
        "MG" => NpbBenchmark::MG,
        "IS" => NpbBenchmark::IS,
        "CG" => NpbBenchmark::CG,
        "FT" => NpbBenchmark::FT,
        "SP" => NpbBenchmark::SP,
        other => {
            eprintln!("unknown application {other:?}");
            std::process::exit(2);
        }
    };
    let class = match args.get(2).map(String::as_str) {
        Some("A") | Some("a") => NpbClass::A,
        _ => NpbClass::S,
    };
    let (results, capture, stats) = execute(
        seed,
        &obs_opts,
        Box::new(move || {
            Box::pin(async move {
                let grid = build(config, baseline);
                grid.mpirun_all(MpiParams::default(), move |comm| {
                    Box::pin(npb::run(bench, comm, class, None))
                        as Pin<Box<dyn Future<Output = NpbResult>>>
                })
                .await
            })
        }),
    );
    let r = &results[0];
    println!(
        "{} class {}: {:.3} virtual s on {} ranks, verified {}",
        r.benchmark,
        r.class.name(),
        r.virtual_seconds,
        r.ranks,
        r.verified
    );
    report_run(&capture, &stats, &obs_opts);
}

fn build(config: GridConfig, baseline: bool) -> VirtualGrid {
    let result = if baseline {
        VirtualGrid::build_baseline(config)
    } else {
        VirtualGrid::build(config)
    };
    result.unwrap_or_else(|e| {
        eprintln!("cannot build grid: {e}");
        std::process::exit(1);
    })
}
