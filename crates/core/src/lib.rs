//! # microgrid — run Grid applications on arbitrary virtual Grid resources
//!
//! A Rust reproduction of *"The MicroGrid: a Scientific Tool for Modeling
//! Computational Grids"* (Song, Liu, Jakobsen, Bhagwan, Zhang, Taura,
//! Chien — SC2000): an emulation framework in which unmodified Grid
//! applications run on **virtual hosts** with configurable CPU speed and
//! memory, joined by a **simulated network**, while a global coordinator
//! keeps every resource at a coherent simulation rate and applications
//! observe **virtual time**.
//!
//! ```
//! use microgrid::{presets, VirtualGrid};
//! use mgrid_desim::Simulation;
//!
//! let mut sim = Simulation::new(1);
//! let rate = sim.block_on(async {
//!     let grid = VirtualGrid::build(presets::alpha_cluster()).unwrap();
//!     grid.rate()
//! });
//! assert!((rate - 0.9).abs() < 1e-9);
//! ```
//!
//! The crate wires together the substrate crates:
//! [`mgrid_desim`] (deterministic engine), [`mgrid_hostsim`] (CPU/OS/
//! memory models), [`mgrid_netsim`] (NSE-like network), [`mgrid_gis`]
//! (information service), [`mgrid_middleware`] (virtualization +
//! gatekeeper), [`mgrid_mpi`] and [`mgrid_apps`] (workloads).

#![warn(missing_docs)]

pub mod config;
pub mod coordinator;
pub mod grid;
pub mod partition;
pub mod presets;
pub mod report;

pub use config::{
    ConfigError, GridConfig, LinkConfig, NetworkConfig, RatePolicy, VirtualHostConfig,
};
pub use coordinator::{plan_rate, RatePlan};
pub use grid::VirtualGrid;
pub use report::{ComparisonRow, Report, Series};

// Re-export the substrate crates so downstream users need one dependency.
pub use mgrid_apps as apps;
pub use mgrid_desim as desim;
pub use mgrid_faults as faults;
pub use mgrid_gis as gis;
pub use mgrid_hostsim as hostsim;
pub use mgrid_middleware as middleware;
pub use mgrid_mpi as mpi;
pub use mgrid_netsim as netsim;

#[cfg(test)]
mod tests {
    use super::*;
    use mgrid_apps::npb::{self, NpbBenchmark, NpbClass, NpbResult};
    use mgrid_desim::Simulation;
    use mgrid_mpi::MpiParams;

    #[test]
    fn grid_builds_and_publishes_gis_records() {
        let mut sim = Simulation::new(3);
        sim.block_on(async {
            let grid = VirtualGrid::build(presets::alpha_cluster()).unwrap();
            assert_eq!(grid.host_names().len(), 4);
            let gis = grid.gis();
            let gis = gis.borrow();
            let hosts = gis.search_all(&gis::virtualization::virtual_hosts_filter("Alpha_Cluster"));
            assert_eq!(hosts.len(), 4);
            let rec = hosts[0];
            assert_eq!(rec.get("Is_Virtual_Resource"), Some("Yes"));
            assert!(rec.get("Mapped_Physical_Resource").is_some());
            assert_eq!(rec.get_f64("CpuSpeed"), Some(presets::ALPHA_MOPS));
        });
    }

    #[test]
    fn baseline_is_unpaced() {
        let mut sim = Simulation::new(4);
        sim.block_on(async {
            let grid = VirtualGrid::build_baseline(presets::alpha_cluster()).unwrap();
            assert!(grid.is_baseline());
            assert_eq!(grid.rate(), 1.0);
            let ctx = grid.spawn_process("alpha0", "probe").unwrap();
            let t0 = mgrid_desim::now();
            ctx.compute_mops(presets::ALPHA_MOPS).await; // 1 CPU-second
            let wall = (mgrid_desim::now() - t0).as_secs_f64();
            // Exact up to the 5us context-switch cost of the OS model.
            assert!((wall - 1.0).abs() < 1e-4, "wall {wall}");
        });
    }

    #[test]
    fn microgrid_paces_to_rate() {
        let mut sim = Simulation::new(5);
        sim.block_on(async {
            let grid = VirtualGrid::build(presets::fig17_cluster()).unwrap();
            assert_eq!(grid.rate(), 0.04);
            let ctx = grid.spawn_process("alpha0", "probe").unwrap();
            let t0 = mgrid_desim::now();
            // 1 virtual CPU-second at rate 0.04 => ~25 physical seconds.
            ctx.compute_mops(presets::ALPHA_MOPS).await;
            let wall = (mgrid_desim::now() - t0).as_secs_f64();
            assert!((wall - 25.0).abs() < 1.5, "wall {wall}");
            // And the virtual clock reports ~1 second.
            let virt = ctx.gettimeofday().as_secs_f64();
            assert!((virt - 1.0).abs() < 0.1, "virtual {virt}");
        });
    }

    /// Dynamic virtual time: a mid-run rate change keeps virtual time
    /// continuous and retunes the pacing.
    #[test]
    fn dynamic_rate_change() {
        let mut sim = Simulation::new(8);
        sim.block_on(async {
            let mut config = presets::alpha_cluster();
            config.rate = RatePolicy::Fixed(0.5);
            let grid = VirtualGrid::build(config).unwrap();
            let ctx = grid.spawn_process("alpha0", "probe").unwrap();
            // 0.5 virtual CPU-seconds at rate 0.5: ~1 s wall.
            let t0 = mgrid_desim::now();
            ctx.compute_mops(presets::ALPHA_MOPS / 2.0).await;
            let wall_first = (mgrid_desim::now() - t0).as_secs_f64();
            assert!((wall_first - 1.0).abs() < 0.15, "first {wall_first}");
            let v_mid = ctx.gettimeofday();
            // Slow the whole grid down to rate 0.1 (dynamic virtual time).
            grid.set_rate(0.1);
            let t1 = mgrid_desim::now();
            ctx.compute_mops(presets::ALPHA_MOPS / 10.0).await; // 0.1 virtual s
            let wall_second = (mgrid_desim::now() - t1).as_secs_f64();
            assert!((wall_second - 1.0).abs() < 0.2, "second {wall_second}");
            // Virtual time stayed continuous and advanced ~0.1 s.
            let v_end = ctx.gettimeofday();
            let dv = v_end.saturating_since(v_mid).as_secs_f64();
            assert!((dv - 0.1).abs() < 0.03, "virtual delta {dv}");
        });
    }

    /// The headline validation property (Fig 10/11): MicroGrid virtual
    /// time tracks the physical baseline within a few percent.
    #[test]
    fn microgrid_matches_baseline_on_mg_class_s() {
        fn run(baseline: bool) -> NpbResult {
            let mut sim = Simulation::new(6);
            let results = sim.block_on(async move {
                let config = presets::alpha_cluster();
                let grid = if baseline {
                    VirtualGrid::build_baseline(config).unwrap()
                } else {
                    VirtualGrid::build(config).unwrap()
                };
                grid.mpirun_all(MpiParams::default(), |comm| {
                    Box::pin(npb::run(NpbBenchmark::MG, comm, NpbClass::S, None))
                        as std::pin::Pin<Box<dyn std::future::Future<Output = NpbResult>>>
                })
                .await
            });
            results.into_iter().next().unwrap()
        }
        let phys = run(true);
        let mgrid = run(false);
        assert!(phys.verified && mgrid.verified);
        let err = (mgrid.virtual_seconds - phys.virtual_seconds).abs() / phys.virtual_seconds;
        assert!(
            err < 0.10,
            "MG-S mismatch {:.1}%: phys {:.3}s vs mgrid {:.3}s",
            err * 100.0,
            phys.virtual_seconds,
            mgrid.virtual_seconds
        );
    }
}
