//! Experiment reporting: paper-style comparison rows and JSON dumps.

use mgrid_desim::MetricsSnapshot;
use serde::{Deserialize, Serialize};

/// One physical-vs-MicroGrid comparison row (the unit of Figs 10, 11, 16).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Workload label, e.g. `"MG (class A)"`.
    pub label: String,
    /// Baseline ("physical grid") virtual seconds.
    pub physical_seconds: f64,
    /// MicroGrid virtual seconds.
    pub microgrid_seconds: f64,
}

impl ComparisonRow {
    /// Relative error of the MicroGrid run against the baseline, percent.
    pub fn error_percent(&self) -> f64 {
        if self.physical_seconds == 0.0 {
            return 0.0;
        }
        (self.microgrid_seconds - self.physical_seconds) / self.physical_seconds * 100.0
    }
}

/// A labeled series (the unit of Figs 12, 14, 15).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Series {
    /// Series label, e.g. `"MG"`.
    pub label: String,
    /// `(x label, value)` points.
    pub points: Vec<(String, f64)>,
}

/// A full experiment report.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Report {
    /// Experiment id, e.g. `"fig10"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Comparison rows, if applicable.
    pub rows: Vec<ComparisonRow>,
    /// Series, if applicable.
    pub series: Vec<Series>,
    /// Free-form notes (calibration caveats, measured skews, ...).
    pub notes: Vec<String>,
    /// Metrics snapshot of the run(s) behind this report, if captured.
    pub metrics: Option<MetricsSnapshot>,
}

impl Report {
    /// Start a report.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            ..Report::default()
        }
    }

    /// Render as an aligned text table (what `repro` prints).
    pub fn to_table(&self) -> String {
        let mut out = format!("== {} — {} ==\n", self.id, self.title);
        if !self.rows.is_empty() {
            out.push_str(&format!(
                "{:<28} {:>12} {:>12} {:>8}\n",
                "workload", "physical(s)", "microgrid(s)", "err%"
            ));
            for r in &self.rows {
                out.push_str(&format!(
                    "{:<28} {:>12.3} {:>12.3} {:>+8.2}\n",
                    r.label,
                    r.physical_seconds,
                    r.microgrid_seconds,
                    r.error_percent()
                ));
            }
        }
        for s in &self.series {
            out.push_str(&format!("-- {} --\n", s.label));
            for (x, v) in &s.points {
                out.push_str(&format!("{x:<28} {v:>12.4}\n"));
            }
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        if let Some(m) = &self.metrics {
            if !m.is_empty() {
                out.push_str("-- metrics --\n");
                out.push_str(&m.to_table());
            }
        }
        out
    }

    /// Attach a metrics snapshot (merging if one is already present).
    pub fn attach_metrics(&mut self, snapshot: MetricsSnapshot) {
        match &mut self.metrics {
            Some(existing) => existing.merge(&snapshot),
            None => self.metrics = Some(snapshot),
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_percent_signed() {
        let r = ComparisonRow {
            label: "x".into(),
            physical_seconds: 100.0,
            microgrid_seconds: 104.0,
        };
        assert!((r.error_percent() - 4.0).abs() < 1e-12);
        let r2 = ComparisonRow {
            label: "y".into(),
            physical_seconds: 100.0,
            microgrid_seconds: 97.0,
        };
        assert!((r2.error_percent() + 3.0).abs() < 1e-12);
    }

    #[test]
    fn table_contains_rows_and_series() {
        let mut rep = Report::new("fig10", "NPB class A");
        rep.rows.push(ComparisonRow {
            label: "EP".into(),
            physical_seconds: 105.0,
            microgrid_seconds: 108.0,
        });
        rep.series.push(Series {
            label: "MG".into(),
            points: vec![("1x".into(), 1.0), ("2x".into(), 0.55)],
        });
        let t = rep.to_table();
        assert!(t.contains("EP"));
        assert!(t.contains("fig10"));
        assert!(t.contains("MG"));
        assert!(t.contains("2x"));
    }

    #[test]
    fn metrics_render_and_roundtrip() {
        let m = mgrid_desim::Metrics::new();
        m.count("net.drops", 3);
        let mut rep = Report::new("fig12", "tcp");
        rep.attach_metrics(m.snapshot());
        let t = rep.to_table();
        assert!(t.contains("-- metrics --"), "{t}");
        assert!(t.contains("net.drops"), "{t}");
        let back: Report = serde_json::from_str(&rep.to_json()).unwrap();
        assert_eq!(back.metrics.unwrap().counter("net.drops"), 3);
        // Attaching again merges rather than replacing.
        m.count("net.drops", 2);
        rep.attach_metrics(m.snapshot());
        assert_eq!(rep.metrics.unwrap().counter("net.drops"), 8);
    }

    #[test]
    fn json_roundtrip() {
        let mut rep = Report::new("fig5", "memory");
        rep.notes.push("test".into());
        let back: Report = serde_json::from_str(&rep.to_json()).unwrap();
        assert_eq!(back.id, "fig5");
        assert_eq!(back.notes, vec!["test"]);
    }
}
