//! Assembling a running virtual Grid from a [`GridConfig`].
//!
//! [`VirtualGrid::build`] is the MicroGrid proper: it plans the simulation
//! rate, brings up the simulated network under a rate-scaled virtual
//! clock, creates the physical-host models with their scheduler daemons,
//! maps each virtual host at its CPU fraction, fills the mapping table,
//! and publishes Fig 3-style records into the GIS.
//!
//! [`VirtualGrid::build_baseline`] wires the *same configuration* as a
//! "physical grid": virtual specs become real machines, no pacing, an
//! identity clock — the baseline side of every validation figure.

use std::cell::RefCell;
use std::rc::Rc;

use mgrid_desim::vclock::VirtualClock;
use mgrid_desim::{FxHashMap, SimRng};
use mgrid_gis::{Directory, Dn};
use mgrid_hostsim::{OsParams, PhysicalHost, PhysicalHostSpec, SchedulerParams};
use mgrid_middleware::{HostTable, ProcessCtx};
use mgrid_mpi::{Comm, MpiParams};
use mgrid_netsim::{LinkSpec, NetParams, Network, NodeId, TopologyBuilder};

use mgrid_faults::{spawn_injector, FaultBus, FaultKind};

use crate::config::{ConfigError, GridConfig};
use crate::coordinator::{plan_rate, RatePlan};

/// A running virtual Grid.
pub struct VirtualGrid {
    config: GridConfig,
    table: HostTable,
    network: Network,
    clock: VirtualClock,
    gis: Rc<RefCell<Directory>>,
    physical: FxHashMap<String, PhysicalHost>,
    plan: Option<RatePlan>,
    baseline: bool,
}

impl VirtualGrid {
    /// Bring up the MicroGrid for `config` (must be called inside a
    /// running simulation).
    ///
    /// # Examples
    ///
    /// Assemble the paper's Alpha cluster and run a 4-rank SPMD body on
    /// it:
    ///
    /// ```
    /// use microgrid::desim::Simulation;
    /// use microgrid::mpi::MpiParams;
    /// use microgrid::{presets, VirtualGrid};
    ///
    /// let mut sim = Simulation::new(42);
    /// let ranks = sim.block_on(async {
    ///     let grid = VirtualGrid::build(presets::alpha_cluster()).unwrap();
    ///     let hosts = grid.host_names();
    ///     grid.mpirun(&hosts, MpiParams::default(), |comm| async move {
    ///         comm.barrier().await.unwrap();
    ///         comm.rank()
    ///     })
    ///     .await
    /// });
    /// assert_eq!(ranks, vec![0, 1, 2, 3]);
    /// ```
    pub fn build(config: GridConfig) -> Result<VirtualGrid, ConfigError> {
        let plan = plan_rate(&config)?;
        Self::assemble(config, Some(plan), false)
    }

    /// Bring up the "physical grid" baseline: each virtual host spec is
    /// instantiated as a real machine (no MicroGrid pacing, identity
    /// clock, same network topology).
    pub fn build_baseline(config: GridConfig) -> Result<VirtualGrid, ConfigError> {
        config.validate()?;
        Self::assemble(config, None, true)
    }

    fn assemble(
        config: GridConfig,
        plan: Option<RatePlan>,
        baseline: bool,
    ) -> Result<VirtualGrid, ConfigError> {
        let rate = plan.as_ref().map(|p| p.chosen).unwrap_or(1.0);
        let clock = VirtualClock::new(rate);
        let mut rng = SimRng::new(config.seed);

        // Virtual network: hosts in config order, then routers.
        let mut b = TopologyBuilder::new();
        let mut node_of: FxHashMap<String, NodeId> = FxHashMap::default();
        for v in &config.virtual_hosts {
            node_of.insert(v.spec.name.clone(), b.host(&v.spec.name));
        }
        for r in &config.network.routers {
            node_of.insert(r.clone(), b.router(r));
        }
        for l in &config.network.links {
            let spec = LinkSpec {
                bandwidth_bps: l.bandwidth_bps,
                delay: l.delay,
                queue_bytes: l.queue_bytes.unwrap_or(512 * 1024),
            };
            b.link(node_of[&l.a], node_of[&l.b], spec);
        }
        let network = Network::new(b.build(), clock.clone(), NetParams::default());

        let sched_params = SchedulerParams {
            quantum: config.quantum,
            ..SchedulerParams::default()
        };

        // Physical hosts (emulated mode) and the mapping table.
        let table = HostTable::new();
        let mut physical = FxHashMap::default();
        if baseline {
            // The virtual hosts ARE the machines.
            for v in &config.virtual_hosts {
                let spec = PhysicalHostSpec::new(
                    v.spec.name.to_string(),
                    v.spec.speed_mops,
                    v.spec.memory_bytes,
                );
                let ph =
                    PhysicalHost::new(spec, OsParams::default(), sched_params.clone(), rng.fork());
                physical.insert(v.spec.name.clone(), ph.clone());
                table.register(&v.spec.name, node_of[&v.spec.name], ph.as_direct_virtual());
            }
        } else {
            for p in &config.physical_hosts {
                let ph = PhysicalHost::new(
                    p.clone(),
                    OsParams::default(),
                    sched_params.clone(),
                    rng.fork(),
                );
                physical.insert(p.name.clone(), ph);
            }
            for v in &config.virtual_hosts {
                let ph = &physical[&v.mapped_to];
                let vh = ph.map_virtual(v.spec.clone(), rate);
                table.register(&v.spec.name, node_of[&v.spec.name], vh);
            }
        }

        // Fault injection: replay the scripted scenario against the live
        // models. Baselines skip this — the "physical grid" condition is
        // the healthy control every chaos figure compares against.
        if !baseline {
            if let Some(fault_plan) = &config.faults {
                if !fault_plan.is_empty() {
                    let bus = FaultBus::new();
                    network.attach_faults(&bus);
                    let ht = table.clone();
                    bus.subscribe(move |kind| match kind {
                        FaultKind::HostCrash { host } => {
                            if let Some(e) = ht.lookup(host) {
                                e.vhost.crash();
                            }
                        }
                        FaultKind::HostRestart { host } => {
                            if let Some(e) = ht.lookup(host) {
                                e.vhost.restart();
                            }
                        }
                        FaultKind::CpuDegrade { host, factor } => {
                            if let Some(e) = ht.lookup(host) {
                                e.vhost.set_degradation(*factor);
                            }
                        }
                        FaultKind::CpuRestore { host } => {
                            if let Some(e) = ht.lookup(host) {
                                e.vhost.set_degradation(1.0);
                            }
                        }
                        // Link-level faults are handled by the network's
                        // own subscription.
                        _ => {}
                    });
                    spawn_injector(fault_plan, bus);
                }
            }
        }

        // Publish GIS records (Fig 3).
        let mut gis = Directory::new();
        let base = Dn::parse("ou=Concurrent Systems Architecture Group, o=Grid")
            .expect("static DN parses");
        for v in &config.virtual_hosts {
            gis.upsert(mgrid_gis::virtualization::virtual_host_record(
                &base,
                &v.spec.name,
                &config.name,
                &v.mapped_to,
                v.spec.speed_mops,
                v.spec.memory_bytes,
            ));
        }
        for (i, l) in config.network.links.iter().enumerate() {
            let nn = format!("1.11.{}.0", i);
            let speed = format!(
                "{}Mbps {}ms",
                l.bandwidth_bps / 1e6,
                l.delay.as_secs_f64() * 1e3
            );
            let nw_type = if l.delay.as_millis() >= 5 {
                "WAN"
            } else {
                "LAN"
            };
            gis.upsert(mgrid_gis::virtualization::virtual_network_record(
                &base,
                &nn,
                &config.name,
                nw_type,
                &speed,
            ));
        }

        Ok(VirtualGrid {
            config,
            table,
            network,
            clock,
            gis: Rc::new(RefCell::new(gis)),
            physical,
            plan,
            baseline,
        })
    }

    /// The configuration this grid was built from.
    pub fn config(&self) -> &GridConfig {
        &self.config
    }

    /// The chosen simulation rate (1.0 for baselines).
    pub fn rate(&self) -> f64 {
        self.clock.rate()
    }

    /// The coordinator's rate plan (absent for baselines).
    pub fn rate_plan(&self) -> Option<&RatePlan> {
        self.plan.as_ref()
    }

    /// True if this grid is a direct "physical grid" baseline.
    pub fn is_baseline(&self) -> bool {
        self.baseline
    }

    /// The virtualization mapping table.
    pub fn table(&self) -> &HostTable {
        &self.table
    }

    /// The simulated network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The global virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The GIS directory holding this grid's records.
    pub fn gis(&self) -> Rc<RefCell<Directory>> {
        self.gis.clone()
    }

    /// A physical host model by name (virtual-host name for baselines).
    pub fn physical_host(&self, name: &str) -> Option<&PhysicalHost> {
        self.physical.get(name)
    }

    /// Virtual host names, in configuration order.
    pub fn host_names(&self) -> Vec<String> {
        self.config.virtual_host_names()
    }

    /// Start a process on a virtual host.
    pub fn spawn_process(
        &self,
        host: &str,
        name: impl Into<String>,
    ) -> Result<ProcessCtx, mgrid_hostsim::OutOfMemory> {
        ProcessCtx::spawn(&self.table, &self.network, &self.clock, host, name)
    }

    /// Run an SPMD body with one rank per listed host (see
    /// [`mgrid_mpi::mpirun`]).
    pub async fn mpirun<T, F, Fut>(&self, hosts: &[String], params: MpiParams, body: F) -> Vec<T>
    where
        T: 'static,
        F: Fn(Comm) -> Fut,
        Fut: std::future::Future<Output = T> + 'static,
    {
        mgrid_mpi::mpirun(&self.table, &self.network, &self.clock, hosts, params, body).await
    }

    /// Fault-tolerant `mpirun`: every rank races a per-job `deadline`;
    /// ranks that miss it (e.g. their host crashed) are dropped and
    /// reported as `None` (see [`mgrid_mpi::mpirun_resilient`]).
    pub async fn mpirun_resilient<T, F, Fut>(
        &self,
        hosts: &[String],
        params: MpiParams,
        deadline: mgrid_desim::time::SimDuration,
        body: F,
    ) -> Vec<Option<T>>
    where
        T: 'static,
        F: Fn(Comm) -> Fut,
        Fut: std::future::Future<Output = T> + 'static,
    {
        mgrid_mpi::mpirun_resilient(
            &self.table,
            &self.network,
            &self.clock,
            hosts,
            params,
            deadline,
            body,
        )
        .await
    }

    /// Convenience: `mpirun` across every virtual host.
    pub async fn mpirun_all<T, F, Fut>(&self, params: MpiParams, body: F) -> Vec<T>
    where
        T: 'static,
        F: Fn(Comm) -> Fut,
        Fut: std::future::Future<Output = T> + 'static,
    {
        let hosts = self.host_names();
        self.mpirun(&hosts, params, body).await
    }

    /// Dynamic virtual time (paper §5, near-term future work): change the
    /// global simulation rate mid-run. The virtual clock stays continuous,
    /// every virtual host's CPU fraction is retuned, and the network's
    /// time conversions follow automatically.
    ///
    /// # Panics
    /// Panics on baseline grids or if `new_rate` is infeasible for any
    /// mapping.
    pub fn set_rate(&self, new_rate: f64) {
        assert!(!self.baseline, "baseline grids have no simulation rate");
        for entry in self.table.entries() {
            entry.vhost.set_rate(new_rate);
        }
        self.clock.set_rate(mgrid_desim::now(), new_rate);
    }
}
