//! The paper's experimental configurations (Fig 9, Fig 12-15).

use mgrid_desim::time::SimDuration;
use mgrid_hostsim::{PhysicalHostSpec, VirtualHostSpec};

use crate::config::{GridConfig, LinkConfig, NetworkConfig, RatePolicy, VirtualHostConfig};

/// Speed of the paper's emulation hosts (533 MHz DEC 21164 Alphas), in
/// abstract Mops.
pub const ALPHA_MOPS: f64 = 533.0;
/// Speed of the HPVM cluster's 300 MHz Pentium II nodes.
pub const PII_MOPS: f64 = 300.0;

fn star_network(
    hosts: &[&str],
    switch: &str,
    bandwidth_bps: f64,
    delay: SimDuration,
) -> NetworkConfig {
    NetworkConfig {
        routers: vec![switch.to_string()],
        links: hosts
            .iter()
            .map(|h| LinkConfig {
                a: h.to_string(),
                b: switch.to_string(),
                bandwidth_bps,
                delay,
                queue_bytes: None,
            })
            .collect(),
    }
}

fn cluster(
    name: &str,
    host_prefix: &str,
    n: usize,
    virtual_mops: f64,
    physical_mops: f64,
    bandwidth_bps: f64,
    delay: SimDuration,
) -> GridConfig {
    let host_names: Vec<String> = (0..n).map(|i| format!("{host_prefix}{i}")).collect();
    let refs: Vec<&str> = host_names.iter().map(String::as_str).collect();
    GridConfig {
        name: name.into(),
        physical_hosts: (0..n)
            .map(|i| PhysicalHostSpec::new(format!("csag-226-{}", 60 + i), physical_mops, 1 << 30))
            .collect(),
        virtual_hosts: host_names
            .iter()
            .enumerate()
            .map(|(i, h)| VirtualHostConfig {
                spec: VirtualHostSpec::new(h.clone(), virtual_mops, 1 << 30),
                mapped_to: format!("csag-226-{}", 60 + i),
            })
            .collect(),
        network: star_network(&refs, "switch", bandwidth_bps, delay),
        // The MicroGrid daemons, Globus services, and NSE share the
        // physical hosts with the applications, so the emulation cannot
        // use the whole CPU: run at 90% of real time.
        rate: RatePolicy::Fixed(0.9),
        quantum: SimDuration::from_millis(10),
        seed: 20000,
        faults: None,
        shards: None,
    }
}

/// Fig 9 row 1: the 4-node Alpha cluster — 533 MHz CPUs on switched
/// 100 Mb Ethernet.
pub fn alpha_cluster() -> GridConfig {
    cluster(
        "Alpha_Cluster",
        "alpha",
        4,
        ALPHA_MOPS,
        ALPHA_MOPS,
        100e6,
        SimDuration::from_micros(50),
    )
}

/// An `n`-node Alpha cluster (the paper's §5 scaling goal: "dozens of
/// machines"). Same per-node specs and switched Ethernet as
/// [`alpha_cluster`].
pub fn alpha_cluster_n(n: usize) -> GridConfig {
    let mut c = cluster(
        "Alpha_Cluster_N",
        "alpha",
        n,
        ALPHA_MOPS,
        ALPHA_MOPS,
        100e6,
        SimDuration::from_micros(50),
    );
    c.name = format!("Alpha_Cluster_{n}");
    c
}

/// Fig 9 row 2: the HPVM cluster — 300 MHz Pentium IIs on 1.2 Gb Myrinet,
/// emulated on the Alpha machines.
pub fn hpvm_cluster() -> GridConfig {
    cluster(
        "HPVM",
        "hpvm",
        4,
        PII_MOPS,
        ALPHA_MOPS,
        1.2e9,
        SimDuration::from_micros(10),
    )
}

/// Fig 12: virtual CPUs scaled by `mult` (1x/2x/4x/8x), network pinned to
/// 1 Mb/s with 50 ms latency.
///
/// The emulation hosts scale alongside the virtual ones so the rate stays
/// constant; scaling the rate down by `mult` instead produces identical
/// virtual results (Fig 15's invariance) at `mult`-times the wall-clock
/// cost.
pub fn cpu_scaled_cluster(mult: f64) -> GridConfig {
    let mut c = cluster(
        "CPU_Scaling",
        "node",
        4,
        ALPHA_MOPS * mult,
        ALPHA_MOPS * mult,
        1e6,
        SimDuration::from_millis(50),
    );
    c.name = format!("CPU_Scaling_{mult}x");
    c
}

/// Fig 15: the Alpha cluster emulated at different actual speeds. `k`
/// scales the emulation hosts; the rate is fixed at `0.45 * k`, so the
/// virtual Grid is identical while the wall-clock speed varies.
pub fn emulation_rate_cluster(k: f64) -> GridConfig {
    let mut c = cluster(
        "Emulation_Rate",
        "alpha",
        4,
        ALPHA_MOPS,
        ALPHA_MOPS * k,
        100e6,
        SimDuration::from_micros(50),
    );
    c.name = format!("Emulation_Rate_{k}x");
    c.rate = RatePolicy::Fixed(0.45 * k);
    c
}

/// A shared deployment: the four virtual Alpha hosts are mapped onto only
/// two physical machines (fraction 0.45 each). Co-located virtual hosts
/// can never run simultaneously — the scheduler rotates their quanta — so
/// every synchronization between them waits out up to a full rotation.
/// This is the deployment that exposes the quantum-granularity modeling
/// error of Fig 11.
pub fn alpha_cluster_shared() -> GridConfig {
    let mut c = alpha_cluster();
    c.name = "Alpha_Cluster_Shared".into();
    c.physical_hosts.truncate(2);
    for (i, v) in c.virtual_hosts.iter_mut().enumerate() {
        v.mapped_to = c.physical_hosts[i / 2].name.clone();
    }
    c.rate = RatePolicy::Fixed(0.45);
    c
}

/// Fig 13/14: the fictional vBNS coupled-cluster testbed — two processes
/// at UCSD and two at UIUC, LANs joined across the vBNS with a variable
/// bottleneck link (622 Mb/s OC12, 155 Mb/s OC3, or 10 Mb/s).
pub fn vbns_grid(bottleneck_bps: f64) -> GridConfig {
    let lan = 100e6;
    let oc3 = 155e6;
    let oc12 = 622e6;
    let hosts = ["ucsd0", "ucsd1", "uiuc0", "uiuc1"];
    let links = vec![
        // UCSD CSE department LAN.
        ("ucsd0", "ucsd-lan", lan, 0.05),
        ("ucsd1", "ucsd-lan", lan, 0.05),
        ("ucsd-lan", "ucsd-gw", oc3, 0.3),
        // vBNS: San Diego -> Los Angeles -> (long haul) -> Chicago.
        ("ucsd-gw", "vbns-la", oc12, 2.0),
        ("vbns-la", "vbns-chi", bottleneck_bps, 25.0),
        ("vbns-chi", "uiuc-gw", oc12, 2.0),
        // UIUC CS department LAN.
        ("uiuc-gw", "uiuc-lan", oc3, 0.3),
        ("uiuc-lan", "uiuc0", lan, 0.05),
        ("uiuc-lan", "uiuc1", lan, 0.05),
    ];
    GridConfig {
        name: format!("vBNS_{:.0}Mbps", bottleneck_bps / 1e6),
        physical_hosts: (0..4)
            .map(|i| PhysicalHostSpec::new(format!("phys{i}"), ALPHA_MOPS, 1 << 30))
            .collect(),
        virtual_hosts: hosts
            .iter()
            .enumerate()
            .map(|(i, h)| VirtualHostConfig {
                spec: VirtualHostSpec::new(*h, ALPHA_MOPS, 1 << 30),
                mapped_to: format!("phys{i}"),
            })
            .collect(),
        network: NetworkConfig {
            routers: vec![
                "ucsd-lan".into(),
                "ucsd-gw".into(),
                "vbns-la".into(),
                "vbns-chi".into(),
                "uiuc-gw".into(),
                "uiuc-lan".into(),
            ],
            links: links
                .into_iter()
                .map(|(a, b, bw, ms)| LinkConfig {
                    a: a.into(),
                    b: b.into(),
                    bandwidth_bps: bw,
                    delay: SimDuration::from_secs_f64(ms * 1e-3),
                    // WAN routers buffer more than LAN switches.
                    queue_bytes: Some(4 * 1024 * 1024),
                })
                .collect(),
        },
        rate: RatePolicy::Fixed(0.9),
        quantum: SimDuration::from_millis(10),
        seed: 20013,
        faults: None,
        shards: None,
    }
}

/// The Fig 17 internal-validation setting: the Alpha cluster run at a
/// fixed 4% CPU fraction (simulation rate 0.04).
pub fn fig17_cluster() -> GridConfig {
    let mut c = alpha_cluster();
    c.name = "Fig17_4pct".into();
    c.rate = RatePolicy::Fixed(0.04);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::plan_rate;

    #[test]
    fn presets_validate() {
        for c in [
            alpha_cluster(),
            hpvm_cluster(),
            cpu_scaled_cluster(4.0),
            emulation_rate_cluster(2.0),
            vbns_grid(155e6),
            fig17_cluster(),
        ] {
            c.validate().unwrap_or_else(|e| panic!("{}: {e}", c.name));
            plan_rate(&c).unwrap_or_else(|e| panic!("{}: {e}", c.name));
        }
    }

    #[test]
    fn alpha_cluster_runs_at_ninety_percent() {
        let plan = plan_rate(&alpha_cluster()).unwrap();
        assert!((plan.feasible - 1.0).abs() < 1e-9);
        assert!((plan.chosen - 0.9).abs() < 1e-9);
        let shared = plan_rate(&alpha_cluster_shared()).unwrap();
        assert!((shared.chosen - 0.45).abs() < 1e-9);
        assert!((shared.feasible - 0.5).abs() < 1e-9);
    }

    #[test]
    fn hpvm_runs_faster_than_realtime() {
        let plan = plan_rate(&hpvm_cluster()).unwrap();
        assert!(plan.feasible > 1.7 && plan.feasible < 1.8);
    }

    #[test]
    fn cpu_scaling_keeps_rate_constant() {
        let p1 = plan_rate(&cpu_scaled_cluster(1.0)).unwrap();
        let p8 = plan_rate(&cpu_scaled_cluster(8.0)).unwrap();
        assert!((p1.chosen - p8.chosen).abs() < 1e-9);
        // The virtual CPUs really are 8x apart.
        let c1 = cpu_scaled_cluster(1.0);
        let c8 = cpu_scaled_cluster(8.0);
        assert!(
            (c8.virtual_hosts[0].spec.speed_mops / c1.virtual_hosts[0].spec.speed_mops - 8.0).abs()
                < 1e-9
        );
    }

    #[test]
    fn vbns_bottleneck_is_config_driven() {
        let c = vbns_grid(10e6);
        let l = c
            .network
            .links
            .iter()
            .find(|l| l.a == "vbns-la")
            .expect("long-haul link");
        assert_eq!(l.bandwidth_bps, 10e6);
        assert_eq!(l.delay, SimDuration::from_secs_f64(0.025));
    }
}
