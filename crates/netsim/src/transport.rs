//! Reliable message transport: a go-back-N sliding-window protocol over
//! the packet network, standing in for the TCP streams that carry Globus
//! and MPI traffic through NSE in the original system.
//!
//! A message is split into MTU-sized segments; up to one window of
//! segments is in flight; the receiver acknowledges cumulatively and
//! discards out-of-order segments; on timeout the sender rewinds to the
//! first unacknowledged segment. Acks travel as real packets and consume
//! reverse-path bandwidth. The fixed window bounds throughput to
//! `window / RTT` on long fat paths — the behavior behind the paper's
//! observation (Fig 14) that wide-area NPB performance is latency-bound
//! and "only mildly sensitive to network bandwidth".

use mgrid_desim::time::SimDuration;
use mgrid_desim::timeout::with_timeout;
use mgrid_desim::{obs, Category};

use crate::engine::{Endpoint, NetError};
use crate::packet::{Packet, PacketKind, Payload, TransferId};
use crate::topology::NodeId;

impl Endpoint {
    /// Reliably send a message of `size_bytes` to `(dst, port)`.
    ///
    /// Completes when every segment has been acknowledged (the message is
    /// fully delivered, or queued at an unbound port). Fails fast with
    /// [`NetError::Unreachable`] if no route exists.
    ///
    /// The whole sliding-window transfer — segments, acks, and any
    /// retransmission rounds — is covered by one `Net` `net_send` span on
    /// the sending node's timeline.
    pub async fn send(
        &self,
        dst: NodeId,
        port: u16,
        src_port: u16,
        size_bytes: u64,
        payload: Payload,
    ) -> Result<(), NetError> {
        let span = obs::span_begin(Category::Net, "net_send", || {
            let topo = &self.network().inner.topo;
            let (track, lane) = self
                .span_attrs
                .get_or_init(|| (topo.node_name(self.node()).into(), "transport".into()));
            (
                track.clone(),
                lane.clone(),
                format!("{}B to {}", size_bytes, topo.node_name(dst)).into(),
            )
        });
        let res = self
            .send_inner(dst, port, src_port, size_bytes, payload)
            .await;
        obs::span_end(span);
        res
    }

    async fn send_inner(
        &self,
        dst: NodeId,
        port: u16,
        src_port: u16,
        size_bytes: u64,
        payload: Payload,
    ) -> Result<(), NetError> {
        let net = self.network().clone();
        let inner = &net.inner;
        if self.node() != dst && inner.topo.next_hop(self.node(), dst).is_none() {
            return Err(NetError::Unreachable);
        }
        let mtu = inner.params.mtu;
        let total = size_bytes.div_ceil(mtu).max(1) as u32;
        let window = ((inner.params.window_bytes / mtu).max(1) as u32).min(total.max(1));
        let transfer = TransferId(inner.next_transfer.get());
        inner.next_transfer.set(transfer.0 + 1);

        // Register for acks before sending anything.
        let (ack_tx, ack_rx) = mgrid_desim::channel::channel();
        inner.ack_waiters.borrow_mut().insert(transfer, ack_tx);
        // Ensure cleanup on every exit path.
        struct Unregister<'a> {
            net: &'a crate::engine::Network,
            transfer: TransferId,
        }
        impl Drop for Unregister<'_> {
            fn drop(&mut self) {
                self.net
                    .inner
                    .ack_waiters
                    .borrow_mut()
                    .remove(&self.transfer);
            }
        }
        let _guard = Unregister {
            net: &net,
            transfer,
        };

        let mut base: u32 = 0;
        let mut next: u32 = 0;
        let max_rto = inner.params.max_rto.max(inner.params.min_rto);
        let max_rto_ns = u128::from(max_rto.as_nanos());
        let mut rto = inner.params.initial_rto.min(max_rto);
        let mut srtt: Option<SimDuration> = None;
        let mut timing: Option<(u32, mgrid_desim::SimTime)> = None;
        // Resilience accounting: consecutive timed-out rounds with no ack
        // progress, and when the current stall began (for the
        // `net.recovery_latency_ns` histogram).
        let mut stalled_rounds: u32 = 0;
        let mut stall_start: Option<mgrid_desim::SimTime> = None;

        while base < total {
            // Fill the window.
            while next < total && next < base + window {
                let last = next + 1 == total;
                let seg_bytes = if last {
                    size_bytes - u64::from(next) * mtu
                } else {
                    mtu
                };
                let pkt = Packet {
                    src: self.node(),
                    dst,
                    wire_bytes: seg_bytes.max(1) + inner.params.header_bytes,
                    kind: PacketKind::Data {
                        transfer,
                        seq: next,
                        total,
                        message_bytes: size_bytes,
                        port,
                        src_port,
                        payload: if last { Some(payload.clone()) } else { None },
                    },
                };
                net.send_from(self.node(), pkt);
                if timing.is_none() {
                    timing = Some((next, mgrid_desim::now()));
                }
                next += 1;
            }
            // Wait for an ack or a timeout.
            match with_timeout(rto, ack_rx.recv()).await {
                Some(Ok(next_expected)) => {
                    if next_expected > base {
                        base = next_expected;
                        stalled_rounds = 0;
                        if let Some(t0) = stall_start.take() {
                            // Ack progress after one or more timeouts:
                            // the path recovered.
                            inner
                                .m
                                .recovery_latency_ns
                                .observe((mgrid_desim::now() - t0).as_nanos());
                        }
                        if let Some((seq, sent_at)) = timing {
                            if next_expected > seq {
                                let sample = mgrid_desim::now() - sent_at;
                                // Blend in u128 so the 7x multiply cannot
                                // overflow on very large simulated RTTs,
                                // then clamp into [min_rto/4, max_rto]
                                // before narrowing back to nanoseconds.
                                let blended_ns = match srtt {
                                    None => u128::from(sample.as_nanos()),
                                    Some(s) => {
                                        (u128::from(s.as_nanos()) * 7
                                            + u128::from(sample.as_nanos()))
                                            / 8
                                    }
                                };
                                let blended =
                                    SimDuration::from_nanos(blended_ns.min(max_rto_ns) as u64);
                                srtt = Some(blended);
                                let rto_ns =
                                    (u128::from(blended.as_nanos()) * 4).min(max_rto_ns) as u64;
                                rto = SimDuration::from_nanos(rto_ns).max(inner.params.min_rto);
                                timing = None;
                            }
                        }
                    }
                }
                Some(Err(_)) => return Err(NetError::Closed),
                None => {
                    // Timeout: go-back-N from the first unacked segment.
                    next = base;
                    timing = None;
                    inner.stats.borrow_mut().retransmit_rounds += 1;
                    if stall_start.is_none() {
                        stall_start = Some(mgrid_desim::now());
                        inner.m.stalls.add(1);
                    }
                    stalled_rounds += 1;
                    let budget = inner.params.retry_budget;
                    if budget > 0 && stalled_rounds > budget {
                        return Err(NetError::TimedOut);
                    }
                    // Exponential backoff, bounded by `max_rto`
                    // (overflow-safe: doubled in u128).
                    rto = SimDuration::from_nanos(
                        (u128::from(rto.as_nanos()) * 2).min(max_rto_ns) as u64
                    );
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{NetParams, Network};
    use crate::topology::{LinkSpec, TopologyBuilder};
    use mgrid_desim::vclock::VirtualClock;
    use mgrid_desim::{now, spawn, SimTime, Simulation};

    fn lan() -> (Network, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let a = b.host("a");
        let c = b.host("c");
        b.link(a, c, LinkSpec::new(100e6, SimDuration::from_micros(50)));
        let net = Network::new(b.build(), VirtualClock::identity(), NetParams::default());
        (net, a, c)
    }

    #[test]
    fn small_message_delivered_with_latency() {
        let mut sim = Simulation::new(1);
        sim.spawn(async {
            let (net, a, c) = lan();
            let rx = net.endpoint(c).bind(7);
            let tx = net.endpoint(a);
            let t0 = now();
            tx.send(c, 7, 1, 100, Payload::new(42u32)).await.unwrap();
            let msg = rx.recv().await.unwrap();
            assert_eq!(msg.size_bytes, 100);
            assert_eq!(*msg.payload.downcast::<u32>().unwrap(), 42);
            assert_eq!(msg.src, a);
            // One-way: tx(158B at 100Mb/s ~ 12.6us) + 50us prop.
            let elapsed = (now() - t0).as_micros();
            assert!((60..200).contains(&elapsed), "latency {elapsed}us");
        });
        sim.run_to_completion();
    }

    #[test]
    fn large_message_bandwidth_bound() {
        let mut sim = Simulation::new(2);
        sim.spawn(async {
            let (net, a, c) = lan();
            let rx = net.endpoint(c).bind(7);
            let tx = net.endpoint(a);
            let size = 4 * 1024 * 1024u64; // 4 MB
            let t0 = now();
            let sender = spawn(async move {
                tx.send(c, 7, 1, size, Payload::empty()).await.unwrap();
            });
            let msg = rx.recv().await.unwrap();
            sender.await;
            assert_eq!(msg.size_bytes, size);
            let secs = (now() - t0).as_secs_f64();
            let goodput = size as f64 * 8.0 / secs;
            // Must be below the raw 100 Mb/s and above half of it
            // (headers + acks + window stalls cost something).
            assert!(goodput < 100e6, "goodput {goodput}");
            assert!(goodput > 50e6, "goodput {goodput}");
        });
        sim.run_to_completion();
    }

    #[test]
    fn messages_to_same_port_preserve_order() {
        let mut sim = Simulation::new(3);
        sim.spawn(async {
            let (net, a, c) = lan();
            let rx = net.endpoint(c).bind(9);
            let tx = net.endpoint(a);
            spawn(async move {
                for i in 0..20u32 {
                    tx.send(c, 9, 1, 1000, Payload::new(i)).await.unwrap();
                }
            });
            for i in 0..20u32 {
                let msg = rx.recv().await.unwrap();
                assert_eq!(*msg.payload.downcast::<u32>().unwrap(), i);
            }
        });
        sim.run_to_completion();
    }

    #[test]
    fn unreachable_destination_errors() {
        let mut sim = Simulation::new(4);
        sim.spawn(async {
            let mut b = TopologyBuilder::new();
            let a = b.host("a");
            let island = b.host("island");
            let _ = island;
            let net = Network::new(b.build(), VirtualClock::identity(), NetParams::default());
            let r = net
                .endpoint(a)
                .send(island, 1, 1, 10, Payload::empty())
                .await;
            assert_eq!(r, Err(NetError::Unreachable));
        });
        sim.run_to_completion();
    }

    #[test]
    fn recovers_from_queue_drops() {
        let mut sim = Simulation::new(5);
        sim.spawn(async {
            // A tiny queue forces drops; go-back-N must still deliver.
            let mut b = TopologyBuilder::new();
            let a = b.host("a");
            let c = b.host("c");
            b.link(
                a,
                c,
                LinkSpec {
                    bandwidth_bps: 10e6,
                    delay: SimDuration::from_millis(5),
                    queue_bytes: 8 * 1024,
                },
            );
            let net = Network::new(b.build(), VirtualClock::identity(), NetParams::default());
            let rx = net.endpoint(c).bind(7);
            let tx = net.endpoint(a);
            let size = 256 * 1024u64;
            let sender = spawn({
                let tx = tx.clone();
                async move { tx.send(c, 7, 1, size, Payload::empty()).await }
            });
            let msg = rx.recv().await.unwrap();
            assert_eq!(msg.size_bytes, size);
            sender.await.unwrap();
            let stats = net.stats();
            assert!(stats.packet_drops > 0, "expected drops");
            assert!(stats.retransmit_rounds > 0, "expected retransmits");
            assert_eq!(stats.messages_delivered, 1);
        });
        sim.run_to_completion();
    }

    #[test]
    fn recovers_from_forced_periodic_drops() {
        // Deterministic fault injection: every 7th packet offered to the
        // forward link is discarded on the wire. Go-back-N must retransmit
        // through the loss, deliver every message exactly once, in order,
        // and the run must terminate.
        let mut sim = Simulation::new(11);
        sim.spawn(async {
            let mut b = TopologyBuilder::new();
            let a = b.host("a");
            let c = b.host("c");
            let (ab, _ba) = b.link(a, c, LinkSpec::new(10e6, SimDuration::from_millis(2)));
            let net = Network::new(b.build(), VirtualClock::identity(), NetParams::default());
            net.force_drop_every(ab, 7);
            let rx = net.endpoint(c).bind(7);
            let tx = net.endpoint(a);
            let sender = spawn({
                let tx = tx.clone();
                async move {
                    for i in 0..10u32 {
                        tx.send(c, 7, 1, 20_000, Payload::new(i)).await.unwrap();
                    }
                }
            });
            for i in 0..10u32 {
                let msg = rx.recv().await.unwrap();
                assert_eq!(
                    *msg.payload.downcast_ref::<u32>().unwrap(),
                    i,
                    "messages must arrive in send order despite drops"
                );
                assert_eq!(msg.size_bytes, 20_000);
            }
            sender.await;
            let stats = net.stats();
            assert!(stats.packet_drops > 0, "injector must have fired");
            assert!(stats.retransmit_rounds > 0, "loss must force go-back-N");
            assert_eq!(stats.messages_delivered, 10);
            assert_eq!(net.link_stats(ab).drops, stats.packet_drops);
        });
        sim.run_to_completion();
    }

    #[test]
    fn virtual_clock_scales_network_time() {
        // At rate 0.5, the same transfer takes 2x the physical time.
        fn run(rate: f64) -> f64 {
            let mut sim = Simulation::new(6);
            let out = sim.block_on(async move {
                let mut b = TopologyBuilder::new();
                let a = b.host("a");
                let c = b.host("c");
                b.link(a, c, LinkSpec::new(100e6, SimDuration::from_micros(50)));
                let clock = VirtualClock::new(rate);
                let net = Network::new(b.build(), clock, NetParams::default());
                let rx = net.endpoint(c).bind(7);
                let tx = net.endpoint(a);
                let t0 = now();
                spawn(async move {
                    tx.send(c, 7, 1, 1_000_000, Payload::empty()).await.unwrap();
                });
                rx.recv().await.unwrap();
                (now() - t0).as_secs_f64()
            });
            out
        }
        let full = run(1.0);
        let half = run(0.5);
        let ratio = half / full;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn concurrent_flows_share_bottleneck() {
        let mut sim = Simulation::new(7);
        sim.spawn(async {
            let mut b = TopologyBuilder::new();
            let s1 = b.host("s1");
            let s2 = b.host("s2");
            let r = b.router("r");
            let d = b.host("d");
            b.link(s1, r, LinkSpec::new(100e6, SimDuration::from_micros(10)));
            b.link(s2, r, LinkSpec::new(100e6, SimDuration::from_micros(10)));
            b.link(r, d, LinkSpec::new(100e6, SimDuration::from_micros(10)));
            let net = Network::new(b.build(), VirtualClock::identity(), NetParams::default());
            let rx = net.endpoint(d).bind(7);
            let size = 1024 * 1024u64;
            for (src, port) in [(s1, 1u16), (s2, 2u16)] {
                let ep = net.endpoint(src);
                spawn(async move {
                    ep.send(d, 7, port, size, Payload::empty()).await.unwrap();
                });
            }
            let t0 = now();
            rx.recv().await.unwrap();
            rx.recv().await.unwrap();
            let secs = (now() - t0).as_secs_f64();
            let aggregate = (2 * size) as f64 * 8.0 / secs;
            // Two flows through one 100 Mb/s link: aggregate under the
            // link rate but well above a single-window trickle.
            assert!(aggregate < 100e6, "aggregate {aggregate}");
            assert!(aggregate > 40e6, "aggregate {aggregate}");
        });
        sim.run_to_completion();
    }

    #[test]
    fn datagram_delivery_and_loss_on_unbound_port() {
        let mut sim = Simulation::new(8);
        sim.spawn(async {
            let (net, a, c) = lan();
            let rx = net.endpoint(c).bind(5);
            net.endpoint(a)
                .send_datagram(c, 5, 1, 64, Payload::new(1u8));
            net.endpoint(a)
                .send_datagram(c, 99, 1, 64, Payload::new(2u8)); // unbound
            let msg = rx.recv().await.unwrap();
            assert_eq!(*msg.payload.downcast::<u8>().unwrap(), 1);
            mgrid_desim::sleep(SimDuration::from_millis(1)).await;
            assert_eq!(net.stats().datagrams_delivered, 1);
            assert_eq!(net.stats().unbound_drops, 1);
        });
        sim.run_until(SimTime::from_secs_f64(1.0));
    }

    #[test]
    fn link_down_mid_segment_recovers_when_restored() {
        // The link dies while a transfer is mid-flight and comes back
        // later. The sender must stall (not fail: default retry budget is
        // unlimited), recover once the link is up, and report the stall
        // through the `net.stalls` counter and `net.recovery_latency_ns`
        // histogram — the graceful-degradation surface of the fault
        // engine. Exercises `apply_fault` name resolution on both
        // directions of the duplex link.
        use mgrid_faults::FaultKind;
        let mut sim = Simulation::new(21);
        sim.spawn(async {
            let mut b = TopologyBuilder::new();
            let a = b.host("a");
            let c = b.host("c");
            b.link(a, c, LinkSpec::new(10e6, SimDuration::from_millis(2)));
            let net = Network::new(b.build(), VirtualClock::identity(), NetParams::default());
            let rx = net.endpoint(c).bind(7);
            let tx = net.endpoint(a);
            let size = 200_000u64;
            let sender = spawn({
                let tx = tx.clone();
                async move { tx.send(c, 7, 1, size, Payload::empty()).await }
            });
            // Let a few windows through, then cut the link mid-transfer.
            mgrid_desim::sleep(SimDuration::from_millis(20)).await;
            net.apply_fault(&FaultKind::LinkDown {
                a: "a".into(),
                b: "c".into(),
            });
            let outage = SimDuration::from_millis(300);
            mgrid_desim::sleep(outage).await;
            net.apply_fault(&FaultKind::LinkUp {
                a: "a".into(),
                b: "c".into(),
            });
            let msg = rx.recv().await.unwrap();
            assert_eq!(msg.size_bytes, size);
            sender.await.unwrap();
            let stats = net.stats();
            assert!(stats.retransmit_rounds > 0, "outage must force timeouts");
            assert_eq!(stats.messages_delivered, 1);
        });
        sim.run_to_completion();
        let m = sim.obs().metrics();
        assert!(m.counter("net.stalls") >= 1, "stall must be counted");
        let snap = m.snapshot();
        let rec = snap
            .histograms
            .iter()
            .find(|h| h.name == "net.recovery_latency_ns")
            .expect("recovery latency must be recorded in the registry");
        assert!(rec.count >= 1);
        // Recovery can't be observed faster than the outage remainder
        // after the first timeout, and the max must at least span one RTO.
        assert!(
            rec.max >= NetParams::default().min_rto.as_nanos(),
            "recovery latency {} too small",
            rec.max
        );
    }

    #[test]
    fn ack_loss_exhausts_retry_budget() {
        // Every ack (reverse path) is dropped while all data arrives. The
        // receiver completes the message; the sender, never seeing an
        // ack, must give up with `TimedOut` after its retry budget.
        let mut sim = Simulation::new(22);
        sim.spawn(async {
            let mut b = TopologyBuilder::new();
            let a = b.host("a");
            let c = b.host("c");
            let (_ab, ba) = b.link(a, c, LinkSpec::new(10e6, SimDuration::from_millis(2)));
            let params = NetParams {
                retry_budget: 4,
                ..NetParams::default()
            };
            let net = Network::new(b.build(), VirtualClock::identity(), params);
            net.force_drop_every(ba, 1); // kill the entire ack path
            let rx = net.endpoint(c).bind(7);
            let r = net.endpoint(a).send(c, 7, 1, 2000, Payload::new(5u8)).await;
            assert_eq!(r, Err(NetError::TimedOut));
            // The data itself got through: delivery happened even though
            // the sender could not learn of it.
            let msg = rx.recv().await.unwrap();
            assert_eq!(msg.size_bytes, 2000);
            let stats = net.stats();
            assert_eq!(stats.messages_delivered, 1);
            assert!(stats.retransmit_rounds >= 4);
            assert!(net.link_stats(ba).drops > 0, "acks must have been dropped");
        });
        sim.run_to_completion();
    }

    #[test]
    fn probabilistic_loss_recovers_and_counts_consistently() {
        // Seeded random loss on the forward link: go-back-N must deliver
        // everything, and the per-link drop counters must sum exactly to
        // the global `packet_drops`, with `unbound_drops` tracking only
        // the port-level discards (LinkStats/NetworkStats consistency
        // under injected faults).
        let mut sim = Simulation::new(23);
        sim.spawn(async {
            let mut b = TopologyBuilder::new();
            let a = b.host("a");
            let c = b.host("c");
            let (ab, ba) = b.link(a, c, LinkSpec::new(10e6, SimDuration::from_millis(2)));
            let net = Network::new(b.build(), VirtualClock::identity(), NetParams::default());
            net.set_link_loss(ab, 150); // 15% forward loss
            let rx = net.endpoint(c).bind(7);
            let tx = net.endpoint(a);
            let sender = spawn({
                let tx = tx.clone();
                async move {
                    for i in 0..5u32 {
                        tx.send(c, 7, 1, 30_000, Payload::new(i)).await.unwrap();
                    }
                }
            });
            for i in 0..5u32 {
                let msg = rx.recv().await.unwrap();
                assert_eq!(*msg.payload.downcast_ref::<u32>().unwrap(), i);
            }
            sender.await;
            // One datagram to an unbound port: the only unbound drop.
            net.endpoint(a)
                .send_datagram(c, 99, 1, 64, Payload::empty());
            mgrid_desim::sleep(SimDuration::from_millis(50)).await;
            let stats = net.stats();
            assert!(stats.packet_drops > 0, "loss must have fired");
            assert_eq!(stats.messages_delivered, 5);
            assert_eq!(
                net.link_stats(ab).drops + net.link_stats(ba).drops,
                stats.packet_drops,
                "per-link drops must sum to the global packet_drops"
            );
            assert_eq!(stats.unbound_drops, 1, "only the unbound datagram");
        });
        sim.run_to_completion();
    }

    #[test]
    fn corruption_burns_bandwidth_then_drops() {
        // Corrupted packets serialize (occupying the link) but are
        // discarded at arrival, counted as drops on the same link.
        let mut sim = Simulation::new(24);
        sim.spawn(async {
            let mut b = TopologyBuilder::new();
            let a = b.host("a");
            let c = b.host("c");
            let (ab, ba) = b.link(a, c, LinkSpec::new(10e6, SimDuration::from_millis(2)));
            let net = Network::new(b.build(), VirtualClock::identity(), NetParams::default());
            net.set_link_corruption(ab, 200);
            let rx = net.endpoint(c).bind(7);
            let tx = net.endpoint(a);
            let sender = spawn({
                let tx = tx.clone();
                async move { tx.send(c, 7, 1, 50_000, Payload::empty()).await }
            });
            let msg = rx.recv().await.unwrap();
            assert_eq!(msg.size_bytes, 50_000);
            sender.await.unwrap();
            let ab_stats = net.link_stats(ab);
            assert!(ab_stats.drops > 0, "corruption must discard packets");
            // Every corrupted packet was transmitted before being
            // dropped, so tx_packets strictly exceeds what arrived.
            assert!(ab_stats.tx_packets > 0);
            let stats = net.stats();
            assert_eq!(
                ab_stats.drops + net.link_stats(ba).drops,
                stats.packet_drops
            );
            assert_eq!(stats.messages_delivered, 1);
        });
        sim.run_to_completion();
    }

    #[test]
    fn reordering_is_survived_by_go_back_n() {
        // Out-of-order arrivals make the receiver discard and re-ack;
        // the cumulative-ack protocol must still deliver in order.
        let mut sim = Simulation::new(25);
        sim.spawn(async {
            let mut b = TopologyBuilder::new();
            let a = b.host("a");
            let c = b.host("c");
            let (ab, _ba) = b.link(a, c, LinkSpec::new(10e6, SimDuration::from_millis(2)));
            let net = Network::new(b.build(), VirtualClock::identity(), NetParams::default());
            net.set_link_reordering(ab, 300);
            let rx = net.endpoint(c).bind(7);
            let tx = net.endpoint(a);
            let sender = spawn({
                let tx = tx.clone();
                async move {
                    for i in 0..5u32 {
                        tx.send(c, 7, 1, 25_000, Payload::new(i)).await.unwrap();
                    }
                }
            });
            for i in 0..5u32 {
                let msg = rx.recv().await.unwrap();
                assert_eq!(*msg.payload.downcast_ref::<u32>().unwrap(), i);
            }
            sender.await;
            assert_eq!(net.stats().messages_delivered, 5);
        });
        sim.run_to_completion();
    }

    #[test]
    fn partition_isolates_and_heals() {
        // A partition cuts the router path between two sides; sends from
        // the cut-off host stall until the partition heals.
        use mgrid_faults::{FaultBus, FaultKind};
        let mut sim = Simulation::new(26);
        sim.spawn(async {
            let mut b = TopologyBuilder::new();
            let a = b.host("a");
            let r = b.router("r");
            let c = b.host("c");
            b.link(a, r, LinkSpec::new(100e6, SimDuration::from_micros(50)));
            b.link(r, c, LinkSpec::new(100e6, SimDuration::from_micros(50)));
            let net = Network::new(b.build(), VirtualClock::identity(), NetParams::default());
            let bus = FaultBus::new();
            net.attach_faults(&bus);
            bus.publish(&FaultKind::Partition {
                side_a: vec!["a".into(), "r".into()],
                side_b: vec!["c".into()],
            });
            let rx = net.endpoint(c).bind(7);
            let tx = net.endpoint(a);
            let sender = spawn({
                let tx = tx.clone();
                async move { tx.send(c, 7, 1, 1000, Payload::empty()).await }
            });
            mgrid_desim::sleep(SimDuration::from_millis(500)).await;
            assert!(rx.is_empty(), "nothing may cross the partition");
            bus.publish(&FaultKind::HealPartition {
                side_a: vec!["a".into(), "r".into()],
                side_b: vec!["c".into()],
            });
            let msg = rx.recv().await.unwrap();
            assert_eq!(msg.size_bytes, 1000);
            sender.await.unwrap();
        });
        sim.run_to_completion();
    }

    #[test]
    fn rtt_blend_is_overflow_safe_on_huge_delays() {
        // A day of one-way delay: the old u64 7x blend multiply would be
        // fine, but the 4x RTO derivation overflowed SimDuration math for
        // pathological virtual WANs. The clamped u128 path must neither
        // panic nor wedge, and the RTO cap keeps retransmission alive.
        let mut sim = Simulation::new(27);
        sim.spawn(async {
            let mut b = TopologyBuilder::new();
            let a = b.host("a");
            let c = b.host("c");
            b.link(a, c, LinkSpec::new(1e9, SimDuration::from_secs(86_400)));
            let params = NetParams {
                max_rto: SimDuration::from_secs(200_000),
                ..NetParams::default()
            };
            let net = Network::new(b.build(), VirtualClock::identity(), params);
            let rx = net.endpoint(c).bind(7);
            let tx = net.endpoint(a);
            let sender = spawn({
                let tx = tx.clone();
                async move { tx.send(c, 7, 1, 500, Payload::empty()).await }
            });
            let msg = rx.recv().await.unwrap();
            assert_eq!(msg.size_bytes, 500);
            sender.await.unwrap();
        });
        sim.run_to_completion();
    }

    #[test]
    fn loopback_send_works() {
        let mut sim = Simulation::new(9);
        sim.spawn(async {
            let (net, a, _) = lan();
            let rx = net.endpoint(a).bind(3);
            net.endpoint(a)
                .send(a, 3, 1, 5000, Payload::new("self"))
                .await
                .unwrap();
            let msg = rx.recv().await.unwrap();
            assert_eq!(msg.size_bytes, 5000);
            assert_eq!(msg.src, a);
        });
        sim.run_to_completion();
    }
}
