//! Packets: the unit of traffic in the online network simulator.

use std::any::Any;
use std::sync::Arc;

use crate::topology::NodeId;

/// Unique identifier of a reliable transfer (one message in flight).
///
/// The top [`TransferId::SHARD_BITS`] bits namespace the id by the shard
/// that initiated the transfer, so concurrent shards of one sharded run
/// can never collide at a shared receiver. Shard 0 — and therefore every
/// unsharded run — uses the plain sequential ids it always did.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TransferId(pub u64);

impl TransferId {
    /// Number of high bits reserved for the originating shard.
    pub const SHARD_BITS: u32 = 16;

    /// The first id of shard `shard`'s namespace.
    pub fn namespace_base(shard: u64) -> u64 {
        assert!(
            shard < (1 << Self::SHARD_BITS),
            "shard id {shard} exceeds the {} -bit transfer namespace",
            Self::SHARD_BITS
        );
        shard << (64 - Self::SHARD_BITS)
    }
}

/// Opaque application payload carried by the final data packet of a
/// transfer (zero-copy: the simulator moves a reference, not bytes).
///
/// Payloads are `Arc`-backed and `Send + Sync` so a packet can cross a
/// shard boundary through the sharded engine's mailboxes
/// (`mgrid_desim::shard`); within one simulation the clone is still just
/// a refcount bump.
#[derive(Clone)]
pub struct Payload(pub Arc<dyn Any + Send + Sync>);

impl Payload {
    /// Wrap a value.
    pub fn new<T: Any + Send + Sync>(value: T) -> Self {
        Payload(Arc::new(value))
    }

    /// An empty payload (pure byte-count traffic).
    pub fn empty() -> Self {
        Payload(Arc::new(()))
    }

    /// Downcast to the concrete payload type, sharing ownership.
    ///
    /// The type check runs *before* the `Arc` is cloned, so a mismatch
    /// costs no refcount traffic. For read-only access prefer
    /// [`Payload::downcast_ref`], which never touches the refcount.
    pub fn downcast<T: Any + Send + Sync>(&self) -> Option<Arc<T>> {
        if self.0.is::<T>() {
            Arc::clone(&self.0).downcast::<T>().ok()
        } else {
            None
        }
    }

    /// Borrow the concrete payload without cloning the `Arc`.
    ///
    /// This is the allocation- and refcount-free path for per-packet
    /// inspection on the hot receive path.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.0.downcast_ref::<T>()
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Payload(..)")
    }
}

/// What a packet is.
#[derive(Clone, Debug)]
pub enum PacketKind {
    /// A data segment of a reliable transfer.
    Data {
        /// Transfer this segment belongs to.
        transfer: TransferId,
        /// Segment index, 0-based.
        seq: u32,
        /// Total number of segments in the transfer.
        total: u32,
        /// Total message bytes (payload size at the application level).
        message_bytes: u64,
        /// Destination port of the message.
        port: u16,
        /// Source port of the message.
        src_port: u16,
        /// Application payload; present only on the last segment.
        payload: Option<Payload>,
    },
    /// Cumulative acknowledgment of a reliable transfer.
    Ack {
        /// Transfer being acknowledged.
        transfer: TransferId,
        /// Next segment the receiver expects (all below are received).
        next_expected: u32,
    },
    /// An unreliable datagram (fits in one packet or is dropped whole).
    Datagram {
        /// Destination port.
        port: u16,
        /// Source port.
        src_port: u16,
        /// Application bytes.
        message_bytes: u64,
        /// Application payload.
        payload: Payload,
    },
}

/// A packet traversing the simulated network.
///
/// `Packet` is `Send` (its payload is `Arc`-backed): the sharded engine
/// moves whole packets between logical processes at epoch barriers.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Originating host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// On-wire size in bytes, including protocol headers.
    pub wire_bytes: u64,
    /// Semantic content.
    pub kind: PacketKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_downcast_roundtrip() {
        let p = Payload::new(vec![1u32, 2, 3]);
        let v = p.downcast::<Vec<u32>>().unwrap();
        assert_eq!(*v, vec![1, 2, 3]);
        assert!(p.downcast::<String>().is_none());
    }

    #[test]
    fn payload_downcast_ref_is_refcount_free() {
        let p = Payload::new(String::from("zero-copy"));
        let before = Arc::strong_count(&p.0);
        assert_eq!(p.downcast_ref::<String>().unwrap(), "zero-copy");
        assert!(p.downcast_ref::<Vec<u8>>().is_none());
        assert_eq!(Arc::strong_count(&p.0), before);
    }

    #[test]
    fn payload_clone_shares() {
        let p = Payload::new(String::from("shared"));
        let q = p.clone();
        assert!(Arc::ptr_eq(
            &p.downcast::<String>().unwrap(),
            &q.downcast::<String>().unwrap()
        ));
    }

    #[test]
    fn packets_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Packet>();
        assert_send::<Payload>();
    }

    #[test]
    fn transfer_namespaces_do_not_overlap() {
        let base1 = TransferId::namespace_base(1);
        let base2 = TransferId::namespace_base(2);
        assert_eq!(TransferId::namespace_base(0), 0);
        assert!(base1 > (u64::MAX / 2) >> TransferId::SHARD_BITS);
        assert_ne!(base1, base2);
        // A full shard-0 sequence can never reach shard 1's namespace in
        // any plausible run.
        assert!(base1 > 1 << 40);
    }
}
