//! The online network simulator: links with FIFO queues, store-and-forward
//! routing, and live delivery of application traffic.
//!
//! Mirrors the role VINT/NSE plays in the MicroGrid (§2.4.2): the
//! simulator is attached to the virtual communication infrastructure and
//! "mediates all communication … delivering the communications to each
//! destination according to the network topology at the expected time."
//!
//! Every directed link has a bounded drop-tail byte queue and a pump task:
//! serialization occupies the link for `wire_bytes * 8 / bandwidth`, then
//! propagation is pipelined. All durations are *virtual network time*,
//! converted to engine (physical) time through the network's
//! [`VirtualClock`] — this is what lets the same network run under any
//! emulation rate (Fig 15).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use mgrid_desim::channel::{channel, Receiver, Sender};
use mgrid_desim::sync::Notify;
use mgrid_desim::time::{SimDuration, SimTime};
use mgrid_desim::vclock::VirtualClock;
use mgrid_desim::{
    fork_rng, now, obs, sleep_until, spawn_daemon, Counter, Event, FxHashMap, FxHashSet,
    HistogramHandle, SimRng,
};
use mgrid_faults::{FaultBus, FaultKind};

use crate::packet::{Packet, PacketKind, Payload, TransferId};
use crate::topology::{LinkId, NodeId, NodeKind, Topology};

/// Protocol parameters of the simulated transport.
#[derive(Clone, Debug)]
pub struct NetParams {
    /// Application bytes per data segment (TCP MSS-like).
    pub mtu: u64,
    /// Header overhead added to each data segment on the wire.
    pub header_bytes: u64,
    /// Wire size of an acknowledgment packet.
    pub ack_wire_bytes: u64,
    /// Flow-control window in bytes (in-flight unacknowledged data).
    pub window_bytes: u64,
    /// Lower bound on the retransmission timeout.
    pub min_rto: SimDuration,
    /// Retransmission timeout before any RTT sample exists.
    pub initial_rto: SimDuration,
    /// Upper bound on the retransmission timeout: exponential backoff
    /// doubles the RTO no further than this, and RTT-blend updates are
    /// clamped to it (so one pathological sample can't park a transfer).
    pub max_rto: SimDuration,
    /// Consecutive timed-out retransmission rounds (no ack progress)
    /// tolerated before a send fails with [`NetError::TimedOut`].
    /// `0` means retry forever — the pre-fault-engine behaviour.
    pub retry_budget: u32,
    /// Latency of a loopback delivery (same-host messaging).
    pub loopback_delay: SimDuration,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            mtu: 1460,
            header_bytes: 58,
            ack_wire_bytes: 64,
            window_bytes: 64 * 1024,
            min_rto: SimDuration::from_millis(10),
            initial_rto: SimDuration::from_millis(300),
            max_rto: SimDuration::from_secs(5),
            retry_budget: 0,
            loopback_delay: SimDuration::from_micros(15),
        }
    }
}

/// Counters of one directed link.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets transmitted.
    pub tx_packets: u64,
    /// Wire bytes transmitted.
    pub tx_bytes: u64,
    /// Packets dropped at the full queue.
    pub drops: u64,
    /// High-water mark of queued bytes.
    pub peak_queue_bytes: u64,
}

/// Global counters of the network.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Reliable messages fully delivered to an inbox.
    pub messages_delivered: u64,
    /// Datagrams delivered.
    pub datagrams_delivered: u64,
    /// Go-back-N retransmission rounds across all transfers.
    pub retransmit_rounds: u64,
    /// Packets (of any kind) dropped at full queues.
    pub packet_drops: u64,
    /// Messages/datagrams that arrived for an unbound port.
    pub unbound_drops: u64,
}

/// A message delivered to a host inbox.
#[derive(Clone, Debug)]
pub struct Message {
    /// Sending host.
    pub src: NodeId,
    /// Sender's port.
    pub src_port: u16,
    /// Application bytes.
    pub size_bytes: u64,
    /// Application payload.
    pub payload: Payload,
}

/// Errors surfaced by the transport.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetError {
    /// No route exists from source to destination.
    Unreachable,
    /// The network was torn down mid-operation.
    Closed,
    /// The retry budget ran out with no acknowledgment progress (the
    /// destination is down, partitioned away, or the path is lossy beyond
    /// recovery within [`NetParams::retry_budget`] rounds).
    TimedOut,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Unreachable => write!(f, "destination unreachable"),
            NetError::Closed => write!(f, "network closed"),
            NetError::TimedOut => write!(f, "retry budget exhausted without ack progress"),
        }
    }
}

impl std::error::Error for NetError {}

/// Injected impairments of one directed link, driven by a [`FaultPlan`]
/// through [`Network::apply_fault`] (or set directly in tests). This
/// generalizes the old single `force_drop_every` cell: outage, scripted
/// periodic drops, and seeded probabilistic loss / corruption /
/// reordering all live here.
///
/// [`FaultPlan`]: mgrid_faults::FaultPlan
#[derive(Default)]
struct LinkFault {
    /// Link outage: every offered packet is dropped.
    down: bool,
    /// Probability (thousandths) of dropping each offered packet.
    loss_per_mille: u32,
    /// Probability (thousandths) of corrupting each serialized packet
    /// (it burns its wire time, then is discarded on arrival).
    corrupt_per_mille: u32,
    /// Probability (thousandths) of swapping each serialized packet with
    /// its in-flight predecessor (out-of-order delivery).
    reorder_per_mille: u32,
    /// When `n > 0`, every `n`-th offered packet is discarded.
    drop_every: u64,
    offered: u64,
    /// Per-link stream forked from the simulation RNG the first time a
    /// probabilistic impairment is configured, so loss rolls on one link
    /// never perturb another link's stream.
    rng: Option<SimRng>,
}

impl LinkFault {
    fn ensure_rng(&mut self) {
        if self.rng.is_none() {
            self.rng = Some(fork_rng());
        }
    }

    /// True with probability `per_mille / 1000`.
    fn roll(&mut self, per_mille: u32) -> bool {
        if per_mille == 0 {
            return false;
        }
        self.ensure_rng();
        self.rng.as_mut().expect("rng set").below(1000) < u64::from(per_mille)
    }

    /// Decide whether the next offered packet is discarded before
    /// queueing (outage, scripted periodic drop, or random loss).
    fn drops_offered(&mut self) -> bool {
        if self.down {
            return true;
        }
        let forced = if self.drop_every > 0 {
            self.offered += 1;
            self.offered.is_multiple_of(self.drop_every)
        } else {
            false
        };
        forced || self.roll(self.loss_per_mille)
    }
}

struct LinkState {
    queue: RefCell<VecDeque<Packet>>,
    queued_bytes: Cell<u64>,
    notify: Notify,
    /// Serialized packets in propagation, with their arrival deadlines.
    ///
    /// A link's propagation delay is constant, so arrivals are FIFO: one
    /// delivery daemon per link drains this queue in order instead of
    /// spawning a task per in-flight packet.
    inflight: RefCell<VecDeque<(SimTime, Packet)>>,
    arrived: Notify,
    stats: RefCell<LinkStats>,
    fault: RefCell<LinkFault>,
    /// True while the pump is mid-serialization of one packet. Together
    /// with a non-empty `queue` this tells the adaptive-lookahead probe
    /// that a downed link is still draining traffic it already accepted.
    serializing: Cell<bool>,
}

/// Pre-resolved metric handles: the engine touches these once per packet,
/// so the per-call name lookup in the registry's `BTreeMap` is hoisted to
/// network construction.
pub(crate) struct NetMetrics {
    packets_tx: Counter,
    bytes_tx: Counter,
    drops: Counter,
    queue_depth: HistogramHandle,
    /// Transfers that entered a retransmission stall (first timeout with
    /// no ack progress).
    pub(crate) stalls: Counter,
    /// Time from a stall's first timeout until ack progress resumed.
    pub(crate) recovery_latency_ns: HistogramHandle,
}

struct RxTransfer {
    expected: u32,
    total: u32,
    message_bytes: u64,
    src: NodeId,
    src_port: u16,
    port: u16,
    payload: Option<Payload>,
}

/// Hooks installed by a sharded run (`mgrid_desim::shard`): the set of
/// nodes this replica owns and the callback that carries a packet across
/// the shard boundary at its precomputed arrival time.
struct ShardHooks {
    owned: FxHashSet<NodeId>,
    export: Box<dyn Fn(NodeId, SimTime, Packet)>,
}

pub(crate) struct NetInner {
    pub(crate) topo: Topology,
    pub(crate) params: NetParams,
    clock: VirtualClock,
    links: Vec<LinkState>,
    /// `Some` only in sharded runs; `None` keeps the sequential engine
    /// on its exact historical code path.
    shard: RefCell<Option<ShardHooks>>,
    /// Port bindings per node (indexed by `NodeId`). Ports per host are
    /// few, so a linear scan beats hashing a `(NodeId, u16)` key on every
    /// delivered packet.
    inboxes: RefCell<PortMap>,
    rx_transfers: RefCell<FxHashMap<TransferId, RxTransfer>>,
    completed: RefCell<FxHashSet<TransferId>>,
    pub(crate) ack_waiters: RefCell<FxHashMap<TransferId, Sender<u32>>>,
    pub(crate) next_transfer: Cell<u64>,
    pub(crate) stats: RefCell<NetworkStats>,
    /// Same-host messages awaiting their loopback latency, network-wide
    /// (the delay is one constant, so arrivals are FIFO).
    loopback: RefCell<VecDeque<(SimTime, Packet)>>,
    loopback_arrived: Notify,
    pub(crate) m: NetMetrics,
}

/// The simulated network. Must be created inside a running simulation (its
/// link pump daemons are spawned at construction).
#[derive(Clone)]
pub struct Network {
    pub(crate) inner: Rc<NetInner>,
}

impl Network {
    /// Bring up a network over `topo`, with all time conversions going
    /// through `clock` (use [`VirtualClock::identity`] for a physical-time
    /// network).
    pub fn new(topo: Topology, clock: VirtualClock, params: NetParams) -> Self {
        // Size each queue for a full window of MTU-sized segments so the
        // steady state never reallocates.
        let wire_mtu = (params.mtu + params.header_bytes).max(1);
        let links = topo
            .links
            .iter()
            .map(|l| {
                let slots = (l.spec.queue_bytes / wire_mtu + 1).min(4096) as usize;
                LinkState {
                    queue: RefCell::new(VecDeque::with_capacity(slots)),
                    queued_bytes: Cell::new(0),
                    notify: Notify::new(),
                    inflight: RefCell::new(VecDeque::with_capacity(slots)),
                    arrived: Notify::new(),
                    stats: RefCell::new(LinkStats::default()),
                    fault: RefCell::new(LinkFault::default()),
                    serializing: Cell::new(false),
                }
            })
            .collect();
        let node_count = topo.node_count();
        let net = Network {
            inner: Rc::new(NetInner {
                topo,
                params,
                clock,
                links,
                shard: RefCell::new(None),
                inboxes: RefCell::new((0..node_count).map(|_| Vec::new()).collect()),
                rx_transfers: RefCell::new(FxHashMap::default()),
                completed: RefCell::new(FxHashSet::default()),
                ack_waiters: RefCell::new(FxHashMap::default()),
                next_transfer: Cell::new(0),
                stats: RefCell::new(NetworkStats::default()),
                loopback: RefCell::new(VecDeque::new()),
                loopback_arrived: Notify::new(),
                m: NetMetrics {
                    packets_tx: obs::counter_handle("net.packets_tx"),
                    bytes_tx: obs::counter_handle("net.bytes_tx"),
                    drops: obs::counter_handle("net.drops"),
                    queue_depth: obs::histogram_handle(
                        "net.queue_depth_bytes",
                        mgrid_desim::metrics::SIZE_BOUNDS_BYTES,
                    ),
                    stalls: obs::counter_handle("net.stalls"),
                    recovery_latency_ns: obs::histogram_handle(
                        "net.recovery_latency_ns",
                        mgrid_desim::metrics::TIME_BOUNDS_NS,
                    ),
                },
            }),
        };
        for lid in 0..net.inner.topo.links.len() {
            let n = net.clone();
            spawn_daemon(async move { n.pump(LinkId(lid)).await });
            let n = net.clone();
            spawn_daemon(async move { n.delivery_pump(LinkId(lid)).await });
        }
        let n = net.clone();
        spawn_daemon(async move { n.loopback_pump().await });
        net
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.inner.topo
    }

    /// Install sharded-run hooks: this replica simulates traffic only on
    /// links whose receiving end is in `owned`; a packet finishing
    /// serialization toward a non-owned node is handed to `export`
    /// together with its arrival deadline instead of propagating locally.
    ///
    /// The conservative-lookahead contract (see `mgrid_desim::shard`)
    /// holds because the arrival deadline is at least the cut link's
    /// propagation delay in the future, and the run's lookahead is the
    /// minimum such delay ([`Topology::min_cut_latency`]).
    ///
    /// Unsharded runs never call this and execute the exact historical
    /// sequential code path.
    pub fn set_shard_ownership(
        &self,
        owned: FxHashSet<NodeId>,
        export: Box<dyn Fn(NodeId, SimTime, Packet)>,
    ) {
        *self.inner.shard.borrow_mut() = Some(ShardHooks { owned, export });
    }

    /// A lower bound (in engine/physical time) on how far in the future
    /// this replica's next cross-shard export can arrive, given the
    /// *current* fault state of the outgoing cut links — the adaptive
    /// widening of the static [`Topology::min_cut_latency`] bound.
    ///
    /// A cut link contributes its propagation delay while it can still
    /// emit packets: it is up, or it is down but still draining traffic
    /// it accepted before going down (bytes queued, or a packet mid
    /// serialization — a downed link drops at the queue, never in
    /// flight). Links that cannot emit are excluded, so when fault
    /// events down the fast links on the cut the bound grows to the
    /// slowest survivor; `None` means *no* outgoing cut link can emit at
    /// all (the replica cannot export until a link comes back up).
    ///
    /// This is safe to feed to `mgrid_desim::shard::LookaheadAdvice`
    /// **only together with a `valid_until` floor at the next fault
    /// event that can re-enable a faster link** (see
    /// `FaultPlan::link_change_times` in `mgrid-faults`): the bound
    /// reflects this instant's link state and widens again on its own
    /// once the probe is re-sampled.
    ///
    /// `group` assigns every node to a shard and `own` is this replica's
    /// shard; only links leaving `own` are considered.
    pub fn outgoing_cut_lookahead(
        &self,
        group: impl Fn(NodeId) -> usize,
        own: usize,
    ) -> Option<SimDuration> {
        let topo = &self.inner.topo;
        (0..topo.link_count())
            .filter_map(|i| {
                let (from, to) = topo.link_ends(LinkId(i));
                if group(from) != own || group(to) == own {
                    return None;
                }
                let link = &self.inner.links[i];
                let draining = link.queued_bytes.get() > 0 || link.serializing.get();
                if link.fault.borrow().down && !draining {
                    return None;
                }
                Some(self.inner.clock.to_physical(topo.links[i].spec.delay))
            })
            .min()
    }

    /// Namespace this replica's reliable-transfer ids by `shard` (see
    /// [`TransferId::SHARD_BITS`]). Shard 0 keeps the plain sequential
    /// ids, so a 1-shard run is bit-identical to an unsharded one.
    pub fn set_transfer_namespace(&self, shard: u64) {
        self.inner
            .next_transfer
            .set(TransferId::namespace_base(shard));
    }

    /// Deliver a packet exported by a peer shard. Must be called at the
    /// packet's arrival deadline (the sharded engine's mailbox machinery
    /// guarantees this); the packet is received locally or forwarded,
    /// exactly as if it had finished propagation here.
    pub fn inject_arrival(&self, node: NodeId, pkt: Packet) {
        self.deliver(node, pkt);
    }

    /// The network's virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.inner.clock
    }

    /// Transport parameters.
    pub fn params(&self) -> &NetParams {
        &self.inner.params
    }

    /// Counters of one directed link.
    pub fn link_stats(&self, id: LinkId) -> LinkStats {
        self.inner.links[id.0].stats.borrow().clone()
    }

    /// Global counters.
    pub fn stats(&self) -> NetworkStats {
        self.inner.stats.borrow().clone()
    }

    /// Obtain the NIC endpoint of a host node.
    ///
    /// # Panics
    /// Panics if `node` is a router.
    pub fn endpoint(&self, node: NodeId) -> Endpoint {
        assert_eq!(
            self.inner.topo.node_kind(node),
            NodeKind::Host,
            "endpoint on non-host {:?}",
            node
        );
        Endpoint {
            net: self.clone(),
            node,
            span_attrs: std::cell::OnceCell::new(),
        }
    }

    /// Force link `lid` to deterministically discard every `every`-th
    /// packet offered to it (`0` disables injection). The discard counts
    /// as a queue drop in the link and network statistics — this is the
    /// hook fault-injection tests use to exercise the go-back-N recovery
    /// path without depending on queue-sizing side effects.
    pub fn force_drop_every(&self, lid: LinkId, every: u64) {
        let mut f = self.inner.links[lid.0].fault.borrow_mut();
        f.drop_every = every;
        f.offered = 0;
    }

    /// Take a directed link down (`true`) or bring it back up (`false`).
    /// While down, every offered packet is dropped (and accounted like a
    /// queue drop); packets already in flight still arrive.
    pub fn set_link_down(&self, lid: LinkId, down: bool) {
        self.inner.links[lid.0].fault.borrow_mut().down = down;
    }

    /// Drop each packet offered to `lid` with probability
    /// `per_mille / 1000` (`0` disables). Rolls draw from a per-link RNG
    /// stream forked from the simulation seed.
    pub fn set_link_loss(&self, lid: LinkId, per_mille: u32) {
        assert!(per_mille <= 1000, "loss per_mille {per_mille} > 1000");
        let mut f = self.inner.links[lid.0].fault.borrow_mut();
        if per_mille > 0 {
            f.ensure_rng();
        }
        f.loss_per_mille = per_mille;
    }

    /// Corrupt each packet serialized on `lid` with probability
    /// `per_mille / 1000`: the packet consumes its transmission time but
    /// is discarded at arrival, as a checksum failure would discard it.
    pub fn set_link_corruption(&self, lid: LinkId, per_mille: u32) {
        assert!(per_mille <= 1000, "corrupt per_mille {per_mille} > 1000");
        let mut f = self.inner.links[lid.0].fault.borrow_mut();
        if per_mille > 0 {
            f.ensure_rng();
        }
        f.corrupt_per_mille = per_mille;
    }

    /// Swap each packet serialized on `lid` with its in-flight
    /// predecessor with probability `per_mille / 1000`, modeling
    /// out-of-order delivery (arrival instants are unchanged; only the
    /// packet order swaps).
    pub fn set_link_reordering(&self, lid: LinkId, per_mille: u32) {
        assert!(per_mille <= 1000, "reorder per_mille {per_mille} > 1000");
        let mut f = self.inner.links[lid.0].fault.borrow_mut();
        if per_mille > 0 {
            f.ensure_rng();
        }
        f.reorder_per_mille = per_mille;
    }

    /// Apply one scripted fault to this network. Link faults resolve
    /// their endpoint names against the topology and configure both
    /// directions of the duplex link; host-level faults are not the
    /// network's business and are ignored (the host models subscribe to
    /// the same [`FaultBus`]). Names that don't resolve are ignored —
    /// plans are validated against the grid configuration upstream.
    pub fn apply_fault(&self, kind: &FaultKind) {
        match kind {
            FaultKind::LinkDown { a, b } => self.set_named_link(a, b, |n, l| {
                n.set_link_down(l, true);
            }),
            FaultKind::LinkUp { a, b } => self.set_named_link(a, b, |n, l| {
                n.set_link_down(l, false);
            }),
            FaultKind::LinkLoss { a, b, per_mille } => self.set_named_link(a, b, |n, l| {
                n.set_link_loss(l, *per_mille);
            }),
            FaultKind::LinkCorrupt { a, b, per_mille } => self.set_named_link(a, b, |n, l| {
                n.set_link_corruption(l, *per_mille);
            }),
            FaultKind::LinkReorder { a, b, per_mille } => self.set_named_link(a, b, |n, l| {
                n.set_link_reordering(l, *per_mille);
            }),
            FaultKind::Partition { side_a, side_b } => self.set_cut(side_a, side_b, true),
            FaultKind::HealPartition { side_a, side_b } => self.set_cut(side_a, side_b, false),
            _ => {}
        }
    }

    /// Subscribe this network to a fault bus: every published link fault
    /// is applied via [`Network::apply_fault`].
    pub fn attach_faults(&self, bus: &FaultBus) {
        let net = self.clone();
        bus.subscribe(move |kind| net.apply_fault(kind));
    }

    fn set_named_link(&self, a: &str, b: &str, f: impl Fn(&Network, LinkId)) {
        let topo = &self.inner.topo;
        if let (Some(na), Some(nb)) = (topo.node_by_name(a), topo.node_by_name(b)) {
            for lid in topo.links_between(na, nb) {
                f(self, lid);
            }
        }
    }

    /// Set every directed link crossing the `side_a` / `side_b` cut down
    /// (or back up).
    fn set_cut(&self, side_a: &[String], side_b: &[String], down: bool) {
        let topo = &self.inner.topo;
        let sa: FxHashSet<&str> = side_a.iter().map(String::as_str).collect();
        let sb: FxHashSet<&str> = side_b.iter().map(String::as_str).collect();
        for lid in 0..topo.link_count() {
            let (from, to) = topo.link_ends(LinkId(lid));
            let (fname, tname) = (topo.node_name(from), topo.node_name(to));
            let crosses = (sa.contains(fname) && sb.contains(tname))
                || (sb.contains(fname) && sa.contains(tname));
            if crosses {
                self.set_link_down(LinkId(lid), down);
            }
        }
    }

    /// Enqueue a packet on a directed link, dropping it if the queue is
    /// full.
    fn enqueue(&self, lid: LinkId, pkt: Packet) {
        let link = &self.inner.links[lid.0];
        let faulted = link.fault.borrow_mut().drops_offered();
        let cap = self.inner.topo.links[lid.0].spec.queue_bytes;
        let queued = link.queued_bytes.get();
        if faulted || queued + pkt.wire_bytes > cap {
            link.stats.borrow_mut().drops += 1;
            self.inner.stats.borrow_mut().packet_drops += 1;
            self.inner.m.drops.add(1);
            obs::emit(|| Event::PacketDrop {
                link: lid.0,
                bytes: pkt.wire_bytes,
            });
            return;
        }
        link.queued_bytes.set(queued + pkt.wire_bytes);
        let peak = link.queued_bytes.get();
        {
            let mut st = link.stats.borrow_mut();
            st.peak_queue_bytes = st.peak_queue_bytes.max(peak);
        }
        self.inner.m.queue_depth.observe(peak);
        obs::emit(|| Event::PacketEnqueue {
            link: lid.0,
            bytes: pkt.wire_bytes,
            queued_bytes: peak,
        });
        link.queue.borrow_mut().push_back(pkt);
        link.notify.notify_one();
    }

    /// Inject a packet at `node`, routing it toward its destination.
    pub(crate) fn send_from(&self, node: NodeId, pkt: Packet) {
        if node == pkt.dst {
            // Loopback: skip the wire, keep a small stack latency. The
            // delay is one constant, so the network-wide FIFO drained by
            // `loopback_pump` preserves arrival order without a task per
            // message.
            let d = self
                .inner
                .clock
                .to_physical(self.inner.params.loopback_delay);
            self.inner.loopback.borrow_mut().push_back((now() + d, pkt));
            self.inner.loopback_arrived.notify_one();
            return;
        }
        match self.inner.topo.next_hop(node, pkt.dst) {
            Some(lid) => self.enqueue(lid, pkt),
            None => {
                // Unroutable mid-flight (should be prevented at send time).
                self.inner.stats.borrow_mut().packet_drops += 1;
            }
        }
    }

    /// One link's transmit loop: serialize, then hand the packet to the
    /// link's delivery daemon with its propagation deadline.
    async fn pump(self, lid: LinkId) {
        let spec = self.inner.topo.links[lid.0].spec.clone();
        let to_node = self.inner.topo.links[lid.0].to;
        loop {
            let pkt = {
                let link = &self.inner.links[lid.0];
                let pkt = link.queue.borrow_mut().pop_front();
                match pkt {
                    Some(p) => {
                        link.queued_bytes
                            .set(link.queued_bytes.get() - p.wire_bytes);
                        p
                    }
                    None => {
                        link.notify.notified().await;
                        continue;
                    }
                }
            };
            let tx = spec.tx_time(pkt.wire_bytes);
            self.inner.links[lid.0].serializing.set(true);
            mgrid_desim::sleep(self.inner.clock.to_physical(tx)).await;
            let link = &self.inner.links[lid.0];
            link.serializing.set(false);
            {
                let mut st = link.stats.borrow_mut();
                st.tx_packets += 1;
                st.tx_bytes += pkt.wire_bytes;
            }
            self.inner.m.packets_tx.add(1);
            self.inner.m.bytes_tx.add(pkt.wire_bytes);
            obs::emit(|| Event::PacketDequeue {
                link: lid.0,
                bytes: pkt.wire_bytes,
            });
            // The clock rate can change mid-run, so the deadline is fixed
            // at serialization time (same instant the per-packet task used
            // to compute it).
            let prop = self.inner.clock.to_physical(spec.delay);
            if let Some(sh) = self.inner.shard.borrow().as_ref() {
                if !sh.owned.contains(&to_node) {
                    // Cut link: the receiving end lives on a peer shard, so
                    // this replica's delivery daemon never sees the packet.
                    // The corruption roll moves to the sender side (loss and
                    // link-down were already rolled at enqueue); reorder
                    // swaps are skipped because mailbox merge order is fixed
                    // by `(time, shard, seq)`. Arrival is `prop` in the
                    // future, ≥ the run's lookahead by construction
                    // (lookahead = min cut-link latency), which keeps the
                    // conservative epoch window sound.
                    let corrupted = {
                        let mut f = link.fault.borrow_mut();
                        let c = f.corrupt_per_mille;
                        f.roll(c)
                    };
                    if corrupted {
                        link.stats.borrow_mut().drops += 1;
                        self.inner.stats.borrow_mut().packet_drops += 1;
                        self.inner.m.drops.add(1);
                        obs::emit(|| Event::PacketDrop {
                            link: lid.0,
                            bytes: pkt.wire_bytes,
                        });
                    } else {
                        (sh.export)(to_node, now() + prop, pkt);
                    }
                    continue;
                }
            }
            let reorder = {
                let mut f = link.fault.borrow_mut();
                let r = f.reorder_per_mille;
                f.roll(r)
            };
            {
                let mut infl = link.inflight.borrow_mut();
                infl.push_back((now() + prop, pkt));
                let n = infl.len();
                if reorder && n >= 2 {
                    // Swap the packets but keep each arrival deadline in
                    // place, so deliveries stay time-ordered while the
                    // contents arrive out of order.
                    infl.swap(n - 2, n - 1);
                    let t = infl[n - 2].0;
                    infl[n - 2].0 = infl[n - 1].0;
                    infl[n - 1].0 = t;
                }
            }
            link.arrived.notify_one();
        }
    }

    /// One link's receive loop: packets arrive in serialization order
    /// because the propagation delay is constant, so a single daemon
    /// sleeping until each deadline replaces a spawned task per packet.
    async fn delivery_pump(self, lid: LinkId) {
        let to_node = self.inner.topo.links[lid.0].to;
        loop {
            let next = self.inner.links[lid.0].inflight.borrow_mut().pop_front();
            match next {
                Some((at, pkt)) => {
                    sleep_until(at).await;
                    let link = &self.inner.links[lid.0];
                    let corrupted = {
                        let mut f = link.fault.borrow_mut();
                        let c = f.corrupt_per_mille;
                        f.roll(c)
                    };
                    if corrupted {
                        // The packet burned its wire time but fails its
                        // checksum on arrival; account it like a drop so
                        // per-link and global totals stay consistent.
                        link.stats.borrow_mut().drops += 1;
                        self.inner.stats.borrow_mut().packet_drops += 1;
                        self.inner.m.drops.add(1);
                        obs::emit(|| Event::PacketDrop {
                            link: lid.0,
                            bytes: pkt.wire_bytes,
                        });
                        continue;
                    }
                    self.deliver(to_node, pkt);
                }
                None => self.inner.links[lid.0].arrived.notified().await,
            }
        }
    }

    /// Same-host deliveries, in send order after the loopback latency.
    async fn loopback_pump(self) {
        loop {
            let next = self.inner.loopback.borrow_mut().pop_front();
            match next {
                Some((at, pkt)) => {
                    sleep_until(at).await;
                    self.handle_rx(pkt);
                }
                None => self.inner.loopback_arrived.notified().await,
            }
        }
    }

    /// A packet arrives at `node`: deliver locally or forward.
    fn deliver(&self, node: NodeId, pkt: Packet) {
        if node == pkt.dst {
            self.handle_rx(pkt);
        } else {
            self.send_from(node, pkt);
        }
    }

    /// Terminal packet handling at the destination host.
    fn handle_rx(&self, pkt: Packet) {
        match pkt.kind {
            PacketKind::Data {
                transfer,
                seq,
                total,
                message_bytes,
                port,
                src_port,
                payload,
            } => {
                let next_expected = if self.inner.completed.borrow().contains(&transfer) {
                    // A retransmit after completion (its final ack was
                    // lost): re-ack without re-delivering.
                    total
                } else {
                    let mut transfers = self.inner.rx_transfers.borrow_mut();
                    let rx = transfers.entry(transfer).or_insert_with(|| RxTransfer {
                        expected: 0,
                        total,
                        message_bytes,
                        src: pkt.src,
                        src_port,
                        port,
                        payload: None,
                    });
                    if seq == rx.expected {
                        rx.expected += 1;
                        if let Some(p) = payload {
                            rx.payload = Some(p);
                        }
                        if rx.expected == rx.total {
                            let rx = transfers.remove(&transfer).expect("present");
                            drop(transfers);
                            self.inner.completed.borrow_mut().insert(transfer);
                            self.complete_message(pkt.dst, rx);
                            total
                        } else {
                            rx.expected
                        }
                    } else {
                        // Out-of-order segment: discard (go-back-N) and
                        // re-ack the unchanged expectation.
                        rx.expected
                    }
                };
                let ack = Packet {
                    src: pkt.dst,
                    dst: pkt.src,
                    wire_bytes: self.inner.params.ack_wire_bytes,
                    kind: PacketKind::Ack {
                        transfer,
                        next_expected,
                    },
                };
                self.send_from(ack.src, ack);
            }
            PacketKind::Ack {
                transfer,
                next_expected,
            } => {
                let waiters = self.inner.ack_waiters.borrow();
                if let Some(tx) = waiters.get(&transfer) {
                    let _ = tx.send_now(next_expected);
                }
            }
            PacketKind::Datagram {
                port,
                src_port,
                message_bytes,
                payload,
            } => {
                let inboxes = self.inner.inboxes.borrow();
                match lookup_inbox(&inboxes, pkt.dst, port) {
                    Some(tx) => {
                        let delivered = tx
                            .send_now(Message {
                                src: pkt.src,
                                src_port,
                                size_bytes: message_bytes,
                                payload,
                            })
                            .is_ok();
                        drop(inboxes);
                        let mut st = self.inner.stats.borrow_mut();
                        if delivered {
                            st.datagrams_delivered += 1;
                        } else {
                            st.unbound_drops += 1;
                        }
                    }
                    None => {
                        drop(inboxes);
                        self.inner.stats.borrow_mut().unbound_drops += 1;
                    }
                }
            }
        }
    }

    fn complete_message(&self, dst: NodeId, rx: RxTransfer) {
        let inboxes = self.inner.inboxes.borrow();
        let delivered = lookup_inbox(&inboxes, dst, rx.port).and_then(|tx| {
            tx.send_now(Message {
                src: rx.src,
                src_port: rx.src_port,
                size_bytes: rx.message_bytes,
                payload: rx.payload.unwrap_or_else(Payload::empty),
            })
            .ok()
        });
        drop(inboxes);
        let mut st = self.inner.stats.borrow_mut();
        if delivered.is_some() {
            st.messages_delivered += 1;
        } else {
            st.unbound_drops += 1;
        }
    }

    pub(crate) fn bind(&self, node: NodeId, port: u16) -> Receiver<Message> {
        let (tx, rx) = channel();
        let mut inboxes = self.inner.inboxes.borrow_mut();
        let ports = &mut inboxes[node.0];
        assert!(
            !ports.iter().any(|(p, _)| *p == port),
            "port {port} already bound on {:?}",
            self.inner.topo.node_name(node)
        );
        ports.push((port, tx));
        rx
    }

    pub(crate) fn unbind(&self, node: NodeId, port: u16) {
        self.inner.inboxes.borrow_mut()[node.0].retain(|(p, _)| *p != port);
    }
}

/// Port bindings of every node: `inboxes[node.0]` lists the node's bound
/// `(port, sender)` pairs.
type PortMap = Vec<Vec<(u16, Sender<Message>)>>;

/// Find the inbox bound to `(node, port)`, if any.
fn lookup_inbox(inboxes: &PortMap, node: NodeId, port: u16) -> Option<&Sender<Message>> {
    inboxes[node.0]
        .iter()
        .find(|(p, _)| *p == port)
        .map(|(_, tx)| tx)
}

/// A host's NIC: bind ports and send traffic. Created by
/// [`Network::endpoint`].
#[derive(Clone)]
pub struct Endpoint {
    pub(crate) net: Network,
    pub(crate) node: NodeId,
    /// Lazily interned `(track, lane)` span attributes — long-lived
    /// endpoints (one per process) pay the name allocation once, not
    /// once per send.
    pub(crate) span_attrs: std::cell::OnceCell<(mgrid_desim::SpanStr, mgrid_desim::SpanStr)>,
}

impl Endpoint {
    /// The host this endpoint belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The network this endpoint is attached to.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Bind a port, returning its inbox. The port is released when the
    /// inbox is dropped.
    ///
    /// # Panics
    /// Panics if the port is already bound on this host.
    pub fn bind(&self, port: u16) -> Inbox {
        let rx = self.net.bind(self.node, port);
        Inbox {
            net: self.net.clone(),
            node: self.node,
            port,
            rx,
        }
    }

    /// Fire-and-forget datagram (dropped silently on congestion or if the
    /// destination port is unbound).
    ///
    /// # Panics
    /// Panics if the datagram exceeds one MTU.
    pub fn send_datagram(
        &self,
        dst: NodeId,
        port: u16,
        src_port: u16,
        size_bytes: u64,
        payload: Payload,
    ) {
        assert!(
            size_bytes <= self.net.inner.params.mtu,
            "datagram of {size_bytes} bytes exceeds the {} byte MTU",
            self.net.inner.params.mtu
        );
        let pkt = Packet {
            src: self.node,
            dst,
            wire_bytes: size_bytes + self.net.inner.params.header_bytes,
            kind: PacketKind::Datagram {
                port,
                src_port,
                message_bytes: size_bytes,
                payload,
            },
        };
        self.net.send_from(self.node, pkt);
    }
}

/// A bound port's receive queue.
pub struct Inbox {
    net: Network,
    node: NodeId,
    port: u16,
    rx: Receiver<Message>,
}

impl Inbox {
    /// Receive the next message, parking until one arrives.
    pub async fn recv(&self) -> Result<Message, NetError> {
        self.rx.recv().await.map_err(|_| NetError::Closed)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Message> {
        self.rx.try_recv()
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.rx.len()
    }

    /// True if no messages are waiting.
    pub fn is_empty(&self) -> bool {
        self.rx.is_empty()
    }

    /// The bound port number.
    pub fn port(&self) -> u16 {
        self.port
    }
}

impl Drop for Inbox {
    fn drop(&mut self) {
        self.net.unbind(self.node, self.port);
    }
}
