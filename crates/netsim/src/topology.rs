//! Network topology: nodes, links, and static shortest-path routing.
//!
//! The paper's network simulator (VINT/NSE) "allows definition of an
//! arbitrary network configuration" and delivers live traffic "to the right
//! destination with the right delay" (§2.4.2). We model topologies as
//! graphs of hosts and routers joined by duplex links with bandwidth,
//! propagation delay, and a bounded FIFO queue; routes are static shortest
//! paths (Dijkstra on propagation delay, hop count as tie-break), computed
//! when the topology is frozen.

use serde::{Deserialize, Serialize};

use mgrid_desim::time::SimDuration;

/// Index of a node in the topology.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Index of a *directed* link.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub usize);

/// What a node is; only hosts may bind ports and originate traffic.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum NodeKind {
    /// An end host with a NIC.
    Host,
    /// A store-and-forward router.
    Router,
}

/// Characteristics of one link direction.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct LinkSpec {
    /// Raw bandwidth in bits per second (virtual network time).
    pub bandwidth_bps: f64,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// FIFO queue capacity in bytes; arrivals beyond this are dropped.
    pub queue_bytes: u64,
}

impl LinkSpec {
    /// A link with the given bandwidth (bits/s) and delay, with a default
    /// 512 KB queue (comfortably above one flow-control window, so drops
    /// only occur under genuine congestion).
    pub fn new(bandwidth_bps: f64, delay: SimDuration) -> Self {
        LinkSpec {
            bandwidth_bps,
            delay,
            queue_bytes: 512 * 1024,
        }
    }

    /// 100 Mb/s switched Ethernet with a typical LAN delay.
    pub fn fast_ethernet() -> Self {
        LinkSpec::new(100e6, SimDuration::from_micros(50))
    }

    /// 1.2 Gb/s Myrinet (the paper's HPVM cluster interconnect).
    pub fn myrinet() -> Self {
        LinkSpec::new(1.2e9, SimDuration::from_micros(10))
    }

    /// Serialization time of `bytes` on this link (virtual time).
    pub fn tx_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps)
    }
}

#[derive(Clone, Debug)]
pub(crate) struct NodeInfo {
    pub name: String,
    pub kind: NodeKind,
}

#[derive(Clone, Debug)]
pub(crate) struct LinkInfo {
    pub spec: LinkSpec,
    pub from: NodeId,
    pub to: NodeId,
}

/// An immutable, routed topology.
#[derive(Clone, Debug)]
pub struct Topology {
    pub(crate) nodes: Vec<NodeInfo>,
    pub(crate) links: Vec<LinkInfo>,
    /// `next_hop[src][dst]` = first directed link on the path, if reachable.
    pub(crate) next_hop: Vec<Vec<Option<LinkId>>>,
}

/// Builder for [`Topology`].
#[derive(Default)]
pub struct TopologyBuilder {
    nodes: Vec<NodeInfo>,
    links: Vec<LinkInfo>,
}

impl TopologyBuilder {
    /// Start an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an end host.
    pub fn host(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(name, NodeKind::Host)
    }

    /// Add a router.
    pub fn router(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(name, NodeKind::Router)
    }

    fn add_node(&mut self, name: impl Into<String>, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeInfo {
            name: name.into(),
            kind,
        });
        id
    }

    /// Add a duplex link (two directed links with the same spec).
    pub fn link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> (LinkId, LinkId) {
        assert!(a != b, "self-link on node {a:?}");
        let ab = LinkId(self.links.len());
        self.links.push(LinkInfo {
            spec: spec.clone(),
            from: a,
            to: b,
        });
        let ba = LinkId(self.links.len());
        self.links.push(LinkInfo {
            spec,
            from: b,
            to: a,
        });
        (ab, ba)
    }

    /// Add an asymmetric directed link.
    pub fn directed_link(&mut self, from: NodeId, to: NodeId, spec: LinkSpec) -> LinkId {
        assert!(from != to, "self-link on node {from:?}");
        let id = LinkId(self.links.len());
        self.links.push(LinkInfo { spec, from, to });
        id
    }

    /// Freeze the topology and compute routes.
    pub fn build(self) -> Topology {
        let n = self.nodes.len();
        let mut adj: Vec<Vec<(LinkId, NodeId, SimDuration)>> = vec![Vec::new(); n];
        for (i, l) in self.links.iter().enumerate() {
            adj[l.from.0].push((LinkId(i), l.to, l.spec.delay));
        }
        // All-destinations Dijkstra from every node; costs are
        // (delay_nanos, hops) compared lexicographically.
        let mut next_hop = vec![vec![None; n]; n];
        for src in 0..n {
            let mut dist: Vec<(u64, u32)> = vec![(u64::MAX, u32::MAX); n];
            let mut first: Vec<Option<LinkId>> = vec![None; n];
            let mut heap = std::collections::BinaryHeap::new();
            dist[src] = (0, 0);
            heap.push(std::cmp::Reverse(((0u64, 0u32), src, None::<LinkId>)));
            while let Some(std::cmp::Reverse((d, u, via))) = heap.pop() {
                if d > dist[u] {
                    continue;
                }
                first[u] = via;
                for &(lid, v, delay) in &adj[u] {
                    let nd = (d.0 + delay.as_nanos().max(1), d.1 + 1);
                    if nd < dist[v.0] {
                        dist[v.0] = nd;
                        let via0 = via.or(Some(lid));
                        heap.push(std::cmp::Reverse((nd, v.0, via0)));
                    }
                }
            }
            for dst in 0..n {
                if dst != src {
                    next_hop[src][dst] = first[dst];
                }
            }
        }
        Topology {
            nodes: self.nodes,
            links: self.links,
            next_hop,
        }
    }
}

impl Topology {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of *directed* links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Name of a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.nodes[id.0].name
    }

    /// Node with the given name, if any.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name).map(NodeId)
    }

    /// Both directed links joining `a` and `b` (either direction), in
    /// link-index order. Empty if the nodes are not adjacent.
    pub fn links_between(&self, a: NodeId, b: NodeId) -> Vec<LinkId> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| (l.from == a && l.to == b) || (l.from == b && l.to == a))
            .map(|(i, _)| LinkId(i))
            .collect()
    }

    /// Endpoints `(from, to)` of a directed link.
    pub fn link_ends(&self, id: LinkId) -> (NodeId, NodeId) {
        (self.links[id.0].from, self.links[id.0].to)
    }

    /// Kind of a node.
    pub fn node_kind(&self, id: NodeId) -> NodeKind {
        self.nodes[id.0].kind
    }

    /// Spec of a directed link.
    pub fn link_spec(&self, id: LinkId) -> &LinkSpec {
        &self.links[id.0].spec
    }

    /// First directed link on the route from `src` to `dst`.
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<LinkId> {
        self.next_hop[src.0][dst.0]
    }

    /// Full route (sequence of directed links) from `src` to `dst`.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<Vec<LinkId>> {
        let mut path = Vec::new();
        let mut cur = src;
        while cur != dst {
            let lid = self.next_hop[cur.0][dst.0]?;
            path.push(lid);
            cur = self.links[lid.0].to;
            if path.len() > self.nodes.len() {
                return None; // routing loop: should be impossible
            }
        }
        Some(path)
    }

    /// Sum of propagation delays along the route.
    pub fn path_delay(&self, src: NodeId, dst: NodeId) -> Option<SimDuration> {
        Some(
            self.route(src, dst)?
                .iter()
                .map(|l| self.links[l.0].spec.delay)
                .fold(SimDuration::ZERO, |a, b| a + b),
        )
    }

    /// Minimum bandwidth along the route (the bottleneck link).
    pub fn path_bottleneck_bps(&self, src: NodeId, dst: NodeId) -> Option<f64> {
        self.route(src, dst)?
            .iter()
            .map(|l| self.links[l.0].spec.bandwidth_bps)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Minimum propagation delay over links whose endpoints fall in
    /// different groups of `group` — the conservative lookahead of a
    /// sharded run cut along those links (`None` if no link is cut).
    ///
    /// Any cross-shard packet spends at least this long in flight, so a
    /// shard that has processed everything up to time `t` cannot receive
    /// an import earlier than `t + lookahead`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mgrid_netsim::topology::{LinkSpec, TopologyBuilder};
    /// use mgrid_desim::time::SimDuration;
    ///
    /// let mut b = TopologyBuilder::new();
    /// let a = b.host("a");
    /// let c = b.host("c");
    /// let d = b.host("d");
    /// b.link(a, c, LinkSpec::new(1e8, SimDuration::from_micros(50)));
    /// b.link(c, d, LinkSpec::new(1e7, SimDuration::from_millis(20)));
    /// let t = b.build();
    ///
    /// // Cut between {a, c} and {d}: only the WAN link crosses.
    /// let la = t.min_cut_latency(|n| usize::from(n == d));
    /// assert_eq!(la, Some(SimDuration::from_millis(20)));
    /// // Everything in one group: nothing is cut.
    /// assert_eq!(t.min_cut_latency(|_| 0), None);
    /// ```
    pub fn min_cut_latency(&self, group: impl Fn(NodeId) -> usize) -> Option<SimDuration> {
        self.links
            .iter()
            .filter(|l| group(l.from) != group(l.to))
            .map(|l| l.spec.delay)
            .min()
    }

    /// The directed links crossing the cut induced by `group` — every
    /// link whose endpoints fall in different groups, in link-id order.
    /// These are exactly the links whose latency bounds a sharded run's
    /// lookahead ([`Topology::min_cut_latency`] is their minimum delay)
    /// and whose fault state drives adaptive lookahead
    /// (`Network::outgoing_cut_lookahead`).
    pub fn cut_links(&self, group: impl Fn(NodeId) -> usize) -> Vec<LinkId> {
        (0..self.links.len())
            .filter(|&i| {
                let l = &self.links[i];
                group(l.from) != group(l.to)
            })
            .map(LinkId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn two_hosts_direct_link() {
        let mut b = TopologyBuilder::new();
        let a = b.host("a");
        let c = b.host("c");
        b.link(a, c, LinkSpec::new(1e6, ms(5)));
        let t = b.build();
        assert_eq!(t.route(a, c).unwrap().len(), 1);
        assert_eq!(t.path_delay(a, c).unwrap(), ms(5));
        assert_eq!(t.path_delay(c, a).unwrap(), ms(5));
    }

    #[test]
    fn routes_through_router() {
        let mut b = TopologyBuilder::new();
        let h1 = b.host("h1");
        let r = b.router("r");
        let h2 = b.host("h2");
        b.link(h1, r, LinkSpec::new(1e6, ms(1)));
        b.link(r, h2, LinkSpec::new(1e6, ms(2)));
        let t = b.build();
        let route = t.route(h1, h2).unwrap();
        assert_eq!(route.len(), 2);
        assert_eq!(t.path_delay(h1, h2).unwrap(), ms(3));
    }

    #[test]
    fn shortest_delay_path_wins() {
        let mut b = TopologyBuilder::new();
        let s = b.host("s");
        let d = b.host("d");
        let slow = b.router("slow");
        let fast = b.router("fast");
        b.link(s, slow, LinkSpec::new(1e6, ms(50)));
        b.link(slow, d, LinkSpec::new(1e6, ms(50)));
        b.link(s, fast, LinkSpec::new(1e6, ms(1)));
        b.link(fast, d, LinkSpec::new(1e6, ms(1)));
        let t = b.build();
        assert_eq!(t.path_delay(s, d).unwrap(), ms(2));
        let route = t.route(s, d).unwrap();
        assert_eq!(t.links[route[0].0].to, fast);
    }

    #[test]
    fn unreachable_is_none() {
        let mut b = TopologyBuilder::new();
        let a = b.host("a");
        let c = b.host("island");
        let _ = a;
        let t = b.build();
        assert!(t.route(a, c).is_none());
        assert!(t.path_delay(a, c).is_none());
    }

    #[test]
    fn bottleneck_is_min_bandwidth() {
        let mut b = TopologyBuilder::new();
        let a = b.host("a");
        let r1 = b.router("r1");
        let r2 = b.router("r2");
        let z = b.host("z");
        b.link(a, r1, LinkSpec::new(622e6, ms(1)));
        b.link(r1, r2, LinkSpec::new(10e6, ms(10)));
        b.link(r2, z, LinkSpec::new(155e6, ms(1)));
        let t = b.build();
        assert_eq!(t.path_bottleneck_bps(a, z).unwrap(), 10e6);
    }

    #[test]
    fn tx_time_scales_with_size() {
        let l = LinkSpec::new(100e6, ms(0));
        assert_eq!(l.tx_time(1250).as_micros(), 100); // 10 kbit at 100 Mb/s
        assert_eq!(l.tx_time(12500).as_millis(), 1);
    }

    #[test]
    fn route_is_consistent_hop_by_hop() {
        // A ring of 6 routers with hosts hanging off: next_hop chains must
        // terminate and agree with route().
        let mut b = TopologyBuilder::new();
        let hosts: Vec<NodeId> = (0..6).map(|i| b.host(format!("h{i}"))).collect();
        let routers: Vec<NodeId> = (0..6).map(|i| b.router(format!("r{i}"))).collect();
        for i in 0..6 {
            b.link(hosts[i], routers[i], LinkSpec::new(1e8, ms(1)));
            b.link(routers[i], routers[(i + 1) % 6], LinkSpec::new(1e8, ms(2)));
        }
        let t = b.build();
        for &s in &hosts {
            for &d in &hosts {
                if s == d {
                    continue;
                }
                let route = t.route(s, d).expect("connected");
                assert_eq!(t.links[route.last().unwrap().0].to, d);
                assert!(route.len() <= 6);
            }
        }
    }
}
