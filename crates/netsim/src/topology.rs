//! Network topology: nodes, links, and demand-driven shortest-path routing.
//!
//! The paper's network simulator (VINT/NSE) "allows definition of an
//! arbitrary network configuration" and delivers live traffic "to the right
//! destination with the right delay" (§2.4.2). We model topologies as
//! graphs of hosts and routers joined by duplex links with bandwidth,
//! propagation delay, and a bounded FIFO queue.
//!
//! Routes are static shortest paths (Dijkstra on propagation delay, hop
//! count as first tie-break), but they are **not** precomputed: building
//! the all-pairs `next_hop` matrix eagerly is O(N·(E log N)) time and
//! O(N²) memory, which dominates construction long before the
//! thousand-host grids the paper's scalability claim is about. Instead
//! [`Topology::next_hop`] computes the per-source first-hop table lazily
//! on the first query from that source and memoizes it — the shape
//! SSFNet-style simulators use to route large topologies on demand.
//!
//! Determinism: equal-cost paths are broken lexicographically by
//! `(delay, hops, link id)` — among optimal predecessors of a node the
//! minimal incoming link id wins — so the cached tables are a pure
//! function of the topology, independent of query order, shard count, or
//! hash-map iteration order.

use std::cell::RefCell;
use std::cmp::Ordering;

use serde::{Deserialize, Serialize};

use mgrid_desim::time::SimDuration;
use mgrid_desim::{obs, Counter, Event, FxHashMap};

/// Index of a node in the topology.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Index of a *directed* link.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub usize);

/// What a node is; only hosts may bind ports and originate traffic.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum NodeKind {
    /// An end host with a NIC.
    Host,
    /// A store-and-forward router.
    Router,
}

/// Characteristics of one link direction.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct LinkSpec {
    /// Raw bandwidth in bits per second (virtual network time).
    pub bandwidth_bps: f64,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// FIFO queue capacity in bytes; arrivals beyond this are dropped.
    pub queue_bytes: u64,
}

impl LinkSpec {
    /// A link with the given bandwidth (bits/s) and delay, with a default
    /// 512 KB queue (comfortably above one flow-control window, so drops
    /// only occur under genuine congestion).
    pub fn new(bandwidth_bps: f64, delay: SimDuration) -> Self {
        LinkSpec {
            bandwidth_bps,
            delay,
            queue_bytes: 512 * 1024,
        }
    }

    /// 100 Mb/s switched Ethernet with a typical LAN delay.
    pub fn fast_ethernet() -> Self {
        LinkSpec::new(100e6, SimDuration::from_micros(50))
    }

    /// 1.2 Gb/s Myrinet (the paper's HPVM cluster interconnect).
    pub fn myrinet() -> Self {
        LinkSpec::new(1.2e9, SimDuration::from_micros(10))
    }

    /// Serialization time of `bytes` on this link (virtual time).
    pub fn tx_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps)
    }
}

#[derive(Clone, Debug)]
pub(crate) struct NodeInfo {
    pub name: String,
    pub kind: NodeKind,
}

#[derive(Clone, Debug)]
pub(crate) struct LinkInfo {
    pub spec: LinkSpec,
    pub from: NodeId,
    pub to: NodeId,
}

/// Counters for the route cache, resolved against the current
/// simulation's metrics registry when the topology is built (detached —
/// counted but never snapshotted — when built outside a simulation).
#[derive(Clone)]
struct RouteMetrics {
    /// `net.route_cache_hits`: first-hop queries served from a cached table.
    hits: Counter,
    /// `net.route_cache_misses`: first-hop queries that had to compute.
    misses: Counter,
    /// `net.route_src_computed`: per-source Dijkstra runs (misses + warming).
    src_computed: Counter,
}

impl RouteMetrics {
    fn resolve() -> Self {
        RouteMetrics {
            hits: obs::counter_handle("net.route_cache_hits"),
            misses: obs::counter_handle("net.route_cache_misses"),
            src_computed: obs::counter_handle("net.route_src_computed"),
        }
    }
}

/// An immutable topology with a demand-driven route cache.
///
/// Construction is O(nodes + links): no routes are computed until the
/// first [`Topology::next_hop`] / [`Topology::route`] query, and each
/// source's first-hop table is computed exactly once (one Dijkstra) and
/// memoized. See the module docs for the determinism guarantee.
#[derive(Clone)]
pub struct Topology {
    pub(crate) nodes: Vec<NodeInfo>,
    pub(crate) links: Vec<LinkInfo>,
    /// Outgoing adjacency per node, in link-id order.
    adj: Vec<Vec<(LinkId, NodeId, SimDuration)>>,
    /// Name → node index (first occurrence wins, matching the old scan).
    by_name: FxHashMap<String, NodeId>,
    /// Normalized `(min, max)` node pair → directed links joining them,
    /// in link-id order.
    pair_links: FxHashMap<(NodeId, NodeId), Vec<LinkId>>,
    /// Lazily filled per-source first-hop tables: `cache[src][dst]` is
    /// the first directed link from `src` towards `dst`.
    cache: RefCell<FxHashMap<usize, Vec<Option<LinkId>>>>,
    m: RouteMetrics,
}

impl std::fmt::Debug for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Topology")
            .field("nodes", &self.nodes)
            .field("links", &self.links)
            .field("routed_sources", &self.cache.borrow().len())
            .finish()
    }
}

/// Builder for [`Topology`].
#[derive(Default)]
pub struct TopologyBuilder {
    nodes: Vec<NodeInfo>,
    links: Vec<LinkInfo>,
}

impl TopologyBuilder {
    /// Start an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an end host.
    pub fn host(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(name, NodeKind::Host)
    }

    /// Add a router.
    pub fn router(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(name, NodeKind::Router)
    }

    fn add_node(&mut self, name: impl Into<String>, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeInfo {
            name: name.into(),
            kind,
        });
        id
    }

    /// Add a duplex link (two directed links with the same spec).
    pub fn link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> (LinkId, LinkId) {
        assert!(a != b, "self-link on node {a:?}");
        let ab = LinkId(self.links.len());
        self.links.push(LinkInfo {
            spec: spec.clone(),
            from: a,
            to: b,
        });
        let ba = LinkId(self.links.len());
        self.links.push(LinkInfo {
            spec,
            from: b,
            to: a,
        });
        (ab, ba)
    }

    /// Add an asymmetric directed link.
    pub fn directed_link(&mut self, from: NodeId, to: NodeId, spec: LinkSpec) -> LinkId {
        assert!(from != to, "self-link on node {from:?}");
        let id = LinkId(self.links.len());
        self.links.push(LinkInfo { spec, from, to });
        id
    }

    /// Freeze the topology. O(nodes + links): builds the adjacency and
    /// lookup indexes only — routes are computed on demand per source.
    pub fn build(self) -> Topology {
        let n = self.nodes.len();
        let mut adj: Vec<Vec<(LinkId, NodeId, SimDuration)>> = vec![Vec::new(); n];
        let mut pair_links: FxHashMap<(NodeId, NodeId), Vec<LinkId>> = FxHashMap::default();
        for (i, l) in self.links.iter().enumerate() {
            adj[l.from.0].push((LinkId(i), l.to, l.spec.delay));
            let key = (l.from.min(l.to), l.from.max(l.to));
            pair_links.entry(key).or_default().push(LinkId(i));
        }
        let mut by_name: FxHashMap<String, NodeId> = FxHashMap::default();
        for (i, node) in self.nodes.iter().enumerate() {
            by_name.entry(node.name.clone()).or_insert(NodeId(i));
        }
        Topology {
            nodes: self.nodes,
            links: self.links,
            adj,
            by_name,
            pair_links,
            cache: RefCell::new(FxHashMap::default()),
            m: RouteMetrics::resolve(),
        }
    }
}

impl Topology {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of *directed* links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Name of a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.nodes[id.0].name
    }

    /// Node with the given name, if any (first added wins on duplicates).
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Both directed links joining `a` and `b` (either direction), in
    /// link-index order. Empty if the nodes are not adjacent.
    pub fn links_between(&self, a: NodeId, b: NodeId) -> Vec<LinkId> {
        let key = (a.min(b), a.max(b));
        self.pair_links.get(&key).cloned().unwrap_or_default()
    }

    /// Endpoints `(from, to)` of a directed link.
    pub fn link_ends(&self, id: LinkId) -> (NodeId, NodeId) {
        (self.links[id.0].from, self.links[id.0].to)
    }

    /// Kind of a node.
    pub fn node_kind(&self, id: NodeId) -> NodeKind {
        self.nodes[id.0].kind
    }

    /// Spec of a directed link.
    pub fn link_spec(&self, id: LinkId) -> &LinkSpec {
        &self.links[id.0].spec
    }

    /// One Dijkstra from `src`, returning the first-hop table.
    ///
    /// Costs are `(delay_nanos, hops)` compared lexicographically; among
    /// equal-cost optimal predecessors of a node the minimal incoming
    /// link id wins. Every predecessor has strictly smaller cost than the
    /// node it relaxes (delay is clamped to ≥ 1 ns per hop), so all
    /// equal-cost parent offers arrive before a node is settled and the
    /// choice is independent of heap pop order.
    fn compute_source(&self, src: NodeId) -> Vec<Option<LinkId>> {
        let n = self.nodes.len();
        let mut dist: Vec<(u64, u32)> = vec![(u64::MAX, u32::MAX); n];
        let mut parent: Vec<Option<LinkId>> = vec![None; n];
        let mut settled = vec![false; n];
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut heap = std::collections::BinaryHeap::new();
        dist[src.0] = (0, 0);
        heap.push(std::cmp::Reverse(((0u64, 0u32), src.0)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if settled[u] {
                continue;
            }
            settled[u] = true;
            order.push(u);
            for &(lid, v, delay) in &self.adj[u] {
                let nd = (d.0 + delay.as_nanos().max(1), d.1 + 1);
                match nd.cmp(&dist[v.0]) {
                    Ordering::Less => {
                        dist[v.0] = nd;
                        parent[v.0] = Some(lid);
                        heap.push(std::cmp::Reverse((nd, v.0)));
                    }
                    Ordering::Equal if !settled[v.0] && parent[v.0].is_none_or(|p| lid < p) => {
                        parent[v.0] = Some(lid);
                    }
                    _ => {}
                }
            }
        }
        // Fold parent pointers into first hops in settle order: a node's
        // first hop is its parent's first hop, or the parent link itself
        // when the parent is the source.
        let mut first: Vec<Option<LinkId>> = vec![None; n];
        for &u in &order {
            if u == src.0 {
                continue;
            }
            let p = parent[u].expect("settled non-source node has a parent link");
            let from = self.links[p.0].from;
            first[u] = if from == src { Some(p) } else { first[from.0] };
        }
        first
    }

    /// First directed link on the route from `src` to `dst`, computing
    /// and memoizing `src`'s table on first use.
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<LinkId> {
        let mut cache = self.cache.borrow_mut();
        if let Some(table) = cache.get(&src.0) {
            self.m.hits.add(1);
            return table[dst.0];
        }
        self.m.misses.add(1);
        self.m.src_computed.add(1);
        let table = self.compute_source(src);
        let hop = table[dst.0];
        cache.insert(src.0, table);
        hop
    }

    /// Compute and memoize `src`'s first-hop table if absent, without
    /// counting a cache hit or miss (counts towards
    /// `net.route_src_computed`). Used to pre-warm caches and to measure
    /// the eager all-pairs baseline in benchmarks.
    pub fn warm_routes_from(&self, src: NodeId) {
        let mut cache = self.cache.borrow_mut();
        cache.entry(src.0).or_insert_with(|| {
            self.m.src_computed.add(1);
            self.compute_source(src)
        });
    }

    /// Warm every source's table — the eager all-pairs computation the
    /// lazy cache replaces. Benchmarks use this as the baseline cost.
    pub fn warm_all_routes(&self) {
        for src in 0..self.nodes.len() {
            self.warm_routes_from(NodeId(src));
        }
    }

    /// Number of sources whose first-hop tables are currently cached.
    pub fn routed_sources(&self) -> usize {
        self.cache.borrow().len()
    }

    /// Bytes resident in the route cache (first-hop table payloads).
    /// Derived from the cached-source count, not map iteration, so the
    /// figure is deterministic.
    pub fn route_bytes_resident(&self) -> usize {
        self.routed_sources() * self.nodes.len() * std::mem::size_of::<Option<LinkId>>()
    }

    /// Full route (sequence of directed links) from `src` to `dst`,
    /// walked hop-by-hop with [`Topology::next_hop`] — exactly the path a
    /// packet forwarded per-hop takes.
    ///
    /// A valid route visits each node at most once, so it has at most
    /// `N − 1` links; needing one more means the first-hop tables chain
    /// into a cycle. That should be impossible (every hop strictly
    /// decreases the remaining distance), so it is reported as an
    /// [`Event::RouteLoop`] trace event rather than silently.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<Vec<LinkId>> {
        let mut path = Vec::new();
        let mut cur = src;
        while cur != dst {
            if path.len() + 1 >= self.nodes.len() {
                obs::emit(|| Event::RouteLoop {
                    src: src.0,
                    dst: dst.0,
                    at: cur.0,
                });
                return None;
            }
            let lid = self.next_hop(cur, dst)?;
            path.push(lid);
            cur = self.links[lid.0].to;
        }
        Some(path)
    }

    /// Sum of propagation delays along the route.
    pub fn path_delay(&self, src: NodeId, dst: NodeId) -> Option<SimDuration> {
        Some(
            self.route(src, dst)?
                .iter()
                .map(|l| self.links[l.0].spec.delay)
                .fold(SimDuration::ZERO, |a, b| a + b),
        )
    }

    /// Minimum bandwidth along the route (the bottleneck link).
    pub fn path_bottleneck_bps(&self, src: NodeId, dst: NodeId) -> Option<f64> {
        self.route(src, dst)?
            .iter()
            .map(|l| self.links[l.0].spec.bandwidth_bps)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Minimum propagation delay over links whose endpoints fall in
    /// different groups of `group` — the conservative lookahead of a
    /// sharded run cut along those links (`None` if no link is cut).
    ///
    /// Any cross-shard packet spends at least this long in flight, so a
    /// shard that has processed everything up to time `t` cannot receive
    /// an import earlier than `t + lookahead`.
    ///
    /// Works directly off the link list (not the route cache), so it
    /// never triggers route computation.
    ///
    /// # Examples
    ///
    /// ```
    /// use mgrid_netsim::topology::{LinkSpec, TopologyBuilder};
    /// use mgrid_desim::time::SimDuration;
    ///
    /// let mut b = TopologyBuilder::new();
    /// let a = b.host("a");
    /// let c = b.host("c");
    /// let d = b.host("d");
    /// b.link(a, c, LinkSpec::new(1e8, SimDuration::from_micros(50)));
    /// b.link(c, d, LinkSpec::new(1e7, SimDuration::from_millis(20)));
    /// let t = b.build();
    ///
    /// // Cut between {a, c} and {d}: only the WAN link crosses.
    /// let la = t.min_cut_latency(|n| usize::from(n == d));
    /// assert_eq!(la, Some(SimDuration::from_millis(20)));
    /// // Everything in one group: nothing is cut.
    /// assert_eq!(t.min_cut_latency(|_| 0), None);
    /// ```
    pub fn min_cut_latency(&self, group: impl Fn(NodeId) -> usize) -> Option<SimDuration> {
        self.links
            .iter()
            .filter(|l| group(l.from) != group(l.to))
            .map(|l| l.spec.delay)
            .min()
    }

    /// The directed links crossing the cut induced by `group` — every
    /// link whose endpoints fall in different groups, in link-id order.
    /// These are exactly the links whose latency bounds a sharded run's
    /// lookahead ([`Topology::min_cut_latency`] is their minimum delay)
    /// and whose fault state drives adaptive lookahead
    /// (`Network::outgoing_cut_lookahead`). Works off the link list, not
    /// the route cache.
    pub fn cut_links(&self, group: impl Fn(NodeId) -> usize) -> Vec<LinkId> {
        (0..self.links.len())
            .filter(|&i| {
                let l = &self.links[i];
                group(l.from) != group(l.to)
            })
            .map(LinkId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn two_hosts_direct_link() {
        let mut b = TopologyBuilder::new();
        let a = b.host("a");
        let c = b.host("c");
        b.link(a, c, LinkSpec::new(1e6, ms(5)));
        let t = b.build();
        assert_eq!(t.route(a, c).unwrap().len(), 1);
        assert_eq!(t.path_delay(a, c).unwrap(), ms(5));
        assert_eq!(t.path_delay(c, a).unwrap(), ms(5));
    }

    #[test]
    fn routes_through_router() {
        let mut b = TopologyBuilder::new();
        let h1 = b.host("h1");
        let r = b.router("r");
        let h2 = b.host("h2");
        b.link(h1, r, LinkSpec::new(1e6, ms(1)));
        b.link(r, h2, LinkSpec::new(1e6, ms(2)));
        let t = b.build();
        let route = t.route(h1, h2).unwrap();
        assert_eq!(route.len(), 2);
        assert_eq!(t.path_delay(h1, h2).unwrap(), ms(3));
    }

    #[test]
    fn shortest_delay_path_wins() {
        let mut b = TopologyBuilder::new();
        let s = b.host("s");
        let d = b.host("d");
        let slow = b.router("slow");
        let fast = b.router("fast");
        b.link(s, slow, LinkSpec::new(1e6, ms(50)));
        b.link(slow, d, LinkSpec::new(1e6, ms(50)));
        b.link(s, fast, LinkSpec::new(1e6, ms(1)));
        b.link(fast, d, LinkSpec::new(1e6, ms(1)));
        let t = b.build();
        assert_eq!(t.path_delay(s, d).unwrap(), ms(2));
        let route = t.route(s, d).unwrap();
        assert_eq!(t.links[route[0].0].to, fast);
    }

    #[test]
    fn unreachable_is_none() {
        let mut b = TopologyBuilder::new();
        let a = b.host("a");
        let c = b.host("island");
        let _ = a;
        let t = b.build();
        assert!(t.route(a, c).is_none());
        assert!(t.path_delay(a, c).is_none());
    }

    #[test]
    fn bottleneck_is_min_bandwidth() {
        let mut b = TopologyBuilder::new();
        let a = b.host("a");
        let r1 = b.router("r1");
        let r2 = b.router("r2");
        let z = b.host("z");
        b.link(a, r1, LinkSpec::new(622e6, ms(1)));
        b.link(r1, r2, LinkSpec::new(10e6, ms(10)));
        b.link(r2, z, LinkSpec::new(155e6, ms(1)));
        let t = b.build();
        assert_eq!(t.path_bottleneck_bps(a, z).unwrap(), 10e6);
    }

    #[test]
    fn tx_time_scales_with_size() {
        let l = LinkSpec::new(100e6, ms(0));
        assert_eq!(l.tx_time(1250).as_micros(), 100); // 10 kbit at 100 Mb/s
        assert_eq!(l.tx_time(12500).as_millis(), 1);
    }

    #[test]
    fn route_is_consistent_hop_by_hop() {
        // A ring of 6 routers with hosts hanging off: next_hop chains must
        // terminate and agree with route().
        let mut b = TopologyBuilder::new();
        let hosts: Vec<NodeId> = (0..6).map(|i| b.host(format!("h{i}"))).collect();
        let routers: Vec<NodeId> = (0..6).map(|i| b.router(format!("r{i}"))).collect();
        for i in 0..6 {
            b.link(hosts[i], routers[i], LinkSpec::new(1e8, ms(1)));
            b.link(routers[i], routers[(i + 1) % 6], LinkSpec::new(1e8, ms(2)));
        }
        let t = b.build();
        for &s in &hosts {
            for &d in &hosts {
                if s == d {
                    continue;
                }
                let route = t.route(s, d).expect("connected");
                assert_eq!(t.links[route.last().unwrap().0].to, d);
                assert!(route.len() <= 6);
            }
        }
    }

    #[test]
    fn build_computes_no_routes_until_queried() {
        let mut b = TopologyBuilder::new();
        let a = b.host("a");
        let r = b.router("r");
        let c = b.host("c");
        b.link(a, r, LinkSpec::new(1e8, ms(1)));
        b.link(r, c, LinkSpec::new(1e8, ms(1)));
        let t = b.build();
        assert_eq!(t.routed_sources(), 0);
        assert_eq!(t.route_bytes_resident(), 0);
        assert!(t.next_hop(a, c).is_some());
        assert_eq!(t.routed_sources(), 1);
        // route() walks a->r->c: warms r's table too, but not c's.
        assert!(t.route(a, c).is_some());
        assert_eq!(t.routed_sources(), 2);
        assert!(t.route_bytes_resident() > 0);
    }

    #[test]
    fn lookup_indexes_match_scans() {
        let mut b = TopologyBuilder::new();
        let a = b.host("a");
        let r = b.router("r");
        let c = b.host("c");
        let (ar, ra) = b.link(a, r, LinkSpec::new(1e8, ms(1)));
        b.link(r, c, LinkSpec::new(1e8, ms(1)));
        let extra = b.directed_link(a, r, LinkSpec::new(1e6, ms(9)));
        let t = b.build();
        assert_eq!(t.node_by_name("a"), Some(a));
        assert_eq!(t.node_by_name("r"), Some(r));
        assert_eq!(t.node_by_name("nope"), None);
        // Both directions plus the extra directed link, in link-id order,
        // queried either way round.
        assert_eq!(t.links_between(a, r), vec![ar, ra, extra]);
        assert_eq!(t.links_between(r, a), vec![ar, ra, extra]);
        assert_eq!(t.links_between(a, c), vec![]);
    }

    #[test]
    fn equal_cost_tie_breaks_are_stable_across_query_orders() {
        // Two disjoint equal-cost paths s->x->d and s->y->d (same delay,
        // same hops): the chosen route must be identical no matter which
        // queries warmed the cache first.
        let build = || {
            let mut b = TopologyBuilder::new();
            let s = b.host("s");
            let d = b.host("d");
            let x = b.router("x");
            let y = b.router("y");
            b.link(s, x, LinkSpec::new(1e8, ms(3)));
            b.link(x, d, LinkSpec::new(1e8, ms(3)));
            b.link(s, y, LinkSpec::new(1e8, ms(3)));
            b.link(y, d, LinkSpec::new(1e8, ms(3)));
            (b.build(), s, d, x, y)
        };
        let (t1, s1, d1, ..) = build();
        let fresh = t1.route(s1, d1).unwrap();
        let (t2, s2, d2, x2, y2) = build();
        // Warm unrelated sources first, in a different order.
        t2.warm_routes_from(y2);
        t2.warm_routes_from(d2);
        t2.warm_routes_from(x2);
        assert_eq!(t2.route(s2, d2).unwrap(), fresh);
        // The lexicographic (delay, hops, link-id) rule picks the path
        // through x — its links were added first.
        assert_eq!(t1.links[fresh[0].0].to, x2);
    }

    #[test]
    fn route_cache_metrics_flow_into_sim_registry() {
        let mut sim = mgrid_desim::Simulation::new(7);
        let obs = sim.obs().clone();
        sim.block_on(async {
            let mut b = TopologyBuilder::new();
            let a = b.host("a");
            let r = b.router("r");
            let c = b.host("c");
            b.link(a, r, LinkSpec::new(1e8, ms(1)));
            b.link(r, c, LinkSpec::new(1e8, ms(1)));
            let t = b.build();
            assert!(t.next_hop(a, c).is_some()); // miss
            assert!(t.next_hop(a, c).is_some()); // hit
            t.warm_all_routes();
        });
        assert_eq!(obs.metrics().counter("net.route_cache_misses"), 1);
        assert_eq!(obs.metrics().counter("net.route_cache_hits"), 1);
        // 1 miss + warming the remaining 2 sources.
        assert_eq!(obs.metrics().counter("net.route_src_computed"), 3);
    }

    #[test]
    fn poisoned_cache_loop_is_detected_and_traced() {
        // Hand-poison the cache with first-hop tables that chain a->r,
        // r->a for destination c: the walk must stop after N-1 links and
        // emit a RouteLoop event instead of spinning or silently failing.
        let mut sim = mgrid_desim::Simulation::new(7);
        sim.obs().enable_tracing(16);
        let obs = sim.obs().clone();
        sim.block_on(async {
            let mut b = TopologyBuilder::new();
            let a = b.host("a");
            let r = b.router("r");
            let c = b.host("c");
            let (ar, ra) = b.link(a, r, LinkSpec::new(1e8, ms(1)));
            b.link(r, c, LinkSpec::new(1e8, ms(1)));
            let t = b.build();
            {
                let mut cache = t.cache.borrow_mut();
                cache.insert(a.0, vec![None, Some(ar), Some(ar)]);
                cache.insert(r.0, vec![Some(ra), None, Some(ra)]);
            }
            assert_eq!(t.route(a, c), None);
        });
        let loops = obs
            .tracer()
            .events_in(mgrid_desim::event::Category::Net)
            .len();
        assert_eq!(loops, 1, "exactly one RouteLoop event must be traced");
    }
}
