//! # mgrid-netsim — NSE-like online network simulation for MicroGrid-rs
//!
//! The paper integrates the real-time VINT/NSE simulator to carry all
//! inter-virtual-host traffic over an arbitrary topology (§2.4.2). This
//! crate provides that role natively:
//!
//! * [`topology`] — hosts, routers, duplex links (bandwidth / propagation
//!   delay / bounded FIFO queue), static shortest-path routing.
//! * [`engine`] — the online simulator: per-link pump tasks serialize and
//!   propagate packets; hosts bind ports and receive assembled messages.
//! * [`transport`] — a reliable go-back-N sliding-window message protocol
//!   (the TCP stand-in) plus unreliable datagrams.
//!
//! All network timing is expressed in virtual network time and converted
//! through a [`mgrid_desim::vclock::VirtualClock`], so one topology
//! definition serves both "physical grid" baselines (identity clock) and
//! rate-scaled MicroGrid runs.

#![warn(missing_docs)]

pub mod engine;
pub mod packet;
pub mod topology;
pub mod transport;

pub use engine::{Endpoint, Inbox, Message, NetError, NetParams, Network, NetworkStats};
pub use packet::{Packet, PacketKind, Payload, TransferId};
pub use topology::{LinkId, LinkSpec, NodeId, NodeKind, Topology, TopologyBuilder};
