//! Cross-shard packet delivery: a two-site WAN topology split along its
//! long-haul link must deliver exactly what the sequential engine does.
//!
//! Shard 0 owns site A (host `a` + router `ra`); shard 1 owns site B
//! (router `rb` + host `b`). The 20 ms long-haul hop is the cut, so the
//! conservative lookahead is 20 ms. Reliable transfers exercise the cut
//! in both directions: data segments flow A→B and the cumulative acks
//! flow B→A, each leaving its replica at `pump` time and re-entering the
//! peer replica through `Network::inject_arrival` at the exact arrival
//! deadline.

use std::cell::RefCell;
use std::rc::Rc;

use mgrid_desim::shard::{run_sharded, ShardHandle, ShardPlan, ShardRun};
use mgrid_desim::time::SimDuration;
use mgrid_desim::vclock::VirtualClock;
use mgrid_desim::{now, sleep_until, spawn, FxHashSet, Simulation};
use mgrid_netsim::{
    LinkSpec, NetParams, Network, NodeId, Packet, Payload, Topology, TopologyBuilder,
};

const WAN_DELAY: SimDuration = SimDuration::from_millis(20);
const MSGS: u32 = 3;
const BYTES: u64 = 40_000;

/// (arrival ns, payload value, message size) as logged at host `b`.
type Log = Vec<(u64, u32, u64)>;

/// A shard-crossing message: the packet plus the node it arrives at.
type Cross = (NodeId, Packet);

fn build_topology() -> (Topology, [NodeId; 4]) {
    let mut b = TopologyBuilder::new();
    let a = b.host("a");
    let ra = b.router("ra");
    let rb = b.router("rb");
    let bb = b.host("b");
    b.link(a, ra, LinkSpec::new(100e6, SimDuration::from_micros(50)));
    b.link(ra, rb, LinkSpec::new(45e6, WAN_DELAY));
    b.link(rb, bb, LinkSpec::new(100e6, SimDuration::from_micros(50)));
    (b.build(), [a, ra, rb, bb])
}

/// The sequential reference: the whole grid in one simulation, run
/// through the engine's inline single-shard path (byte-identical to
/// `Simulation::block_on`).
fn sequential() -> Log {
    let plan = ShardPlan::connected(1, WAN_DELAY);
    let factory = |_h: ShardHandle<Cross>| {
        let sim = Simulation::new(42);
        let log: Rc<RefCell<Log>> = Rc::new(RefCell::new(Vec::new()));
        let log2 = log.clone();
        let root = sim.spawn(async move {
            let (topo, [a, _ra, _rb, bb]) = build_topology();
            let net = Network::new(topo, VirtualClock::identity(), NetParams::default());
            let rx = net.endpoint(bb).bind(7);
            let tx = net.endpoint(a);
            let recv = spawn(async move {
                for _ in 0..MSGS {
                    let m = rx.recv().await.unwrap();
                    log2.borrow_mut().push((
                        now().as_nanos(),
                        *m.payload.downcast_ref::<u32>().unwrap(),
                        m.size_bytes,
                    ));
                }
            });
            for i in 0..MSGS {
                tx.send(bb, 7, 1, BYTES, Payload::new(i)).await.unwrap();
            }
            recv.await;
        });
        ShardRun {
            sim,
            deliver: Box::new(|_, _| unreachable!("single shard has no peers")),
            root_done: Box::new(move || root.is_finished()),
            finish: Box::new(move |_| log.borrow().clone()),
        }
    };
    let mut out = run_sharded(
        plan,
        vec![Box::new(factory)
            as Box<
                dyn FnOnce(ShardHandle<Cross>) -> ShardRun<Cross, Log> + Send,
            >],
    );
    out.pop().unwrap()
}

/// One shard of the split run: a full replica of the grid that simulates
/// only its owned site and trades cut-link packets with the peer.
fn shard_factory(s: usize, h: ShardHandle<Cross>) -> ShardRun<Cross, Log> {
    let sim = Simulation::new(42);
    let log: Rc<RefCell<Log>> = Rc::new(RefCell::new(Vec::new()));
    let net_slot: Rc<RefCell<Option<Network>>> = Rc::new(RefCell::new(None));
    let log2 = log.clone();
    let net_slot2 = net_slot.clone();
    let root = sim.spawn(async move {
        let (topo, nodes) = build_topology();
        let net = Network::new(topo, VirtualClock::identity(), NetParams::default());
        net.set_transfer_namespace(s as u64);
        let mine: [NodeId; 2] = if s == 0 {
            [nodes[0], nodes[1]]
        } else {
            [nodes[2], nodes[3]]
        };
        let owned: FxHashSet<NodeId> = mine.into_iter().collect();
        let site_a = [nodes[0], nodes[1]];
        net.set_shard_ownership(
            owned,
            Box::new(move |node, at, pkt| {
                let to = usize::from(!site_a.contains(&node));
                h.export(to, at, (node, pkt));
            }),
        );
        *net_slot2.borrow_mut() = Some(net.clone());
        if s == 0 {
            let tx = net.endpoint(nodes[0]);
            for i in 0..MSGS {
                tx.send(nodes[3], 7, 1, BYTES, Payload::new(i))
                    .await
                    .unwrap();
            }
        } else {
            let rx = net.endpoint(nodes[3]).bind(7);
            for _ in 0..MSGS {
                let m = rx.recv().await.unwrap();
                log2.borrow_mut().push((
                    now().as_nanos(),
                    *m.payload.downcast_ref::<u32>().unwrap(),
                    m.size_bytes,
                ));
            }
        }
    });
    ShardRun {
        sim,
        deliver: Box::new(move |sim, imp| {
            let net = net_slot
                .borrow()
                .clone()
                .expect("replica built in the first epoch");
            sim.spawn(async move {
                sleep_until(imp.time).await;
                let (node, pkt) = imp.msg;
                net.inject_arrival(node, pkt);
            });
        }),
        root_done: Box::new(move || root.is_finished()),
        finish: Box::new(move |_| log.borrow().clone()),
    }
}

fn sharded() -> Log {
    let plan = ShardPlan::connected(2, WAN_DELAY);
    let factories: Vec<_> = (0..2)
        .map(|s| {
            Box::new(move |h| shard_factory(s, h))
                as Box<dyn FnOnce(ShardHandle<Cross>) -> ShardRun<Cross, Log> + Send>
        })
        .collect();
    let out = run_sharded(plan, factories);
    // Only the receiving shard logs anything.
    assert!(out[0].is_empty());
    out[1].clone()
}

#[test]
fn split_run_matches_the_sequential_engine() {
    let seq = sequential();
    assert_eq!(
        seq.len(),
        MSGS as usize,
        "reference must deliver everything"
    );
    // Messages are in order and no delivery beats the WAN propagation.
    assert!(seq[0].0 > WAN_DELAY.as_nanos());
    for (i, entry) in seq.iter().enumerate() {
        assert_eq!(entry.1, i as u32);
        assert_eq!(entry.2, BYTES);
    }
    let par = sharded();
    assert_eq!(par, seq, "2-shard run must be byte-identical to sequential");
}

#[test]
fn split_run_is_repeatable() {
    assert_eq!(sharded(), sharded());
}
