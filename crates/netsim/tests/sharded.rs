//! Cross-shard packet delivery: a two-site WAN topology split along its
//! long-haul link must deliver exactly what the sequential engine does.
//!
//! Shard 0 owns site A (host `a` + router `ra`); shard 1 owns site B
//! (router `rb` + host `b`). The 20 ms long-haul hop is the cut, so the
//! conservative lookahead is 20 ms. Reliable transfers exercise the cut
//! in both directions: data segments flow A→B and the cumulative acks
//! flow B→A, each leaving its replica at `pump` time and re-entering the
//! peer replica through `Network::inject_arrival` at the exact arrival
//! deadline.

use std::cell::RefCell;
use std::rc::Rc;

use mgrid_desim::shard::{run_sharded, LookaheadAdvice, ShardHandle, ShardPlan, ShardRun};
use mgrid_desim::time::{SimDuration, SimTime};
use mgrid_desim::vclock::VirtualClock;
use mgrid_desim::{now, sleep_until, spawn, FxHashSet, Simulation};
use mgrid_netsim::{
    LinkSpec, NetParams, Network, NodeId, Packet, Payload, Topology, TopologyBuilder,
};

const WAN_DELAY: SimDuration = SimDuration::from_millis(20);
const MSGS: u32 = 3;
const BYTES: u64 = 40_000;

/// (arrival ns, payload value, message size) as logged at host `b`.
type Log = Vec<(u64, u32, u64)>;

/// A shard-crossing message: the packet plus the node it arrives at.
type Cross = (NodeId, Packet);

fn build_topology() -> (Topology, [NodeId; 4]) {
    let mut b = TopologyBuilder::new();
    let a = b.host("a");
    let ra = b.router("ra");
    let rb = b.router("rb");
    let bb = b.host("b");
    b.link(a, ra, LinkSpec::new(100e6, SimDuration::from_micros(50)));
    b.link(ra, rb, LinkSpec::new(45e6, WAN_DELAY));
    b.link(rb, bb, LinkSpec::new(100e6, SimDuration::from_micros(50)));
    (b.build(), [a, ra, rb, bb])
}

/// The sequential reference: the whole grid in one simulation, run
/// through the engine's inline single-shard path (byte-identical to
/// `Simulation::block_on`).
fn sequential() -> Log {
    let plan = ShardPlan::connected(1, WAN_DELAY);
    let factory = |_h: ShardHandle<Cross>| {
        let sim = Simulation::new(42);
        let log: Rc<RefCell<Log>> = Rc::new(RefCell::new(Vec::new()));
        let log2 = log.clone();
        let root = sim.spawn(async move {
            let (topo, [a, _ra, _rb, bb]) = build_topology();
            let net = Network::new(topo, VirtualClock::identity(), NetParams::default());
            let rx = net.endpoint(bb).bind(7);
            let tx = net.endpoint(a);
            let recv = spawn(async move {
                for _ in 0..MSGS {
                    let m = rx.recv().await.unwrap();
                    log2.borrow_mut().push((
                        now().as_nanos(),
                        *m.payload.downcast_ref::<u32>().unwrap(),
                        m.size_bytes,
                    ));
                }
            });
            for i in 0..MSGS {
                tx.send(bb, 7, 1, BYTES, Payload::new(i)).await.unwrap();
            }
            recv.await;
        });
        ShardRun {
            sim,
            deliver: Box::new(|_, _| unreachable!("single shard has no peers")),
            root_done: Box::new(move || root.is_finished()),
            advise: None,
            finish: Box::new(move |_| log.borrow().clone()),
        }
    };
    let mut out = run_sharded(
        plan,
        vec![Box::new(factory)
            as Box<
                dyn FnOnce(ShardHandle<Cross>) -> ShardRun<Cross, Log> + Send,
            >],
    );
    out.pop().unwrap()
}

/// One shard of the split run: a full replica of the grid that simulates
/// only its owned site and trades cut-link packets with the peer.
fn shard_factory(s: usize, h: ShardHandle<Cross>) -> ShardRun<Cross, Log> {
    let sim = Simulation::new(42);
    let log: Rc<RefCell<Log>> = Rc::new(RefCell::new(Vec::new()));
    let net_slot: Rc<RefCell<Option<Network>>> = Rc::new(RefCell::new(None));
    let log2 = log.clone();
    let net_slot2 = net_slot.clone();
    let root = sim.spawn(async move {
        let (topo, nodes) = build_topology();
        let net = Network::new(topo, VirtualClock::identity(), NetParams::default());
        net.set_transfer_namespace(s as u64);
        let mine: [NodeId; 2] = if s == 0 {
            [nodes[0], nodes[1]]
        } else {
            [nodes[2], nodes[3]]
        };
        let owned: FxHashSet<NodeId> = mine.into_iter().collect();
        let site_a = [nodes[0], nodes[1]];
        net.set_shard_ownership(
            owned,
            Box::new(move |node, at, pkt| {
                let to = usize::from(!site_a.contains(&node));
                h.export(to, at, (node, pkt));
            }),
        );
        *net_slot2.borrow_mut() = Some(net.clone());
        if s == 0 {
            let tx = net.endpoint(nodes[0]);
            for i in 0..MSGS {
                tx.send(nodes[3], 7, 1, BYTES, Payload::new(i))
                    .await
                    .unwrap();
            }
        } else {
            let rx = net.endpoint(nodes[3]).bind(7);
            for _ in 0..MSGS {
                let m = rx.recv().await.unwrap();
                log2.borrow_mut().push((
                    now().as_nanos(),
                    *m.payload.downcast_ref::<u32>().unwrap(),
                    m.size_bytes,
                ));
            }
        }
    });
    ShardRun {
        sim,
        deliver: Box::new(move |sim, imp| {
            let net = net_slot
                .borrow()
                .clone()
                .expect("replica built in the first epoch");
            sim.spawn(async move {
                sleep_until(imp.time).await;
                let (node, pkt) = imp.msg;
                net.inject_arrival(node, pkt);
            });
        }),
        root_done: Box::new(move || root.is_finished()),
        advise: None,
        finish: Box::new(move |_| log.borrow().clone()),
    }
}

fn sharded() -> Log {
    let plan = ShardPlan::connected(2, WAN_DELAY);
    let factories: Vec<_> = (0..2)
        .map(|s| {
            Box::new(move |h| shard_factory(s, h))
                as Box<dyn FnOnce(ShardHandle<Cross>) -> ShardRun<Cross, Log> + Send>
        })
        .collect();
    let out = run_sharded(plan, factories);
    // Only the receiving shard logs anything.
    assert!(out[0].is_empty());
    out[1].clone()
}

#[test]
fn split_run_matches_the_sequential_engine() {
    let seq = sequential();
    assert_eq!(
        seq.len(),
        MSGS as usize,
        "reference must deliver everything"
    );
    // Messages are in order and no delivery beats the WAN propagation.
    assert!(seq[0].0 > WAN_DELAY.as_nanos());
    for (i, entry) in seq.iter().enumerate() {
        assert_eq!(entry.1, i as u32);
        assert_eq!(entry.2, BYTES);
    }
    let par = sharded();
    assert_eq!(par, seq, "2-shard run must be byte-identical to sequential");
}

#[test]
fn split_run_is_repeatable() {
    assert_eq!(sharded(), sharded());
}

// --- Adaptive lookahead under a scripted WAN outage -------------------

/// The WAN link goes down at 60 ms and comes back at 200 ms — virtual
/// instants every replica knows, so the scripted outage is applied
/// identically in the sequential reference and in each shard.
const DOWN_NS: u64 = 60_000_000;
const UP_NS: u64 = 200_000_000;

/// Spawn the scripted outage into the current simulation: both
/// directions of the `ra`–`rb` long-haul link down during
/// `[DOWN_NS, UP_NS)`.
fn spawn_outage(net: &Network) {
    let net = net.clone();
    spawn(async move {
        let wan = {
            let topo = net.topology();
            let ra = topo.node_by_name("ra").unwrap();
            let rb = topo.node_by_name("rb").unwrap();
            topo.links_between(ra, rb)
        };
        sleep_until(SimTime::from_nanos(DOWN_NS)).await;
        for l in &wan {
            net.set_link_down(*l, true);
        }
        sleep_until(SimTime::from_nanos(UP_NS)).await;
        for l in &wan {
            net.set_link_down(*l, false);
        }
    });
}

fn sequential_outage() -> Log {
    let plan = ShardPlan::connected(1, WAN_DELAY);
    let factory = |_h: ShardHandle<Cross>| {
        let sim = Simulation::new(42);
        let log: Rc<RefCell<Log>> = Rc::new(RefCell::new(Vec::new()));
        let log2 = log.clone();
        let root = sim.spawn(async move {
            let (topo, [a, _ra, _rb, bb]) = build_topology();
            let net = Network::new(topo, VirtualClock::identity(), NetParams::default());
            spawn_outage(&net);
            let rx = net.endpoint(bb).bind(7);
            let tx = net.endpoint(a);
            let recv = spawn(async move {
                for _ in 0..MSGS {
                    let m = rx.recv().await.unwrap();
                    log2.borrow_mut().push((
                        now().as_nanos(),
                        *m.payload.downcast_ref::<u32>().unwrap(),
                        m.size_bytes,
                    ));
                }
            });
            for i in 0..MSGS {
                tx.send(bb, 7, 1, BYTES, Payload::new(i)).await.unwrap();
            }
            recv.await;
        });
        ShardRun {
            sim,
            deliver: Box::new(|_, _| unreachable!("single shard has no peers")),
            root_done: Box::new(move || root.is_finished()),
            advise: None,
            finish: Box::new(move |_| log.borrow().clone()),
        }
    };
    let mut out = run_sharded(
        plan,
        vec![Box::new(factory)
            as Box<
                dyn FnOnce(ShardHandle<Cross>) -> ShardRun<Cross, Log> + Send,
            >],
    );
    out.pop().unwrap()
}

/// One shard of the outage run, publishing adaptive lookahead from the
/// live fault state of its outgoing cut link: "cannot export" while the
/// WAN hop is down and drained, re-examined (`valid_until`) at each
/// scripted link-change instant.
fn outage_shard_factory(s: usize, h: ShardHandle<Cross>) -> ShardRun<Cross, Log> {
    let sim = Simulation::new(42);
    let log: Rc<RefCell<Log>> = Rc::new(RefCell::new(Vec::new()));
    let net_slot: Rc<RefCell<Option<Network>>> = Rc::new(RefCell::new(None));
    let log2 = log.clone();
    let net_slot2 = net_slot.clone();
    let net_slot3 = net_slot.clone();
    let root = sim.spawn(async move {
        let (topo, nodes) = build_topology();
        let net = Network::new(topo, VirtualClock::identity(), NetParams::default());
        net.set_transfer_namespace(s as u64);
        spawn_outage(&net);
        let mine: [NodeId; 2] = if s == 0 {
            [nodes[0], nodes[1]]
        } else {
            [nodes[2], nodes[3]]
        };
        let owned: FxHashSet<NodeId> = mine.into_iter().collect();
        let site_a = [nodes[0], nodes[1]];
        net.set_shard_ownership(
            owned,
            Box::new(move |node, at, pkt| {
                let to = usize::from(!site_a.contains(&node));
                h.export(to, at, (node, pkt));
            }),
        );
        *net_slot2.borrow_mut() = Some(net.clone());
        if s == 0 {
            let tx = net.endpoint(nodes[0]);
            for i in 0..MSGS {
                tx.send(nodes[3], 7, 1, BYTES, Payload::new(i))
                    .await
                    .unwrap();
            }
        } else {
            let rx = net.endpoint(nodes[3]).bind(7);
            for _ in 0..MSGS {
                let m = rx.recv().await.unwrap();
                log2.borrow_mut().push((
                    now().as_nanos(),
                    *m.payload.downcast_ref::<u32>().unwrap(),
                    m.size_bytes,
                ));
            }
        }
    });
    ShardRun {
        sim,
        deliver: Box::new(move |sim, imp| {
            let net = net_slot
                .borrow()
                .clone()
                .expect("replica built in the first epoch");
            sim.spawn(async move {
                sleep_until(imp.time).await;
                let (node, pkt) = imp.msg;
                net.inject_arrival(node, pkt);
            });
        }),
        root_done: Box::new(move || root.is_finished()),
        advise: Some(Box::new(move |at| {
            let Some(net) = net_slot3.borrow().clone() else {
                // Replica not built yet: claim nothing beyond the plan.
                return LookaheadAdvice::default();
            };
            let group = |n: NodeId| {
                let topo = net.topology();
                usize::from(topo.node_name(n) == "rb" || topo.node_name(n) == "b")
            };
            let out = net
                .outgoing_cut_lookahead(group, s)
                // No usable outgoing cut link: cannot export at all.
                .unwrap_or(SimDuration::MAX);
            let valid_until = [DOWN_NS, UP_NS]
                .into_iter()
                .find(|&t| t > at.as_nanos())
                .map(SimTime::from_nanos);
            LookaheadAdvice {
                out_lookahead: Some(out),
                valid_until,
            }
        })),
        finish: Box::new(move |_| log.borrow().clone()),
    }
}

fn sharded_outage() -> Log {
    let plan = ShardPlan::connected(2, WAN_DELAY);
    let factories: Vec<_> = (0..2)
        .map(|s| {
            Box::new(move |h| outage_shard_factory(s, h))
                as Box<dyn FnOnce(ShardHandle<Cross>) -> ShardRun<Cross, Log> + Send>
        })
        .collect();
    let out = run_sharded(plan, factories);
    assert!(out[0].is_empty());
    out[1].clone()
}

#[test]
fn adaptive_lookahead_outage_run_matches_sequential() {
    let seq = sequential_outage();
    assert_eq!(seq.len(), MSGS as usize, "all messages recover eventually");
    // The outage interrupts the transfer stream: at least one delivery
    // lands after the link comes back, through the retransmission path.
    assert!(
        seq.iter().any(|e| e.0 > UP_NS),
        "the outage must actually delay traffic (deliveries: {seq:?})"
    );
    let par = sharded_outage();
    assert_eq!(
        par, seq,
        "adaptive-lookahead sharded run must stay byte-identical"
    );
}

#[test]
fn outgoing_cut_lookahead_tracks_fault_state() {
    let mut sim = Simulation::new(7);
    sim.block_on(async {
        let (topo, [a, ra, rb, _bb]) = build_topology();
        let net = Network::new(topo, VirtualClock::identity(), NetParams::default());
        let site_a = [a, ra];
        let group = move |n: NodeId| usize::from(!site_a.contains(&n));
        // Only the WAN hop crosses the cut, in both directions.
        assert_eq!(net.outgoing_cut_lookahead(group, 0), Some(WAN_DELAY));
        assert_eq!(net.outgoing_cut_lookahead(group, 1), Some(WAN_DELAY));
        let wan = net.topology().links_between(ra, rb);
        for l in &wan {
            net.set_link_down(*l, true);
        }
        // Down with nothing queued: the replica cannot export at all.
        assert_eq!(net.outgoing_cut_lookahead(group, 0), None);
        assert_eq!(net.outgoing_cut_lookahead(group, 1), None);
        for l in &wan {
            net.set_link_down(*l, false);
        }
        assert_eq!(net.outgoing_cut_lookahead(group, 0), Some(WAN_DELAY));
    });
}
