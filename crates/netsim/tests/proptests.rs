//! Property-based tests of the network simulator's guarantees.

use proptest::prelude::*;

use mgrid_desim::time::SimDuration;
use mgrid_desim::vclock::VirtualClock;
use mgrid_desim::{spawn, Simulation};
use mgrid_netsim::{LinkSpec, NetParams, Network, Payload, TopologyBuilder};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every reliably-sent message is delivered exactly once with its full
    /// byte count, regardless of sizes, and per-(sender, port) order holds.
    #[test]
    fn reliable_delivery_conserves_messages(
        sizes in prop::collection::vec(1u64..200_000, 1..12),
        queue_kb in 16u64..256,
    ) {
        let mut sim = Simulation::new(7);
        let n_msgs = sizes.len();
        let (total_sent, received) = sim.block_on(async move {
            let mut b = TopologyBuilder::new();
            let a = b.host("a");
            let r = b.router("r");
            let z = b.host("z");
            b.link(a, r, LinkSpec {
                bandwidth_bps: 50e6,
                delay: SimDuration::from_micros(100),
                queue_bytes: queue_kb * 1024,
            });
            b.link(r, z, LinkSpec {
                bandwidth_bps: 20e6,
                delay: SimDuration::from_micros(200),
                queue_bytes: queue_kb * 1024,
            });
            let net = Network::new(b.build(), VirtualClock::identity(), NetParams::default());
            let rx = net.endpoint(z).bind(9);
            let total: u64 = sizes.iter().sum();
            {
                let ep = net.endpoint(a);
                let sizes = sizes.clone();
                spawn(async move {
                    for (i, s) in sizes.into_iter().enumerate() {
                        ep.send(z, 9, 1, s, Payload::new(i)).await.unwrap();
                    }
                });
            }
            let mut got = Vec::new();
            for _ in 0..n_msgs {
                let m = rx.recv().await.unwrap();
                got.push((*m.payload.downcast::<usize>().unwrap(), m.size_bytes));
            }
            (total, got)
        });
        // Exactly once, in order, byte-complete.
        prop_assert_eq!(received.len(), n_msgs);
        let sum: u64 = received.iter().map(|(_, b)| *b).sum();
        prop_assert_eq!(sum, total_sent);
        for (i, (idx, _)) in received.iter().enumerate() {
            prop_assert_eq!(*idx, i, "out-of-order delivery");
        }
    }

    /// Goodput never exceeds the bottleneck link's raw bandwidth, at any
    /// emulation rate.
    #[test]
    fn goodput_bounded_by_bottleneck(
        bw_mbps in 5.0f64..200.0,
        size_kb in 64u64..1024,
        rate in 0.1f64..4.0,
    ) {
        let mut sim = Simulation::new(8);
        let (secs_virtual, bytes) = sim.block_on(async move {
            let mut b = TopologyBuilder::new();
            let a = b.host("a");
            let z = b.host("z");
            b.link(a, z, LinkSpec::new(bw_mbps * 1e6, SimDuration::from_micros(50)));
            let clock = VirtualClock::new(rate);
            let net = Network::new(b.build(), clock.clone(), NetParams::default());
            let rx = net.endpoint(z).bind(2);
            let bytes = size_kb * 1024;
            let t0 = mgrid_desim::now();
            {
                let ep = net.endpoint(a);
                spawn(async move {
                    ep.send(z, 2, 1, bytes, Payload::empty()).await.unwrap();
                });
            }
            rx.recv().await.unwrap();
            let phys = (mgrid_desim::now() - t0).as_secs_f64();
            (phys * rate, bytes)
        });
        let goodput_bps = bytes as f64 * 8.0 / secs_virtual;
        prop_assert!(
            goodput_bps <= bw_mbps * 1e6 * 1.001,
            "goodput {goodput_bps} exceeds raw {bw_mbps} Mb/s"
        );
    }

    /// One-way delivery time is never below the path's propagation delay.
    #[test]
    fn latency_at_least_propagation(
        delay_us in 1u64..5_000,
        size in 1u64..10_000,
    ) {
        let mut sim = Simulation::new(9);
        let (elapsed, floor) = sim.block_on(async move {
            let mut b = TopologyBuilder::new();
            let a = b.host("a");
            let z = b.host("z");
            b.link(a, z, LinkSpec::new(100e6, SimDuration::from_micros(delay_us)));
            let net = Network::new(b.build(), VirtualClock::identity(), NetParams::default());
            let rx = net.endpoint(z).bind(3);
            let t0 = mgrid_desim::now();
            {
                let ep = net.endpoint(a);
                spawn(async move {
                    ep.send(z, 3, 1, size, Payload::empty()).await.unwrap();
                });
            }
            rx.recv().await.unwrap();
            (
                (mgrid_desim::now() - t0).as_nanos(),
                SimDuration::from_micros(delay_us).as_nanos(),
            )
        });
        prop_assert!(elapsed >= floor, "delivered in {elapsed}ns < propagation {floor}ns");
    }
}
