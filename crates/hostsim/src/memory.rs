//! Virtual-host memory capacity enforcement (paper §3.2.1, Fig 5).
//!
//! Each virtual host carries a memory limit from its GIS record
//! (`MemorySize=...`). The MicroGrid enforces the limit when processes are
//! assigned to the virtual machine; allocations beyond it fail with an
//! out-of-memory error. The paper's microbenchmark observes that a process
//! can allocate about 1 KB less than the configured cap — per-process
//! bookkeeping overhead — which we model explicitly.

use std::cell::RefCell;
use std::rc::Rc;

use mgrid_desim::{obs, Event, FxHashMap};

/// Error returned when an allocation would exceed the virtual host's cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested by the failing allocation.
    pub requested: u64,
    /// Bytes still available under the cap.
    pub available: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of memory: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Per-process bookkeeping overhead charged at registration, matching the
/// ~1 KB shortfall the paper measures in Fig 5.
pub const PROCESS_OVERHEAD: u64 = 1024;

#[derive(Debug, Default)]
struct ProcUsage {
    used: u64,
    allocations: FxHashMap<u64, u64>,
    next_id: u64,
}

#[derive(Debug)]
struct MemState {
    limit: u64,
    used: u64,
    peak: u64,
    procs: FxHashMap<u64, ProcUsage>,
    next_proc: u64,
    /// Virtual-host label attached to emitted trace events.
    label: String,
}

impl MemState {
    fn note_alloc(&self, bytes: u64) {
        obs::count("mem.allocs", 1);
        obs::emit(|| Event::MemAlloc {
            host: self.label.clone(),
            bytes,
            in_use: self.used,
        });
    }

    fn note_deny(&self, requested: u64) {
        obs::count("mem.denials", 1);
        obs::emit(|| Event::MemDeny {
            host: self.label.clone(),
            requested,
            in_use: self.used,
            limit: self.limit,
        });
    }
}

/// Memory manager of one virtual host.
#[derive(Clone, Debug)]
pub struct MemoryManager {
    state: Rc<RefCell<MemState>>,
}

/// A process's view of its virtual host's memory.
#[derive(Clone, Debug)]
pub struct MemoryHandle {
    state: Rc<RefCell<MemState>>,
    proc_id: u64,
}

/// An allocation token; pass back to [`MemoryHandle::free`].
#[derive(Debug, PartialEq, Eq, Hash, Clone, Copy)]
pub struct AllocId(u64);

impl MemoryManager {
    /// Create a manager with the given capacity in bytes.
    pub fn new(limit: u64) -> Self {
        Self::labeled("vhost", limit)
    }

    /// Like [`MemoryManager::new`], but trace events emitted by this
    /// manager carry `label` as their host name.
    pub fn labeled(label: impl Into<String>, limit: u64) -> Self {
        MemoryManager {
            state: Rc::new(RefCell::new(MemState {
                limit,
                used: 0,
                peak: 0,
                procs: FxHashMap::default(),
                next_proc: 0,
                label: label.into(),
            })),
        }
    }

    /// Register a process on this virtual host, charging
    /// [`PROCESS_OVERHEAD`] bytes of bookkeeping.
    ///
    /// Fails if even the overhead does not fit.
    pub fn register_process(&self) -> Result<MemoryHandle, OutOfMemory> {
        let mut s = self.state.borrow_mut();
        if s.used + PROCESS_OVERHEAD > s.limit {
            s.note_deny(PROCESS_OVERHEAD);
            return Err(OutOfMemory {
                requested: PROCESS_OVERHEAD,
                available: s.limit - s.used,
            });
        }
        s.used += PROCESS_OVERHEAD;
        s.peak = s.peak.max(s.used);
        s.note_alloc(PROCESS_OVERHEAD);
        let id = s.next_proc;
        s.next_proc += 1;
        s.procs.insert(
            id,
            ProcUsage {
                used: PROCESS_OVERHEAD,
                ..ProcUsage::default()
            },
        );
        Ok(MemoryHandle {
            state: self.state.clone(),
            proc_id: id,
        })
    }

    /// Configured capacity in bytes.
    pub fn limit(&self) -> u64 {
        self.state.borrow().limit
    }

    /// Currently allocated bytes (including process overheads).
    pub fn used(&self) -> u64 {
        self.state.borrow().used
    }

    /// High-water mark of [`MemoryManager::used`].
    pub fn peak(&self) -> u64 {
        self.state.borrow().peak
    }
}

impl MemoryHandle {
    /// Allocate `bytes`; fails if the virtual host cap would be exceeded.
    pub fn alloc(&self, bytes: u64) -> Result<AllocId, OutOfMemory> {
        let mut s = self.state.borrow_mut();
        if s.used + bytes > s.limit {
            s.note_deny(bytes);
            return Err(OutOfMemory {
                requested: bytes,
                available: s.limit - s.used,
            });
        }
        s.used += bytes;
        s.peak = s.peak.max(s.used);
        s.note_alloc(bytes);
        let p = s.procs.get_mut(&self.proc_id).expect("process registered");
        p.used += bytes;
        let id = p.next_id;
        p.next_id += 1;
        p.allocations.insert(id, bytes);
        Ok(AllocId(id))
    }

    /// Free a prior allocation.
    ///
    /// # Panics
    /// Panics on a double free or foreign id.
    pub fn free(&self, id: AllocId) {
        let mut s = self.state.borrow_mut();
        let p = s.procs.get_mut(&self.proc_id).expect("process registered");
        let bytes = p
            .allocations
            .remove(&id.0)
            .expect("free of unknown allocation");
        p.used -= bytes;
        s.used -= bytes;
    }

    /// Bytes this process currently holds (including overhead).
    pub fn used(&self) -> u64 {
        self.state
            .borrow()
            .procs
            .get(&self.proc_id)
            .map(|p| p.used)
            .unwrap_or(0)
    }

    /// Release the process: frees all of its allocations and its overhead.
    pub fn release(self) {
        let mut s = self.state.borrow_mut();
        if let Some(p) = s.procs.remove(&self.proc_id) {
            s.used -= p.used;
        }
    }
}

/// Fig 5 probe: allocate `chunk`-byte blocks until out-of-memory; return
/// the total successfully allocated (excluding bookkeeping overhead).
pub fn probe_max_allocatable(limit: u64, chunk: u64) -> u64 {
    let mm = MemoryManager::new(limit);
    let Ok(h) = mm.register_process() else {
        return 0;
    };
    let mut total = 0;
    while h.alloc(chunk).is_ok() {
        total += chunk;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_within_limit_succeeds() {
        let mm = MemoryManager::new(10_000);
        let h = mm.register_process().unwrap();
        let id = h.alloc(4_000).unwrap();
        assert_eq!(mm.used(), 4_000 + PROCESS_OVERHEAD);
        h.free(id);
        assert_eq!(mm.used(), PROCESS_OVERHEAD);
    }

    #[test]
    fn alloc_beyond_limit_fails() {
        let mm = MemoryManager::new(2_048);
        let h = mm.register_process().unwrap();
        let err = h.alloc(2_000).unwrap_err();
        assert_eq!(err.requested, 2_000);
        assert_eq!(err.available, 1_024);
    }

    #[test]
    fn overhead_reduces_allocatable_by_about_1kb() {
        // The Fig 5 result: max allocatable ~= limit - 1KB, linear in limit.
        for limit_kb in [1u64, 16, 64, 256, 1024] {
            let limit = limit_kb * 1024;
            let max = probe_max_allocatable(limit, 64);
            assert_eq!(max, limit - PROCESS_OVERHEAD);
        }
    }

    #[test]
    fn two_processes_share_the_cap() {
        let mm = MemoryManager::new(10 * 1024);
        let a = mm.register_process().unwrap();
        let b = mm.register_process().unwrap();
        a.alloc(4 * 1024).unwrap();
        assert!(b.alloc(5 * 1024).is_err());
        b.alloc(3 * 1024).unwrap();
        assert_eq!(mm.used(), 7 * 1024 + 2 * PROCESS_OVERHEAD);
    }

    #[test]
    fn release_frees_everything() {
        let mm = MemoryManager::new(8 * 1024);
        let h = mm.register_process().unwrap();
        h.alloc(1_000).unwrap();
        h.alloc(2_000).unwrap();
        h.release();
        assert_eq!(mm.used(), 0);
    }

    #[test]
    fn peak_tracks_high_water() {
        let mm = MemoryManager::new(8 * 1024);
        let h = mm.register_process().unwrap();
        let id = h.alloc(5_000).unwrap();
        h.free(id);
        h.alloc(100).unwrap();
        assert_eq!(mm.peak(), 5_000 + PROCESS_OVERHEAD);
    }

    #[test]
    #[should_panic(expected = "free of unknown allocation")]
    fn double_free_panics() {
        let mm = MemoryManager::new(8 * 1024);
        let h = mm.register_process().unwrap();
        let id = h.alloc(100).unwrap();
        h.free(id);
        h.free(id);
    }

    #[test]
    fn registration_fails_when_full() {
        let mm = MemoryManager::new(1_500);
        let _a = mm.register_process().unwrap();
        assert!(mm.register_process().is_err());
    }
}
