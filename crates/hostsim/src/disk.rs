//! Disk resource model.
//!
//! The paper lists disks among the resources the MicroGrid must
//! virtualize (§2.2.1: "processing, memory, networks, disks, and any
//! other resources") and uses disk speed ratios in its Fig 15 discussion
//! ("slowing the processor and network simulations can be used to make a
//! slow disk seem much faster"). This module provides that resource: a
//! single-spindle disk with seek + rotational + transfer costs, a FIFO
//! request queue, and virtual-time scaling so a virtual disk of any speed
//! can be carried by the emulation.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use mgrid_desim::channel::{oneshot, OneshotSender};
use mgrid_desim::sync::Notify;
use mgrid_desim::time::SimDuration;
use mgrid_desim::vclock::VirtualClock;
use mgrid_desim::{spawn_daemon, SimRng};

/// Performance characteristics of a disk (virtual-time units).
#[derive(Clone, Debug)]
pub struct DiskSpec {
    /// Mean seek time.
    pub seek: SimDuration,
    /// Relative standard deviation of the seek (head position varies).
    pub seek_jitter: f64,
    /// Sustained transfer rate, bytes per second.
    pub transfer_bps: f64,
    /// Requests at or below this size skip the seek with this probability
    /// (sequential-access locality).
    pub sequential_hit: f64,
}

impl Default for DiskSpec {
    fn default() -> Self {
        // A 2000-era SCSI disk: ~8 ms seek, ~33 MB/s sustained.
        DiskSpec {
            seek: SimDuration::from_millis(8),
            seek_jitter: 0.25,
            transfer_bps: 33e6,
            sequential_hit: 0.5,
        }
    }
}

/// Kinds of disk requests.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DiskOp {
    /// Read `bytes`.
    Read,
    /// Write `bytes` (same cost model; write-back caching is not modeled).
    Write,
}

struct Request {
    op: DiskOp,
    bytes: u64,
    done: OneshotSender<()>,
}

struct DiskInner {
    spec: DiskSpec,
    queue: VecDeque<Request>,
    notify: Notify,
    rng: SimRng,
    busy: SimDuration,
    ops: u64,
    bytes: u64,
}

/// A single-spindle disk serving requests FIFO in virtual time.
#[derive(Clone)]
pub struct Disk {
    inner: Rc<RefCell<DiskInner>>,
    clock: VirtualClock,
}

impl Disk {
    /// Create a disk and start its service loop. Request timing is
    /// defined in virtual time and scheduled through `clock`.
    pub fn new(spec: DiskSpec, clock: VirtualClock, rng: SimRng) -> Disk {
        let disk = Disk {
            inner: Rc::new(RefCell::new(DiskInner {
                spec,
                queue: VecDeque::new(),
                notify: Notify::new(),
                rng,
                busy: SimDuration::ZERO,
                ops: 0,
                bytes: 0,
            })),
            clock,
        };
        let d = disk.clone();
        spawn_daemon(async move { d.service_loop().await });
        disk
    }

    /// Submit a request and wait for completion.
    pub async fn request(&self, op: DiskOp, bytes: u64) {
        let (tx, rx) = oneshot();
        {
            let mut inner = self.inner.borrow_mut();
            inner.queue.push_back(Request {
                op,
                bytes,
                done: tx,
            });
            inner.notify.notify_one();
        }
        let _ = rx.recv().await;
    }

    /// Convenience: read `bytes`.
    pub async fn read(&self, bytes: u64) {
        self.request(DiskOp::Read, bytes).await;
    }

    /// Convenience: write `bytes`.
    pub async fn write(&self, bytes: u64) {
        self.request(DiskOp::Write, bytes).await;
    }

    /// Completed operations.
    pub fn ops(&self) -> u64 {
        self.inner.borrow().ops
    }

    /// Bytes moved.
    pub fn bytes_moved(&self) -> u64 {
        self.inner.borrow().bytes
    }

    /// Accumulated busy time (virtual).
    pub fn busy_virtual(&self) -> SimDuration {
        self.inner.borrow().busy
    }

    async fn service_loop(self) {
        loop {
            let req = {
                let mut inner = self.inner.borrow_mut();
                inner.queue.pop_front()
            };
            let Some(req) = req else {
                let n = self.inner.borrow().notify.clone();
                n.notified().await;
                continue;
            };
            let service = {
                let mut inner = self.inner.borrow_mut();
                let spec = inner.spec.clone();
                let sequential = inner.rng.chance(spec.sequential_hit);
                let seek = if sequential {
                    SimDuration::ZERO
                } else {
                    let z = inner.rng.normal();
                    spec.seek.mul_f64((1.0 + spec.seek_jitter * z).max(0.1))
                };
                let transfer = SimDuration::from_secs_f64(req.bytes as f64 / spec.transfer_bps);
                let total = seek + transfer;
                inner.busy += total;
                inner.ops += 1;
                inner.bytes += req.bytes;
                total
            };
            mgrid_desim::vclock::sleep_virtual(&self.clock, service).await;
            let _ = req.op; // reads and writes share the cost model
            req.done.send(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgrid_desim::{now, spawn, SimTime, Simulation};

    fn quiet_spec() -> DiskSpec {
        DiskSpec {
            seek: SimDuration::from_millis(8),
            seek_jitter: 0.0,
            transfer_bps: 32e6,
            sequential_hit: 0.0,
        }
    }

    #[test]
    fn single_request_takes_seek_plus_transfer() {
        let mut sim = Simulation::new(1);
        sim.block_on(async {
            let disk = Disk::new(quiet_spec(), VirtualClock::identity(), SimRng::new(1));
            let t0 = now();
            disk.read(3_200_000).await; // 100 ms transfer at 32 MB/s
            let elapsed = (now() - t0).as_secs_f64();
            assert!((elapsed - 0.108).abs() < 1e-3, "elapsed {elapsed}");
            assert_eq!(disk.ops(), 1);
            assert_eq!(disk.bytes_moved(), 3_200_000);
        });
    }

    #[test]
    fn requests_are_serialized_fifo() {
        let mut sim = Simulation::new(2);
        sim.block_on(async {
            let disk = Disk::new(quiet_spec(), VirtualClock::identity(), SimRng::new(2));
            let t0 = now();
            let a = {
                let d = disk.clone();
                spawn(async move {
                    d.read(320_000).await; // 10 ms + 8 ms seek
                    now()
                })
            };
            let b = {
                let d = disk.clone();
                spawn(async move {
                    d.write(320_000).await;
                    now()
                })
            };
            let ta = a.await;
            let tb = b.await;
            // Second finishes ~18 ms after the first (one spindle).
            let gap = tb.saturating_since(ta).as_secs_f64();
            assert!((gap - 0.018).abs() < 2e-3, "gap {gap}");
            assert!((ta.saturating_since(t0).as_secs_f64() - 0.018).abs() < 2e-3);
        });
    }

    #[test]
    fn virtual_clock_scales_disk_time() {
        // Rate 2.0: a virtual 8 ms seek takes 4 ms physical — "slowing the
        // simulation makes a slow disk seem much faster" inverted.
        let mut sim = Simulation::new(3);
        sim.block_on(async {
            let clock = VirtualClock::new(2.0);
            let disk = Disk::new(quiet_spec(), clock, SimRng::new(3));
            let t0 = now();
            disk.read(0).await;
            let phys = (now() - t0).as_secs_f64();
            assert!((phys - 0.004).abs() < 5e-4, "physical {phys}");
        });
    }

    #[test]
    fn sequential_hits_skip_seeks() {
        let mut sim = Simulation::new(4);
        sim.block_on(async {
            let spec = DiskSpec {
                sequential_hit: 1.0,
                ..quiet_spec()
            };
            let disk = Disk::new(spec, VirtualClock::identity(), SimRng::new(4));
            let t0 = now();
            for _ in 0..10 {
                disk.read(32_000).await; // 1 ms transfer, no seek
            }
            let elapsed = (now() - t0).as_secs_f64();
            assert!((elapsed - 0.010).abs() < 1e-3, "elapsed {elapsed}");
        });
    }

    #[test]
    fn busy_time_accumulates() {
        let mut sim = Simulation::new(5);
        sim.block_on(async {
            let disk = Disk::new(quiet_spec(), VirtualClock::identity(), SimRng::new(5));
            disk.read(3_200_000).await;
            disk.write(3_200_000).await;
            let busy = disk.busy_virtual().as_secs_f64();
            assert!((busy - 0.216).abs() < 2e-3, "busy {busy}");
        });
    }

    #[test]
    fn runs_to_quiescence_with_idle_disk() {
        let mut sim = Simulation::new(6);
        sim.spawn(async {
            let _disk = Disk::new(quiet_spec(), VirtualClock::identity(), SimRng::new(6));
        });
        // The idle service daemon must not keep the simulation alive.
        let t = sim.run_until(SimTime::from_secs_f64(1.0));
        assert!(t <= SimTime::from_secs_f64(1.0));
    }
}
