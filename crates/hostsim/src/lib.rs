//! # mgrid-hostsim — compute-resource simulation for MicroGrid-rs
//!
//! Models the paper's computing-resource layer (§2.4.1 and §3.2):
//!
//! * [`kernel`] — a Linux-2.2-style epoch-credit time-sharing OS scheduler
//!   on one physical CPU, the substrate whose policy produces the Fig 6/7
//!   competition effects.
//! * [`scheduler`] — the MicroGrid CPU scheduler daemon (Fig 4 algorithm):
//!   SIGCONT/SIGSTOP quanta, wall-time accounting, round-robin rotation.
//! * [`memory`] — per-virtual-host memory caps with the ~1 KB per-process
//!   overhead measured in Fig 5.
//! * [`competitors`] — the CPU-hog and IO-flush interference loads of the
//!   processor microbenchmarks.
//! * [`host`] — physical hosts, virtual hosts (managed or direct), and
//!   Grid processes with `compute`/memory APIs.
//! * [`spec`] — serde-serializable host specifications.

#![warn(missing_docs)]

pub mod competitors;
pub mod disk;
pub mod host;
pub mod kernel;
pub mod memory;
pub mod scheduler;
pub mod spec;

pub use disk::{Disk, DiskOp, DiskSpec};
pub use host::{GridProcess, PhysicalHost, VirtualHost};
pub use kernel::{OsKernel, OsParams, Pid, ProcessHandle};
pub use memory::{MemoryHandle, MemoryManager, OutOfMemory};
pub use scheduler::{JobId, MGridScheduler, SchedulerParams};
pub use spec::{PhysicalHostSpec, VirtualHostSpec};
