//! Host specifications (serde-serializable configuration data).
//!
//! Speeds are in "Mops" — millions of abstract operations per second, the
//! unit the workload cost models are calibrated in. Only ratios between
//! virtual and physical speeds matter for the MicroGrid's fidelity
//! experiments, mirroring the paper's use of MHz/MIPS ratings.

use serde::{Deserialize, Serialize};

/// Specification of a physical (emulation-cluster) host.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct PhysicalHostSpec {
    /// Host name, e.g. `"csag-226-67.ucsd.edu"`.
    pub name: String,
    /// CPU speed in millions of abstract operations per second.
    pub speed_mops: f64,
    /// Physical memory in bytes.
    pub memory_bytes: u64,
}

impl PhysicalHostSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, speed_mops: f64, memory_bytes: u64) -> Self {
        PhysicalHostSpec {
            name: name.into(),
            speed_mops,
            memory_bytes,
        }
    }
}

/// Specification of a virtual Grid host (the GIS `CpuSpeed`/`MemorySize`
/// attributes of Fig 3).
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct VirtualHostSpec {
    /// Virtual host name, e.g. `"vm.ucsd.edu"`.
    pub name: String,
    /// Virtual CPU speed in Mops.
    pub speed_mops: f64,
    /// Virtual memory capacity in bytes.
    pub memory_bytes: u64,
}

impl VirtualHostSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, speed_mops: f64, memory_bytes: u64) -> Self {
        VirtualHostSpec {
            name: name.into(),
            speed_mops,
            memory_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_roundtrip_through_json() {
        let p = PhysicalHostSpec::new("alpha-0", 533.0, 1 << 30);
        let json = serde_json::to_string(&p).unwrap();
        let back: PhysicalHostSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);

        let v = VirtualHostSpec::new("vm.ucsd.edu", 100.0, 128 << 20);
        let json = serde_json::to_string(&v).unwrap();
        let back: VirtualHostSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
