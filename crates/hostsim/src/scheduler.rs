//! The MicroGrid CPU scheduler daemon (paper §2.4.1, Fig 4).
//!
//! A user-level daemon allocates the local physical CPU to MicroGrid jobs
//! so that each receives exactly its configured fraction. The algorithm is
//! the paper's Fig 4: for each job, while
//! `myUsedTime <= cpu_Fraction * presentTime`, grant a quantum —
//! SIGCONT the job, sleep one quantum, SIGSTOP it — and charge the *wall*
//! time of the grant to `myUsedTime`. Grants rotate round-robin.
//!
//! Two properties of the real system fall out of this model:
//!
//! * The daemon itself consumes CPU and contends under the native OS
//!   scheduler, capping deliverable fractions below 100 % (Fig 6's ceiling)
//!   and jittering quantum lengths under competition (Fig 7).
//! * Because grants are charged in wall time, a job that blocks mid-quantum
//!   (e.g. on a message) still pays for the full quantum and then waits for
//!   its next eligibility — the quantum-granularity modeling error that
//!   Fig 11 reduces by shrinking the quantum.

use std::cell::RefCell;
use std::rc::Rc;

use mgrid_desim::sync::Notify;
use mgrid_desim::time::{SimDuration, SimTime};
use mgrid_desim::{now, obs, spawn_daemon, Category, Event};

use crate::kernel::{OsKernel, ProcessHandle};

/// Identifier of a job managed by the scheduler daemon.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct JobId(usize);

/// Tunables of the scheduler daemon.
#[derive(Clone, Debug)]
pub struct SchedulerParams {
    /// Quantum granted per rotation (paper default: 10 ms, the Linux
    /// timesharing quantum; Fig 11 explores 2.5–30 ms).
    pub quantum: SimDuration,
    /// Daemon bookkeeping CPU consumed around each grant (signal delivery,
    /// `gettimeofday`, accounting). Bounds the deliverable fraction.
    pub grant_overhead: SimDuration,
    /// Floor for the daemon's idle wait when no job is eligible.
    pub min_wait: SimDuration,
    /// Wakeup-latency noise: after its quantum sleep expires, the daemon
    /// is rescheduled with a delay of |N(0, base + per_runnable * k)| where
    /// k counts other runnable processes — timer granularity when idle,
    /// run-queue latency under load (the paper's Fig 7 spread).
    pub wakeup_jitter_base: SimDuration,
    /// Additional jitter standard deviation per runnable competitor.
    pub wakeup_jitter_per_runnable: SimDuration,
}

impl Default for SchedulerParams {
    fn default() -> Self {
        SchedulerParams {
            quantum: SimDuration::from_millis(10),
            grant_overhead: SimDuration::from_micros(25),
            min_wait: SimDuration::from_micros(200),
            wakeup_jitter_base: SimDuration::from_micros(20),
            wakeup_jitter_per_runnable: SimDuration::from_micros(110),
        }
    }
}

struct Job {
    proc: ProcessHandle,
    fraction: f64,
    used: SimDuration,
    started: SimTime,
    /// Wall lengths of granted quanta, recorded when enabled.
    grants: Vec<SimDuration>,
    record_grants: bool,
    live: bool,
}

struct SchedInner {
    params: SchedulerParams,
    jobs: Vec<Job>,
    cursor: usize,
    wake: Notify,
    total_grants: u64,
    /// Host label attached to emitted trace events.
    label: String,
}

/// The scheduler daemon of one physical host.
#[derive(Clone)]
pub struct MGridScheduler {
    inner: Rc<RefCell<SchedInner>>,
    daemon: ProcessHandle,
    kernel: OsKernel,
}

impl MGridScheduler {
    /// Create the daemon on `kernel` and start its scheduling loop.
    pub fn start(kernel: &OsKernel, params: SchedulerParams) -> Self {
        Self::start_labeled(kernel, params, "host")
    }

    /// Like [`MGridScheduler::start`], but trace events emitted by this
    /// daemon carry `label` as their host name.
    pub fn start_labeled(kernel: &OsKernel, params: SchedulerParams, label: &str) -> Self {
        let daemon = kernel.spawn_process("mgrid-schedd");
        let sched = MGridScheduler {
            inner: Rc::new(RefCell::new(SchedInner {
                params,
                jobs: Vec::new(),
                cursor: 0,
                wake: Notify::new(),
                total_grants: 0,
                label: label.to_string(),
            })),
            daemon,
            kernel: kernel.clone(),
        };
        let s = sched.clone();
        spawn_daemon(async move { s.run().await });
        sched
    }

    /// Place `proc` under MicroGrid control with the given CPU fraction.
    /// The process is immediately SIGSTOPped; it only runs during granted
    /// quanta.
    ///
    /// # Panics
    /// Panics if `fraction` is not in `(0, 1]`.
    pub fn add_job(&self, proc: ProcessHandle, fraction: f64) -> JobId {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "CPU fraction must be in (0,1], got {fraction}"
        );
        proc.sigstop();
        let mut inner = self.inner.borrow_mut();
        inner.jobs.push(Job {
            proc,
            fraction,
            used: SimDuration::ZERO,
            started: now(),
            grants: Vec::new(),
            record_grants: false,
            live: true,
        });
        let id = JobId(inner.jobs.len() - 1);
        inner.wake.notify_one();
        id
    }

    /// Release a job from MicroGrid control (SIGCONT and stop pacing it).
    pub fn remove_job(&self, id: JobId) {
        let mut inner = self.inner.borrow_mut();
        let job = &mut inner.jobs[id.0];
        job.live = false;
        job.proc.sigcont();
    }

    /// Change a job's CPU fraction (used when processes join or leave a
    /// virtual host and the host's fraction is re-divided).
    pub fn set_fraction(&self, id: JobId, fraction: f64) {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "CPU fraction must be in (0,1], got {fraction}"
        );
        let mut inner = self.inner.borrow_mut();
        let job = &mut inner.jobs[id.0];
        // Re-baseline the accounting origin at the switch instant instead
        // of zeroing usage: a job that already overran its old entitlement
        // carries the overrun forward as debt (paid back at the new
        // fraction), while accrued-but-unused entitlement is forfeited —
        // never banked into a CPU burst.
        let elapsed = now().saturating_since(job.started);
        let entitled = SimDuration::from_secs_f64(job.fraction * elapsed.as_secs_f64());
        job.used = job.used.saturating_sub(entitled);
        job.started = now();
        job.fraction = fraction;
    }

    /// The configured quantum.
    pub fn quantum(&self) -> SimDuration {
        self.inner.borrow().params.quantum
    }

    /// Enable recording of granted-quantum wall lengths for a job (Fig 7).
    pub fn record_grants(&self, id: JobId, on: bool) {
        let mut inner = self.inner.borrow_mut();
        let job = &mut inner.jobs[id.0];
        job.record_grants = on;
        if !on {
            job.grants.clear();
        }
    }

    /// Recorded quantum lengths for a job.
    pub fn grants(&self, id: JobId) -> Vec<SimDuration> {
        self.inner.borrow().jobs[id.0].grants.clone()
    }

    /// Wall time charged to a job so far.
    pub fn used(&self, id: JobId) -> SimDuration {
        self.inner.borrow().jobs[id.0].used
    }

    /// Total quanta granted across all jobs.
    pub fn total_grants(&self) -> u64 {
        self.inner.borrow().total_grants
    }

    /// Fig 4's eligibility test: grant while `used <= fraction * elapsed`.
    fn next_eligible(&self) -> Option<usize> {
        let mut inner = self.inner.borrow_mut();
        let n = inner.jobs.len();
        if n == 0 {
            return None;
        }
        let t = now();
        let start = inner.cursor;
        for off in 0..n {
            let idx = (start + off) % n;
            let job = &inner.jobs[idx];
            if !job.live {
                continue;
            }
            let elapsed = t.saturating_since(job.started);
            if job.used.as_secs_f64() <= job.fraction * elapsed.as_secs_f64() {
                inner.cursor = (idx + 1) % n;
                return Some(idx);
            }
        }
        None
    }

    /// Wall time until the earliest job becomes eligible again.
    fn time_to_next_eligibility(&self) -> Option<SimDuration> {
        let inner = self.inner.borrow();
        let t = now();
        inner
            .jobs
            .iter()
            .filter(|j| j.live)
            .map(|j| {
                let elapsed = t.saturating_since(j.started).as_secs_f64();
                let wait = j.used.as_secs_f64() / j.fraction - elapsed;
                SimDuration::from_secs_f64(wait.max(0.0))
            })
            .min()
    }

    async fn run(self) {
        // Desynchronize: each daemon starts at a random phase within one
        // quantum. Real schedulers on different hosts are never aligned;
        // without this, deterministic lockstep across hosts would mask the
        // quantum-granularity latency the paper measures in Fig 11.
        let offset = {
            let q = self.inner.borrow().params.quantum.as_nanos();
            mgrid_desim::with_rng(|r| r.below(q.max(1)))
        };
        self.daemon.os_sleep(SimDuration::from_nanos(offset)).await;
        // Per-quantum metrics: resolve the registry names once, outside
        // the grant loop.
        let m_quanta = obs::counter_handle("sched.quanta");
        let m_quantum_wall = obs::histogram_handle(
            "sched.quantum_wall_ns",
            mgrid_desim::metrics::TIME_BOUNDS_NS,
        );
        // Span attributes interned once per daemon: track (host label)
        // and detail never change, and each grant's lane is the
        // process's shared name — a quantum span allocates nothing.
        let span_track: mgrid_desim::SpanStr = self.inner.borrow().label.as_str().into();
        let span_empty: mgrid_desim::SpanStr = "".into();
        loop {
            let Some(idx) = self.next_eligible() else {
                let (wait, wake) = {
                    let inner = self.inner.borrow();
                    (self.time_to_next_eligibility(), inner.wake.clone())
                };
                match wait {
                    Some(w) => {
                        let min_wait = self.inner.borrow().params.min_wait;
                        self.daemon.os_sleep(w.max(min_wait)).await;
                    }
                    None => wake.notified().await,
                }
                continue;
            };
            let (proc, quantum, overhead) = {
                let inner = self.inner.borrow();
                let job = &inner.jobs[idx];
                (
                    job.proc.clone(),
                    inner.params.quantum,
                    inner.params.grant_overhead,
                )
            };
            // Daemon bookkeeping before the grant: contends for CPU under
            // the native scheduler like the real daemon does.
            self.daemon.run_cpu(overhead).await;
            let t0 = now();
            obs::emit(|| Event::QuantumGrant {
                host: self.inner.borrow().label.clone(),
                job: proc.name(),
            });
            // Causal span covering the whole grant (quantum + wakeup
            // jitter): the unit of virtual CPU attribution in the
            // profiler, one slice per grant on the job's Perfetto lane.
            let span = obs::span_begin(Category::Sched, "quantum", || {
                (span_track.clone(), proc.name_shared(), span_empty.clone())
            });
            proc.sigcont();
            self.daemon.os_sleep(quantum).await;
            // Wakeup latency: the daemon's sleep expiry is a timer event;
            // getting back on the CPU takes longer when the run queue is
            // busy. The granted process keeps running meanwhile.
            let jitter = {
                let inner = self.inner.borrow();
                // Everyone runnable except the granted job itself delays
                // the daemon's trip back onto the CPU.
                let others = self.kernel.runnable_count_except(proc.pid());
                let std = inner.params.wakeup_jitter_base.as_secs_f64()
                    + inner.params.wakeup_jitter_per_runnable.as_secs_f64() * others as f64;
                let z = mgrid_desim::with_rng(|r| r.normal()).abs();
                SimDuration::from_secs_f64(std * z)
            };
            if !jitter.is_zero() {
                self.daemon.os_sleep(jitter).await;
            }
            proc.sigstop();
            obs::span_end(span);
            self.daemon.run_cpu(overhead).await;
            let wall = now() - t0;
            m_quanta.add(1);
            m_quantum_wall.observe(wall.as_nanos());
            obs::emit(|| Event::QuantumPreempt {
                host: self.inner.borrow().label.clone(),
                job: proc.name(),
                wall_ns: wall.as_nanos(),
            });
            let mut inner = self.inner.borrow_mut();
            inner.total_grants += 1;
            let job = &mut inner.jobs[idx];
            // Fig 4: myUsedTime += (stopTime - startTime) — wall time, not
            // CPU time actually received.
            job.used += wall;
            if job.record_grants {
                job.grants.push(wall);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::OsParams;
    use mgrid_desim::{spawn, SimRng, SimTime, Simulation};

    fn quiet_kernel() -> OsKernel {
        OsKernel::new(
            OsParams {
                timer_noise: 0.0,
                context_switch: SimDuration::ZERO,
                ..OsParams::default()
            },
            SimRng::new(1),
        )
    }

    /// Run a CPU-bound reference job at `fraction` for `horizon` and return
    /// the delivered CPU fraction.
    fn delivered_fraction(fraction: f64, horizon: SimDuration) -> f64 {
        let mut sim = Simulation::new(3);
        let out = Rc::new(std::cell::Cell::new(0.0f64));
        let out2 = out.clone();
        sim.spawn(async move {
            let k = quiet_kernel();
            let sched = MGridScheduler::start(&k, SchedulerParams::default());
            let p = k.spawn_process("ref");
            let _job = sched.add_job(p.clone(), fraction);
            {
                let p = p.clone();
                spawn(async move {
                    // More CPU demand than the horizon allows.
                    p.run_cpu(SimDuration::from_secs(3600)).await;
                });
            }
            mgrid_desim::sleep(horizon).await;
            out2.set(p.cpu_used().as_secs_f64() / horizon.as_secs_f64());
        });
        sim.run_until(SimTime::ZERO + horizon + SimDuration::from_secs(1));
        out.get()
    }

    #[test]
    fn low_fraction_is_delivered_accurately() {
        let got = delivered_fraction(0.25, SimDuration::from_secs(10));
        assert!((got - 0.25).abs() < 0.02, "delivered {got}");
    }

    #[test]
    fn high_fraction_hits_overhead_ceiling() {
        let got = delivered_fraction(1.0, SimDuration::from_secs(10));
        assert!(got > 0.90, "delivered {got}");
        assert!(got <= 1.0, "delivered {got}");
    }

    #[test]
    fn used_time_tracks_fraction() {
        let mut sim = Simulation::new(4);
        sim.spawn(async {
            let k = quiet_kernel();
            let sched = MGridScheduler::start(&k, SchedulerParams::default());
            let p = k.spawn_process("idle");
            let job = sched.add_job(p, 0.5);
            mgrid_desim::sleep(SimDuration::from_secs(2)).await;
            // An idle job is still charged wall quanta (Fig 4 semantics).
            let used = sched.used(job).as_secs_f64();
            assert!((used - 1.0).abs() < 0.05, "used {used}");
        });
        sim.run_until(SimTime::from_secs_f64(3.0));
    }

    #[test]
    fn grants_are_quantum_sized_without_competition() {
        let mut sim = Simulation::new(5);
        sim.spawn(async {
            let k = quiet_kernel();
            let sched = MGridScheduler::start(&k, SchedulerParams::default());
            let p = k.spawn_process("sleepy");
            let job = sched.add_job(p, 0.9);
            sched.record_grants(job, true);
            mgrid_desim::sleep(SimDuration::from_secs(2)).await;
            let grants = sched.grants(job);
            assert!(grants.len() > 100, "got {} grants", grants.len());
            let mean = grants.iter().map(|g| g.as_secs_f64()).sum::<f64>() / grants.len() as f64;
            let q = 0.010;
            assert!((mean - q).abs() / q < 0.05, "mean grant {mean}");
        });
        sim.run_until(SimTime::from_secs_f64(3.0));
    }

    #[test]
    fn two_jobs_share_by_fraction() {
        let mut sim = Simulation::new(6);
        sim.spawn(async {
            let k = quiet_kernel();
            let sched = MGridScheduler::start(&k, SchedulerParams::default());
            let a = k.spawn_process("a");
            let b = k.spawn_process("b");
            sched.add_job(a.clone(), 0.6);
            sched.add_job(b.clone(), 0.2);
            for p in [a.clone(), b.clone()] {
                spawn(async move {
                    p.run_cpu(SimDuration::from_secs(3600)).await;
                });
            }
            mgrid_desim::sleep(SimDuration::from_secs(10)).await;
            let fa = a.cpu_used().as_secs_f64() / 10.0;
            let fb = b.cpu_used().as_secs_f64() / 10.0;
            assert!((fa - 0.6).abs() < 0.05, "a delivered {fa}");
            assert!((fb - 0.2).abs() < 0.03, "b delivered {fb}");
        });
        sim.run_until(SimTime::from_secs_f64(11.0));
    }

    #[test]
    fn fraction_churn_does_not_grant_bursts() {
        // Regression: set_fraction used to zero the `used` accounting, so
        // a job that had just consumed a quantum became eligible again
        // immediately. The daemon re-checks eligibility on every rotation,
        // so whenever a competitor keeps it awake, an overrunning job could
        // collect one fresh quantum per churn — several times its 5% share
        // here. The fix re-baselines the elapsed-time origin and carries
        // the overrun as debt, so churn must not change the delivered
        // fraction.
        let mut sim = Simulation::new(8);
        let out = Rc::new(std::cell::Cell::new(0.0f64));
        let out2 = out.clone();
        sim.spawn(async move {
            let k = quiet_kernel();
            let sched = MGridScheduler::start(&k, SchedulerParams::default());
            let p = k.spawn_process("churned");
            let job = sched.add_job(p.clone(), 0.05);
            // A busy competitor keeps the daemon rotating every quantum, so
            // it observes the churned job's accounting right after each
            // set_fraction call — the condition under which the old zeroing
            // bug handed out bursts.
            let rival = k.spawn_process("rival");
            sched.add_job(rival.clone(), 0.5);
            for p in [p.clone(), rival] {
                spawn(async move {
                    p.run_cpu(SimDuration::from_secs(3600)).await;
                });
            }
            let horizon = SimDuration::from_secs(4);
            let step = SimDuration::from_millis(50);
            let mut t = SimDuration::ZERO;
            while t < horizon {
                mgrid_desim::sleep(step).await;
                t += step;
                // Re-applying the same fraction must be a no-op for the
                // long-run share.
                sched.set_fraction(job, 0.05);
            }
            out2.set(p.cpu_used().as_secs_f64() / horizon.as_secs_f64());
        });
        sim.run_until(SimTime::from_secs_f64(5.0));
        let got = out.get();
        assert!(got < 0.09, "churn must not inflate the 5% share, got {got}");
        assert!(got > 0.02, "job must still make progress, got {got}");
    }

    #[test]
    fn removed_job_runs_freely() {
        let mut sim = Simulation::new(7);
        sim.spawn(async {
            let k = quiet_kernel();
            let sched = MGridScheduler::start(&k, SchedulerParams::default());
            let p = k.spawn_process("freed");
            let job = sched.add_job(p.clone(), 0.1);
            sched.remove_job(job);
            let start = now();
            p.run_cpu(SimDuration::from_millis(100)).await;
            let wall = (now() - start).as_secs_f64();
            // Free of pacing: finishes in ~100ms, not ~1s.
            assert!(wall < 0.2, "wall {wall}");
        });
        sim.run_until(SimTime::from_secs_f64(5.0));
    }
}
