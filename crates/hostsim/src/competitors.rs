//! Competitor workloads for the processor microbenchmarks (paper §3.2.2).
//!
//! Fig 6/7 run the MicroGrid scheduler against two interference patterns on
//! the same physical CPU:
//!
//! * **CPU competition** — "a computationally intense process … does
//!   floating-point divisions continuously": an unbounded CPU hog.
//! * **IO competition** — "continuously flushes a 1 MB buffer to disk":
//!   short CPU bursts to fill the buffer, then a blocking write.

use std::cell::Cell;
use std::rc::Rc;

use mgrid_desim::time::SimDuration;
use mgrid_desim::{spawn_daemon, SimRng};

use crate::kernel::{OsKernel, ProcessHandle};

/// Handle to a running competitor; dropping it does *not* stop the load —
/// call [`Competitor::stop`].
pub struct Competitor {
    stop: Rc<Cell<bool>>,
    proc: ProcessHandle,
}

impl Competitor {
    /// Ask the competitor loop to exit at its next iteration boundary.
    pub fn stop(&self) {
        self.stop.set(true);
    }

    /// The competitor's OS process (for accounting).
    pub fn process(&self) -> &ProcessHandle {
        &self.proc
    }
}

/// Parameters of the IO-intensive competitor.
#[derive(Clone, Debug)]
pub struct IoCompetitorParams {
    /// CPU burst to fill/flush the buffer (memcpy + syscall path).
    pub cpu_burst: SimDuration,
    /// Mean blocking time of the disk write.
    pub io_wait: SimDuration,
    /// Relative standard deviation of the disk-write time.
    pub io_jitter: f64,
}

impl Default for IoCompetitorParams {
    fn default() -> Self {
        IoCompetitorParams {
            // 1 MB buffer: ~1.5 ms of memcpy/syscall CPU, ~30 ms on a
            // 2000-era disk (~33 MB/s sequential).
            cpu_burst: SimDuration::from_micros(1_500),
            io_wait: SimDuration::from_millis(30),
            io_jitter: 0.2,
        }
    }
}

/// Start a CPU-bound competitor: spins forever in large CPU requests.
pub fn spawn_cpu_hog(kernel: &OsKernel) -> Competitor {
    let proc = kernel.spawn_process("cpu-hog");
    let stop = Rc::new(Cell::new(false));
    let p = proc.clone();
    let s = stop.clone();
    spawn_daemon(async move {
        while !s.get() {
            p.run_cpu(SimDuration::from_millis(100)).await;
        }
        p.exit();
    });
    Competitor { stop, proc }
}

/// Start an IO-bound competitor: burst of CPU, then a blocking disk write.
pub fn spawn_io_competitor(
    kernel: &OsKernel,
    params: IoCompetitorParams,
    mut rng: SimRng,
) -> Competitor {
    let proc = kernel.spawn_process("io-hog");
    let stop = Rc::new(Cell::new(false));
    let p = proc.clone();
    let s = stop.clone();
    spawn_daemon(async move {
        while !s.get() {
            p.run_cpu(params.cpu_burst).await;
            let jitter = (1.0 + params.io_jitter * rng.normal()).max(0.1);
            p.os_sleep(params.io_wait.mul_f64(jitter)).await;
        }
        p.exit();
    });
    Competitor { stop, proc }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::OsParams;
    use mgrid_desim::{SimTime, Simulation};

    #[test]
    fn cpu_hog_consumes_whole_cpu_alone() {
        let mut sim = Simulation::new(1);
        sim.spawn(async {
            let k = OsKernel::new(OsParams::default(), SimRng::new(1));
            let hog = spawn_cpu_hog(&k);
            mgrid_desim::sleep(SimDuration::from_secs(2)).await;
            let used = hog.process().cpu_used().as_secs_f64();
            assert!(used > 1.9, "hog used {used}");
        });
        sim.run_until(SimTime::from_secs_f64(3.0));
    }

    #[test]
    fn io_competitor_uses_little_cpu() {
        let mut sim = Simulation::new(2);
        sim.spawn(async {
            let k = OsKernel::new(OsParams::default(), SimRng::new(2));
            let io = spawn_io_competitor(&k, IoCompetitorParams::default(), SimRng::new(3));
            mgrid_desim::sleep(SimDuration::from_secs(2)).await;
            let used = io.process().cpu_used().as_secs_f64();
            // ~1.5ms CPU per ~31.5ms cycle: roughly 5% of the CPU.
            assert!(used > 0.02 && used < 0.3, "io competitor used {used}");
        });
        sim.run_until(SimTime::from_secs_f64(3.0));
    }

    #[test]
    fn two_hogs_split_the_cpu() {
        let mut sim = Simulation::new(3);
        sim.spawn(async {
            let k = OsKernel::new(OsParams::default(), SimRng::new(4));
            let a = spawn_cpu_hog(&k);
            let b = spawn_cpu_hog(&k);
            mgrid_desim::sleep(SimDuration::from_secs(4)).await;
            let ua = a.process().cpu_used().as_secs_f64();
            let ub = b.process().cpu_used().as_secs_f64();
            assert!((ua - 2.0).abs() < 0.2, "a used {ua}");
            assert!((ub - 2.0).abs() < 0.2, "b used {ub}");
        });
        sim.run_until(SimTime::from_secs_f64(5.0));
    }

    #[test]
    fn stopped_competitor_exits() {
        let mut sim = Simulation::new(4);
        sim.spawn(async {
            let k = OsKernel::new(OsParams::default(), SimRng::new(5));
            let hog = spawn_cpu_hog(&k);
            mgrid_desim::sleep(SimDuration::from_millis(250)).await;
            hog.stop();
            mgrid_desim::sleep(SimDuration::from_millis(250)).await;
            assert_eq!(k.process_count(), 0);
        });
        sim.run_until(SimTime::from_secs_f64(1.0));
    }
}
