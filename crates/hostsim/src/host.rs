//! Physical hosts, virtual hosts, and Grid processes.
//!
//! A [`PhysicalHost`] bundles one OS kernel model with an optional
//! MicroGrid scheduler daemon. Virtual hosts map onto it in one of two
//! modes, mirroring the paper's two experimental conditions:
//!
//! * **Managed** ([`PhysicalHost::map_virtual`]): the virtual host receives
//!   CPU fraction `f = virtual_speed * rate / physical_speed`, enforced by
//!   the scheduler daemon; the fraction is re-divided across the virtual
//!   host's processes as they come and go (paper §2.4.1).
//! * **Direct** ([`PhysicalHost::as_direct_virtual`]): the virtual host
//!   *is* the physical host — the "physical grid" baseline runs of
//!   Figs 10/11/16/17.

use std::cell::RefCell;
use std::rc::{Rc, Weak};

use mgrid_desim::time::SimDuration;
use mgrid_desim::{obs, SimRng};

use crate::kernel::{OsKernel, OsParams, ProcessHandle};
use crate::memory::{MemoryHandle, MemoryManager, OutOfMemory};
use crate::scheduler::{JobId, MGridScheduler, SchedulerParams};
use crate::spec::{PhysicalHostSpec, VirtualHostSpec};

struct PhysInner {
    spec: PhysicalHostSpec,
    kernel: OsKernel,
    sched_params: SchedulerParams,
    sched: RefCell<Option<MGridScheduler>>,
    allocated_fraction: RefCell<f64>,
}

/// A physical emulation host: one CPU, one OS kernel, at most one
/// MicroGrid scheduler daemon.
#[derive(Clone)]
pub struct PhysicalHost {
    inner: Rc<PhysInner>,
}

impl PhysicalHost {
    /// Create a physical host.
    pub fn new(
        spec: PhysicalHostSpec,
        os: OsParams,
        sched_params: SchedulerParams,
        rng: SimRng,
    ) -> Self {
        PhysicalHost {
            inner: Rc::new(PhysInner {
                spec,
                kernel: OsKernel::new(os, rng),
                sched_params,
                sched: RefCell::new(None),
                allocated_fraction: RefCell::new(0.0),
            }),
        }
    }

    /// This host's specification.
    pub fn spec(&self) -> &PhysicalHostSpec {
        &self.inner.spec
    }

    /// The host's OS kernel (for competitors and direct processes).
    pub fn kernel(&self) -> &OsKernel {
        &self.inner.kernel
    }

    /// The MicroGrid scheduler daemon, started lazily on first use.
    pub fn scheduler(&self) -> MGridScheduler {
        let mut slot = self.inner.sched.borrow_mut();
        slot.get_or_insert_with(|| {
            MGridScheduler::start_labeled(
                &self.inner.kernel,
                self.inner.sched_params.clone(),
                &self.inner.spec.name,
            )
        })
        .clone()
    }

    /// Map a virtual host onto this physical host at the given simulation
    /// rate. The virtual host's CPU fraction is
    /// `virtual_speed * rate / physical_speed`.
    ///
    /// # Panics
    /// Panics if the fraction is not in `(0, 1]`, or if the sum of
    /// fractions mapped onto this host would exceed 1 (an infeasible
    /// mapping the global coordinator must prevent, paper §2.3).
    pub fn map_virtual(&self, spec: VirtualHostSpec, rate: f64) -> VirtualHost {
        let fraction = spec.speed_mops * rate / self.inner.spec.speed_mops;
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "virtual host {} needs CPU fraction {fraction:.3} of {} — infeasible at rate {rate}",
            spec.name,
            self.inner.spec.name,
        );
        {
            let mut alloc = self.inner.allocated_fraction.borrow_mut();
            assert!(
                *alloc + fraction <= 1.0 + 1e-9,
                "over-committing {}: {:.3} + {fraction:.3} > 1",
                self.inner.spec.name,
                *alloc
            );
            *alloc += fraction;
        }
        VirtualHost {
            inner: Rc::new(VhInner {
                spec,
                phys: self.clone(),
                rate: std::cell::Cell::new(rate),
                managed: true,
                fraction: std::cell::Cell::new(fraction),
                memory: RefCell::new(None),
                members: RefCell::new(Vec::new()),
                degrade: std::cell::Cell::new(1.0),
                crashed: std::cell::Cell::new(false),
                procs: RefCell::new(Vec::new()),
            }),
        }
    }

    /// A direct (unmanaged) virtual host: identical specs, no pacing.
    pub fn as_direct_virtual(&self) -> VirtualHost {
        let spec = VirtualHostSpec::new(
            self.inner.spec.name.clone(),
            self.inner.spec.speed_mops,
            self.inner.spec.memory_bytes,
        );
        VirtualHost {
            inner: Rc::new(VhInner {
                spec,
                phys: self.clone(),
                rate: std::cell::Cell::new(1.0),
                managed: false,
                fraction: std::cell::Cell::new(1.0),
                memory: RefCell::new(None),
                members: RefCell::new(Vec::new()),
                degrade: std::cell::Cell::new(1.0),
                crashed: std::cell::Cell::new(false),
                procs: RefCell::new(Vec::new()),
            }),
        }
    }
}

struct VhInner {
    spec: VirtualHostSpec,
    phys: PhysicalHost,
    rate: std::cell::Cell<f64>,
    managed: bool,
    fraction: std::cell::Cell<f64>,
    memory: RefCell<Option<MemoryManager>>,
    /// Live jobs of this virtual host (managed mode): the host fraction is
    /// divided evenly across them.
    members: RefCell<Vec<(JobId, Rc<std::cell::Cell<bool>>)>>,
    /// Transient CPU degradation factor in `(0, 1]`; 1.0 when healthy.
    /// Scales the fraction handed to the scheduler, not the configured one.
    degrade: std::cell::Cell<f64>,
    /// Set while the virtual host is crashed (between [`VirtualHost::crash`]
    /// and [`VirtualHost::restart`]).
    crashed: std::cell::Cell<bool>,
    /// Weak handles to this host's processes, so a crash can kill them.
    /// Weak avoids a reference cycle with [`GpInner::vh`].
    procs: RefCell<Vec<Weak<GpInner>>>,
}

/// A virtual Grid host: a named (CPU, memory) resource applications run on.
#[derive(Clone)]
pub struct VirtualHost {
    inner: Rc<VhInner>,
}

impl VirtualHost {
    /// The virtual host's specification.
    pub fn spec(&self) -> &VirtualHostSpec {
        &self.inner.spec
    }

    /// The virtual host's name.
    pub fn name(&self) -> &str {
        &self.inner.spec.name
    }

    /// The physical host carrying this virtual host.
    pub fn physical(&self) -> &PhysicalHost {
        &self.inner.phys
    }

    /// The simulation rate this virtual host currently runs at.
    pub fn rate(&self) -> f64 {
        self.inner.rate.get()
    }

    /// Total physical CPU fraction of the virtual host.
    pub fn cpu_fraction(&self) -> f64 {
        self.inner.fraction.get()
    }

    /// Dynamic virtual time (paper §5): retune this virtual host to a new
    /// simulation rate. The CPU fraction is recomputed and re-divided
    /// across live processes.
    ///
    /// # Panics
    /// Panics on unmanaged (baseline) hosts, or if the new fraction
    /// leaves `(0, 1]`.
    pub fn set_rate(&self, new_rate: f64) {
        assert!(
            self.inner.managed,
            "cannot retune an unmanaged (baseline) virtual host"
        );
        let fraction = self.inner.spec.speed_mops * new_rate / self.inner.phys.spec().speed_mops;
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "rate {new_rate} needs infeasible CPU fraction {fraction:.3}"
        );
        {
            let mut alloc = self.inner.phys.inner.allocated_fraction.borrow_mut();
            let next = *alloc - self.inner.fraction.get() + fraction;
            assert!(
                next <= 1.0 + 1e-9,
                "over-committing {}: retune needs {next:.3} total",
                self.inner.phys.spec().name
            );
            *alloc = next;
        }
        self.inner.rate.set(new_rate);
        self.inner.fraction.set(fraction);
        self.rebalance(&self.inner.phys.scheduler());
    }

    /// True when the MicroGrid scheduler paces this host's processes.
    pub fn is_managed(&self) -> bool {
        self.inner.managed
    }

    /// The virtual host's memory manager (created lazily).
    pub fn memory(&self) -> MemoryManager {
        self.inner
            .memory
            .borrow_mut()
            .get_or_insert_with(|| {
                MemoryManager::labeled(self.inner.spec.name.clone(), self.inner.spec.memory_bytes)
            })
            .clone()
    }

    /// Crash the virtual host: every live process is terminated (its
    /// in-flight compute halts, scheduler jobs retire, memory is released)
    /// and further [`VirtualHost::spawn_process`] calls fail until
    /// [`VirtualHost::restart`]. Idempotent while crashed.
    pub fn crash(&self) {
        if self.inner.crashed.replace(true) {
            return;
        }
        let procs: Vec<Rc<GpInner>> = self
            .inner
            .procs
            .borrow()
            .iter()
            .filter_map(|w| w.upgrade())
            .collect();
        let mut killed: u64 = 0;
        for inner in procs {
            let gp = GridProcess { inner };
            if gp.inner.mem.borrow().is_some() {
                killed += 1;
            }
            gp.exit();
        }
        self.inner.procs.borrow_mut().clear();
        obs::count("faults.procs_killed", killed);
    }

    /// Bring a crashed virtual host back up, empty of processes. The
    /// configured resources (fraction, memory) are restored; applications
    /// decide what to re-run on it.
    pub fn restart(&self) {
        self.inner.crashed.set(false);
    }

    /// Whether the host is currently crashed.
    pub fn is_crashed(&self) -> bool {
        self.inner.crashed.get()
    }

    /// Apply a transient CPU degradation: the fraction delivered to this
    /// host's processes is scaled by `factor` until restored with
    /// `set_degradation(1.0)`. Only managed hosts are paced, so only they
    /// degrade; the call is a no-op on direct (baseline) hosts.
    ///
    /// # Panics
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn set_degradation(&self, factor: f64) {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "degradation factor must be in (0,1], got {factor}"
        );
        self.inner.degrade.set(factor);
        if self.inner.managed {
            self.rebalance(&self.inner.phys.scheduler());
        }
    }

    /// The current CPU degradation factor (1.0 when healthy).
    pub fn degradation(&self) -> f64 {
        self.inner.degrade.get()
    }

    /// Start a process on this virtual host.
    ///
    /// In managed mode the process joins the scheduler daemon's rotation
    /// and the host fraction is re-divided across all live processes.
    ///
    /// # Panics
    /// Panics if the host is crashed (callers gate on
    /// [`VirtualHost::is_crashed`] when racing a fault scenario).
    pub fn spawn_process(&self, name: impl Into<String>) -> Result<GridProcess, OutOfMemory> {
        assert!(
            !self.inner.crashed.get(),
            "cannot spawn a process on crashed host {}",
            self.inner.spec.name
        );
        let mem = self.memory().register_process()?;
        let name = name.into();
        let proc = self.inner.phys.kernel().spawn_process(name);
        let job = if self.inner.managed {
            let sched = self.inner.phys.scheduler();
            let live = Rc::new(std::cell::Cell::new(true));
            // Temporary fraction; rebalance fixes it below.
            let id = sched.add_job(proc.clone(), self.inner.fraction.get());
            self.inner.members.borrow_mut().push((id, live.clone()));
            self.rebalance(&sched);
            Some((id, live))
        } else {
            None
        };
        let gp = GridProcess {
            inner: Rc::new(GpInner {
                vh: self.clone(),
                proc,
                job: RefCell::new(job),
                mem: RefCell::new(Some(mem)),
            }),
        };
        self.inner.procs.borrow_mut().push(Rc::downgrade(&gp.inner));
        Ok(gp)
    }

    /// Divide the host fraction (scaled by any transient degradation)
    /// evenly across live member processes.
    fn rebalance(&self, sched: &MGridScheduler) {
        let members = self.inner.members.borrow();
        let live: Vec<JobId> = members
            .iter()
            .filter(|(_, l)| l.get())
            .map(|(id, _)| *id)
            .collect();
        if live.is_empty() {
            return;
        }
        let each = self.inner.fraction.get() * self.inner.degrade.get() / live.len() as f64;
        for id in live {
            sched.set_fraction(id, each);
        }
    }

    fn retire(&self, id: JobId, live: &Rc<std::cell::Cell<bool>>) {
        live.set(false);
        let sched = self.inner.phys.scheduler();
        sched.remove_job(id);
        self.rebalance(&sched);
    }
}

struct GpInner {
    vh: VirtualHost,
    proc: ProcessHandle,
    job: RefCell<Option<(JobId, Rc<std::cell::Cell<bool>>)>>,
    mem: RefCell<Option<MemoryHandle>>,
}

/// A process running on a virtual host. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct GridProcess {
    inner: Rc<GpInner>,
}

impl GridProcess {
    /// The virtual host this process runs on.
    pub fn host(&self) -> &VirtualHost {
        &self.inner.vh
    }

    /// The underlying OS process (for kernel-level accounting).
    pub fn os_process(&self) -> &ProcessHandle {
        &self.inner.proc
    }

    /// The scheduler job, when managed.
    pub fn job_id(&self) -> Option<JobId> {
        self.inner.job.borrow().as_ref().map(|(id, _)| *id)
    }

    /// This process's memory handle.
    ///
    /// # Panics
    /// Panics after [`GridProcess::exit`].
    pub fn memory(&self) -> MemoryHandle {
        self.inner
            .mem
            .borrow()
            .as_ref()
            .expect("process has exited")
            .clone()
    }

    /// Execute `mops` million abstract operations.
    ///
    /// The CPU time requested from the kernel is `mops / physical_speed`;
    /// pacing (managed mode) stretches the wall time so that in *virtual*
    /// time the work takes `mops / virtual_speed`.
    pub async fn compute_mops(&self, mops: f64) {
        if mops <= 0.0 {
            return;
        }
        let cpu = SimDuration::from_secs_f64(mops / self.inner.vh.physical().spec().speed_mops);
        self.inner.proc.run_cpu(cpu).await;
    }

    /// Execute work sized in seconds of *virtual* CPU time on this host.
    pub async fn compute_virtual(&self, d: SimDuration) {
        self.compute_mops(d.as_secs_f64() * self.inner.vh.spec().speed_mops)
            .await;
    }

    /// Pay the MicroGrid interception overhead for one mediated library
    /// call (socket op, `gethostname`, `gettimeofday`, …).
    pub async fn intercept_overhead(&self) {
        self.inner.proc.run_cpu(SimDuration::from_micros(2)).await;
    }

    /// Terminate the process: leave the scheduler rotation, release memory,
    /// remove the OS process. Idempotent.
    pub fn exit(&self) {
        if let Some((id, live)) = self.inner.job.borrow_mut().take() {
            self.inner.vh.retire(id, &live);
        }
        if let Some(mem) = self.inner.mem.borrow_mut().take() {
            mem.release();
        }
        self.inner.proc.exit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgrid_desim::{now, SimTime, Simulation};

    fn phys(speed: f64) -> PhysicalHost {
        PhysicalHost::new(
            PhysicalHostSpec::new("phys", speed, 1 << 30),
            OsParams {
                timer_noise: 0.0,
                context_switch: SimDuration::ZERO,
                ..OsParams::default()
            },
            SchedulerParams::default(),
            SimRng::new(9),
        )
    }

    #[test]
    fn direct_compute_runs_at_full_speed() {
        let mut sim = Simulation::new(1);
        sim.spawn(async {
            let ph = phys(500.0);
            let vh = ph.as_direct_virtual();
            let p = vh.spawn_process("app").unwrap();
            let t0 = now();
            p.compute_mops(500.0).await; // 1 second of CPU at 500 Mops
            let wall = (now() - t0).as_secs_f64();
            assert!((wall - 1.0).abs() < 1e-6, "wall {wall}");
        });
        sim.run_to_completion();
    }

    #[test]
    fn managed_host_stretches_wall_time_by_fraction() {
        let mut sim = Simulation::new(2);
        sim.spawn(async {
            let ph = phys(500.0);
            // Virtual host half the speed, rate 1 -> fraction 0.5.
            let vh = ph.map_virtual(VirtualHostSpec::new("vm", 250.0, 1 << 28), 1.0);
            assert!((vh.cpu_fraction() - 0.5).abs() < 1e-12);
            let p = vh.spawn_process("app").unwrap();
            let t0 = now();
            p.compute_mops(250.0).await; // 0.5s CPU; at fraction 0.5 ~1s wall
            let wall = (now() - t0).as_secs_f64();
            assert!((wall - 1.0).abs() < 0.1, "wall {wall}");
        });
        sim.run_until(SimTime::from_secs_f64(10.0));
    }

    #[test]
    fn virtual_time_matches_virtual_speed() {
        // A 100-Mops virtual host at rate 0.2 on a 500-Mops physical host:
        // fraction = 0.04. Work of 100 Mops = 1 virtual second
        // = 1/0.2 = 5 physical seconds.
        let mut sim = Simulation::new(3);
        sim.spawn(async {
            let ph = phys(500.0);
            let vh = ph.map_virtual(VirtualHostSpec::new("vm", 100.0, 1 << 28), 0.2);
            let p = vh.spawn_process("app").unwrap();
            let t0 = now();
            p.compute_mops(100.0).await;
            let wall = (now() - t0).as_secs_f64();
            assert!((wall - 5.0).abs() < 0.3, "wall {wall}");
        });
        sim.run_until(SimTime::from_secs_f64(30.0));
    }

    #[test]
    fn two_processes_split_the_host_fraction() {
        let mut sim = Simulation::new(4);
        sim.spawn(async {
            let ph = phys(500.0);
            let vh = ph.map_virtual(VirtualHostSpec::new("vm", 400.0, 1 << 28), 1.0);
            let a = vh.spawn_process("a").unwrap();
            let b = vh.spawn_process("b").unwrap();
            let t0 = now();
            let ha = mgrid_desim::spawn(async move {
                a.compute_mops(200.0).await; // 0.4s CPU
                now()
            });
            let hb = mgrid_desim::spawn(async move {
                b.compute_mops(200.0).await;
                now()
            });
            let ta = ha.await;
            let tb = hb.await;
            // Each gets 0.4 of the CPU: 0.4s CPU needs ~1s wall.
            let last = ta.max(tb).saturating_since(t0).as_secs_f64();
            assert!((last - 1.0).abs() < 0.15, "finish {last}");
        });
        sim.run_until(SimTime::from_secs_f64(30.0));
    }

    #[test]
    #[should_panic(expected = "over-committing")]
    fn overcommit_is_rejected() {
        let mut sim = Simulation::new(5);
        sim.spawn(async {
            let ph = phys(500.0);
            let _a = ph.map_virtual(VirtualHostSpec::new("v1", 300.0, 1 << 28), 1.0);
            let _b = ph.map_virtual(VirtualHostSpec::new("v2", 300.0, 1 << 28), 1.0);
        });
        sim.run_to_completion();
    }

    #[test]
    fn memory_cap_enforced_on_virtual_host() {
        let mut sim = Simulation::new(6);
        sim.spawn(async {
            let ph = phys(500.0);
            let vh = ph.map_virtual(VirtualHostSpec::new("vm", 100.0, 64 * 1024), 1.0);
            let p = vh.spawn_process("app").unwrap();
            assert!(p.memory().alloc(32 * 1024).is_ok());
            assert!(p.memory().alloc(64 * 1024).is_err());
            p.exit();
            assert_eq!(vh.memory().used(), 0);
        });
        sim.run_until(SimTime::from_secs_f64(1.0));
    }

    #[test]
    fn crash_kills_processes_and_halts_compute() {
        let mut sim = Simulation::new(11);
        let done = Rc::new(std::cell::Cell::new(false));
        let done2 = done.clone();
        sim.spawn(async move {
            let ph = phys(500.0);
            let vh = ph.map_virtual(VirtualHostSpec::new("vm", 400.0, 1 << 28), 1.0);
            let p = vh.spawn_process("app").unwrap();
            {
                let p = p.clone();
                mgrid_desim::spawn(async move {
                    p.compute_mops(500.0).await;
                    done2.set(true);
                });
            }
            mgrid_desim::sleep(SimDuration::from_millis(100)).await;
            vh.crash();
            assert!(vh.is_crashed());
            assert_eq!(vh.memory().used(), 0, "crash releases memory");
            mgrid_desim::sleep(SimDuration::from_secs(3)).await;
        });
        sim.run_until(SimTime::from_secs_f64(5.0));
        assert!(!done.get(), "compute on a crashed host must never finish");
    }

    #[test]
    fn restart_allows_new_processes() {
        let mut sim = Simulation::new(12);
        sim.spawn(async {
            let ph = phys(500.0);
            let vh = ph.map_virtual(VirtualHostSpec::new("vm", 400.0, 1 << 28), 1.0);
            let p = vh.spawn_process("first").unwrap();
            vh.crash();
            drop(p);
            vh.restart();
            assert!(!vh.is_crashed());
            let p2 = vh.spawn_process("second").unwrap();
            let t0 = now();
            p2.compute_mops(80.0).await; // 0.16s CPU at fraction 0.8 ~ 0.2s
            let wall = (now() - t0).as_secs_f64();
            assert!((wall - 0.2).abs() < 0.1, "wall {wall}");
        });
        sim.run_until(SimTime::from_secs_f64(10.0));
    }

    #[test]
    fn degradation_scales_delivered_fraction() {
        let mut sim = Simulation::new(13);
        sim.spawn(async {
            let ph = phys(500.0);
            // fraction 0.8; degraded by 0.5 -> effective 0.4.
            let vh = ph.map_virtual(VirtualHostSpec::new("vm", 400.0, 1 << 28), 1.0);
            let p = vh.spawn_process("app").unwrap();
            vh.set_degradation(0.5);
            let t0 = now();
            p.compute_mops(200.0).await; // 0.4s CPU at 0.4 -> ~1s wall
            let degraded_wall = (now() - t0).as_secs_f64();
            assert!((degraded_wall - 1.0).abs() < 0.15, "wall {degraded_wall}");
            vh.set_degradation(1.0);
            let t1 = now();
            p.compute_mops(200.0).await; // back to 0.8 -> ~0.5s wall
            let healthy_wall = (now() - t1).as_secs_f64();
            assert!((healthy_wall - 0.5).abs() < 0.15, "wall {healthy_wall}");
        });
        sim.run_until(SimTime::from_secs_f64(30.0));
    }

    #[test]
    fn exit_rebalances_remaining_processes() {
        let mut sim = Simulation::new(7);
        sim.spawn(async {
            let ph = phys(500.0);
            let vh = ph.map_virtual(VirtualHostSpec::new("vm", 400.0, 1 << 28), 1.0);
            let a = vh.spawn_process("a").unwrap();
            let b = vh.spawn_process("b").unwrap();
            a.exit();
            // b should now hold the whole 0.8 fraction: 0.4s CPU in ~0.5s.
            let t0 = now();
            b.compute_mops(200.0).await;
            let wall = (now() - t0).as_secs_f64();
            assert!((wall - 0.5).abs() < 0.1, "wall {wall}");
        });
        sim.run_until(SimTime::from_secs_f64(10.0));
    }
}
