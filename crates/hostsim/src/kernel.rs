//! A model of a time-sharing OS kernel on one physical CPU.
//!
//! The MicroGrid's CPU scheduler daemon (paper §2.4.1, Fig 4) runs *on top
//! of* the host OS: it grants quanta with SIGCONT/SIGSTOP and sleeps between
//! them, while the native Linux scheduler still time-shares the CPU among
//! the granted process, the daemon itself, and any competitors. The paper's
//! Fig 6/7 results (fraction fidelity under CPU/IO competition) are
//! consequences of that native scheduler's policy, so we model it:
//! an epoch-credit scheduler in the style of Linux 2.2.
//!
//! * Every process has a credit `counter` (in ticks). The runnable process
//!   with the highest counter runs; its counter drains while it runs.
//! * When every runnable process has drained its counter, a new epoch
//!   recharges all processes: `counter = counter/2 + base`. Processes that
//!   sleep a lot therefore accumulate credit (up to `2*base`) and preempt
//!   CPU-bound processes when they wake — which is why a mostly-sleeping
//!   MicroGrid-managed job receives its small CPU fraction accurately even
//!   against a spinning competitor (Fig 6's linear region).
//! * A wakeup (new CPU request, SIGCONT, sleep expiry) interrupts the
//!   current slice and forces a re-schedule, so higher-credit processes
//!   preempt immediately.
//!
//! Time is the engine's physical clock; CPU demand is expressed in CPU
//! seconds (the host layer converts abstract "ops" using the CPU speed).

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use mgrid_desim::channel::{oneshot, OneshotSender};
use mgrid_desim::sync::Notify;
use mgrid_desim::time::{SimDuration, SimTime};
use mgrid_desim::{now, sleep, spawn_daemon, FxHashMap};

/// Identifier of an OS-level process.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Pid(pub u64);

/// Tunables of the kernel scheduler model.
#[derive(Clone, Debug)]
pub struct OsParams {
    /// Scheduler tick: credit is measured in ticks and wakeups take effect
    /// with at most this much latency when not preempting.
    pub tick: SimDuration,
    /// Credit added per epoch (Linux 2.2 "priority"): a process that never
    /// sleeps gets `base` ticks per epoch; a heavy sleeper converges to
    /// `2*base`.
    pub base_ticks: f64,
    /// Upper bound on one uninterrupted slice (events are generated at
    /// least this often while the CPU is busy).
    pub max_slice: SimDuration,
    /// Direct cost of a context switch, charged to wall time.
    pub context_switch: SimDuration,
    /// Relative standard deviation of timer-expiry noise applied to slice
    /// lengths (models timer interrupt granularity / cache interference).
    pub timer_noise: f64,
}

impl Default for OsParams {
    fn default() -> Self {
        OsParams {
            tick: SimDuration::from_millis(1),
            base_ticks: 20.0,
            max_slice: SimDuration::from_millis(20),
            context_switch: SimDuration::from_micros(5),
            timer_noise: 0.002,
        }
    }
}

struct Request {
    remaining: SimDuration,
    done: OneshotSender<SimDuration>,
    served: SimDuration,
}

struct Pcb {
    name: mgrid_desim::SpanStr,
    counter: f64,
    base: f64,
    stopped: bool,
    /// Pending CPU requests, served FIFO: concurrent requests from one
    /// process's tasks are serialized, as a single-threaded process would.
    requests: std::collections::VecDeque<Request>,
    cpu_used: SimDuration,
    last_ran_seq: u64,
    slices: Vec<(SimTime, SimDuration)>,
    record_slices: bool,
}

struct IntrSlot {
    fired: bool,
    waker: Option<Waker>,
}

struct KernelInner {
    params: OsParams,
    // FxHashMap keeps lookups cheap; scheduling decisions never depend
    // on iteration order (`pick` fully orders candidates).
    procs: FxHashMap<Pid, Pcb>,
    next_pid: u64,
    run_seq: u64,
    current: Option<Pid>,
    intr: Option<Rc<RefCell<IntrSlot>>>,
    idle_notify: Notify,
    rng: RefCell<mgrid_desim::SimRng>,
    busy_time: SimDuration,
    driver_started: bool,
}

/// A simulated single-CPU OS kernel.
///
/// Create with [`OsKernel::new`], add processes with
/// [`OsKernel::spawn_process`], and have simulation tasks consume CPU via
/// [`ProcessHandle::run_cpu`]. The scheduling driver task starts lazily on
/// the first CPU request.
#[derive(Clone)]
pub struct OsKernel {
    inner: Rc<RefCell<KernelInner>>,
}

impl OsKernel {
    /// Create a kernel with the given scheduler parameters. `rng` seeds the
    /// kernel's private noise stream.
    pub fn new(params: OsParams, rng: mgrid_desim::SimRng) -> Self {
        OsKernel {
            inner: Rc::new(RefCell::new(KernelInner {
                params,
                procs: FxHashMap::default(),
                next_pid: 1,
                run_seq: 0,
                current: None,
                intr: None,
                idle_notify: Notify::new(),
                rng: RefCell::new(rng),
                busy_time: SimDuration::ZERO,
                driver_started: false,
            })),
        }
    }

    /// Register a new process. The process starts runnable (not stopped)
    /// but consumes no CPU until it issues a request.
    pub fn spawn_process(&self, name: impl Into<String>) -> ProcessHandle {
        let mut inner = self.inner.borrow_mut();
        let pid = Pid(inner.next_pid);
        inner.next_pid += 1;
        let base = inner.params.base_ticks;
        inner.procs.insert(
            pid,
            Pcb {
                name: name.into().into(),
                counter: base,
                base,
                stopped: false,
                requests: std::collections::VecDeque::new(),
                cpu_used: SimDuration::ZERO,
                last_ran_seq: 0,
                slices: Vec::new(),
                record_slices: false,
            },
        );
        ProcessHandle {
            kernel: self.clone(),
            pid,
        }
    }

    /// Total CPU-busy time accumulated across all processes.
    pub fn busy_time(&self) -> SimDuration {
        self.inner.borrow().busy_time
    }

    /// Number of registered processes.
    pub fn process_count(&self) -> usize {
        self.inner.borrow().procs.len()
    }

    /// Number of processes currently runnable (not stopped, with pending
    /// CPU work), excluding `except`. Used by the scheduler daemon's
    /// wakeup-latency model.
    pub fn runnable_count_except(&self, except: Pid) -> usize {
        self.inner
            .borrow()
            .procs
            .iter()
            .filter(|(pid, p)| **pid != except && !p.stopped && !p.requests.is_empty())
            .count()
    }

    /// Debug snapshot: `(pid, name, counter, stopped, pending_requests)`.
    pub fn debug_procs(&self) -> Vec<(u64, String, f64, bool, usize)> {
        let inner = self.inner.borrow();
        let mut v: Vec<_> = inner
            .procs
            .iter()
            .map(|(pid, p)| {
                (
                    pid.0,
                    p.name.to_string(),
                    p.counter,
                    p.stopped,
                    p.requests.len(),
                )
            })
            .collect();
        v.sort_by_key(|e| e.0);
        v
    }

    fn ensure_driver(&self) {
        let start = {
            let mut inner = self.inner.borrow_mut();
            if inner.driver_started {
                false
            } else {
                inner.driver_started = true;
                true
            }
        };
        if start {
            let kernel = self.clone();
            spawn_daemon(async move { kernel.driver().await });
        }
    }

    fn interrupt(&self) {
        let inner = self.inner.borrow();
        if let Some(slot) = &inner.intr {
            let mut s = slot.borrow_mut();
            s.fired = true;
            if let Some(w) = s.waker.take() {
                w.wake();
            }
        } else {
            inner.idle_notify.notify_one();
        }
    }

    /// Pick the runnable process with the most credit, recharging the epoch
    /// if every runnable process has drained.
    fn pick(&self) -> Option<Pid> {
        let mut inner = self.inner.borrow_mut();
        let runnable = |p: &Pcb| !p.stopped && !p.requests.is_empty();
        let has_runnable = inner.procs.values().any(runnable);
        if !has_runnable {
            return None;
        }
        let all_drained = inner
            .procs
            .values()
            .filter(|p| runnable(p))
            .all(|p| p.counter <= 0.0);
        if all_drained {
            // New epoch: everyone recharges; sleepers bank credit.
            // mgrid-lint: allow(MG007) per-entry update commutes — visit order is irrelevant
            for p in inner.procs.values_mut() {
                p.counter = p.counter / 2.0 + p.base;
            }
        }
        inner
            .procs
            // The comparator below is total (credit, then last-ran,
            // then pid), so the winner is unique and iteration order
            // cannot affect the pick.
            // mgrid-lint: allow(MG007) max_by with a total comparator picks a unique winner
            .iter()
            .filter(|(_, p)| runnable(p) && p.counter > 0.0)
            .max_by(|(pa, a), (pb, b)| {
                // Highest credit wins; ties go to the least recently run,
                // then to the lower pid — a deterministic round-robin.
                a.counter
                    .total_cmp(&b.counter)
                    .then(b.last_ran_seq.cmp(&a.last_ran_seq))
                    .then(pb.cmp(pa))
            })
            .map(|(pid, _)| *pid)
    }

    async fn driver(self) {
        loop {
            let Some(pid) = self.pick() else {
                let notify = self.inner.borrow().idle_notify.clone();
                notify.notified().await;
                continue;
            };
            // Compute the slice and pay the context-switch cost.
            let (slice, cs) = {
                let mut inner = self.inner.borrow_mut();
                let switching = inner.current != Some(pid);
                inner.current = Some(pid);
                inner.run_seq += 1;
                let seq = inner.run_seq;
                let tick_ns = inner.params.tick.as_nanos() as f64;
                let max_slice = inner.params.max_slice;
                let noise = inner.params.timer_noise;
                let cs = if switching {
                    inner.params.context_switch
                } else {
                    SimDuration::ZERO
                };
                let jitter = if noise > 0.0 {
                    let z = inner.rng.borrow_mut().normal();
                    (1.0 + noise * z).max(0.5)
                } else {
                    1.0
                };
                let p = inner.procs.get_mut(&pid).expect("picked pid exists");
                p.last_ran_seq = seq;
                let credit = SimDuration::from_nanos((p.counter.max(0.05) * tick_ns) as u64);
                let want = p.requests.front().expect("runnable has request").remaining;
                let slice = want.min(credit).min(max_slice).mul_f64(jitter);
                // Never schedule a zero-length slice (it would livelock).
                (slice.max(SimDuration::from_nanos(100)), cs)
            };
            // Install the interrupt slot BEFORE any waiting (including the
            // context switch), so a wakeup during the switch forces an
            // immediate re-schedule instead of being lost.
            let slot = Rc::new(RefCell::new(IntrSlot {
                fired: false,
                waker: None,
            }));
            self.inner.borrow_mut().intr = Some(slot.clone());
            if !cs.is_zero() {
                InterruptibleSleep {
                    until: now() + cs,
                    slot: slot.clone(),
                    timer: None,
                }
                .await;
                if slot.borrow().fired {
                    // Preempted before the slice started: re-pick.
                    self.inner.borrow_mut().intr = None;
                    continue;
                }
            }
            let start = now();
            InterruptibleSleep {
                until: start + slice,
                slot: slot.clone(),
                timer: None,
            }
            .await;
            self.inner.borrow_mut().intr = None;
            let ran = now() - start;
            self.charge(pid, ran);
        }
    }

    fn charge(&self, pid: Pid, ran: SimDuration) {
        let mut inner = self.inner.borrow_mut();
        inner.busy_time += ran;
        let tick_ns = inner.params.tick.as_nanos() as f64;
        let Some(p) = inner.procs.get_mut(&pid) else {
            return;
        };
        p.counter -= ran.as_nanos() as f64 / tick_ns;
        p.cpu_used += ran;
        if p.record_slices && !ran.is_zero() {
            p.slices.push((now() - ran, ran));
        }
        let finished = if let Some(req) = p.requests.front_mut() {
            req.served += ran.min(req.remaining);
            req.remaining = req.remaining.saturating_sub(ran);
            req.remaining.is_zero()
        } else {
            false
        };
        if finished {
            let req = p.requests.pop_front().expect("request present");
            req.done.send(req.served);
        }
    }
}

/// Handle to one OS process.
#[derive(Clone)]
pub struct ProcessHandle {
    kernel: OsKernel,
    pid: Pid,
}

impl ProcessHandle {
    /// This process's pid.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The name the process was spawned with (empty if it has exited).
    pub fn name(&self) -> String {
        self.kernel
            .inner
            .borrow()
            .procs
            .get(&self.pid)
            .map(|p| p.name.to_string())
            .unwrap_or_default()
    }

    /// The process name as a shared [`mgrid_desim::SpanStr`] — a
    /// reference bump, no allocation. Used by span instrumentation on
    /// hot paths (one span per scheduler quantum).
    pub fn name_shared(&self) -> mgrid_desim::SpanStr {
        self.kernel
            .inner
            .borrow()
            .procs
            .get(&self.pid)
            .map(|p| p.name.clone())
            .unwrap_or_else(|| "".into())
    }

    /// Consume `cpu` seconds of CPU time. Completes once the kernel has
    /// actually granted that much CPU; wall time elapsed is at least `cpu`
    /// and grows with contention, SIGSTOP gating, and scheduling latency.
    ///
    /// If the process has exited (or exits mid-request — e.g. its virtual
    /// host crashed), this future never completes: a dead process cannot
    /// make progress, so the requesting task halts exactly like code running
    /// on the vanished machine would.
    pub async fn run_cpu(&self, cpu: SimDuration) {
        if cpu.is_zero() {
            return;
        }
        self.kernel.ensure_driver();
        let (tx, rx) = oneshot();
        let queued = {
            let mut inner = self.kernel.inner.borrow_mut();
            match inner.procs.get_mut(&self.pid) {
                Some(p) => {
                    p.requests.push_back(Request {
                        remaining: cpu,
                        done: tx,
                        served: SimDuration::ZERO,
                    });
                    true
                }
                None => false,
            }
        };
        if !queued {
            halt_forever().await;
        }
        self.kernel.interrupt();
        // A dropped reply means the process was killed mid-request; the
        // remaining work vanishes with it and the requester halts below.
        let _ = rx.recv().await;
        if !self.kernel.inner.borrow().procs.contains_key(&self.pid) {
            halt_forever().await;
        }
    }

    /// Sleep without consuming CPU (the process blocks voluntarily and
    /// banks scheduler credit while asleep).
    pub async fn os_sleep(&self, d: SimDuration) {
        sleep(d).await;
    }

    /// SIGSTOP: make the process unschedulable, preempting it if running.
    pub fn sigstop(&self) {
        {
            let mut inner = self.kernel.inner.borrow_mut();
            if let Some(p) = inner.procs.get_mut(&self.pid) {
                p.stopped = true;
            }
        }
        self.kernel.interrupt();
    }

    /// SIGCONT: make the process schedulable again.
    pub fn sigcont(&self) {
        {
            let mut inner = self.kernel.inner.borrow_mut();
            if let Some(p) = inner.procs.get_mut(&self.pid) {
                p.stopped = false;
            }
        }
        self.kernel.interrupt();
    }

    /// Whether the process currently holds a pending CPU request.
    pub fn has_pending_work(&self) -> bool {
        let inner = self.kernel.inner.borrow();
        inner
            .procs
            .get(&self.pid)
            .is_some_and(|p| !p.requests.is_empty())
    }

    /// Total CPU time this process has received.
    pub fn cpu_used(&self) -> SimDuration {
        let inner = self.kernel.inner.borrow();
        inner
            .procs
            .get(&self.pid)
            .map(|p| p.cpu_used)
            .unwrap_or(SimDuration::ZERO)
    }

    /// Enable per-slice recording (for quanta-distribution experiments).
    pub fn record_slices(&self, on: bool) {
        let mut inner = self.kernel.inner.borrow_mut();
        if let Some(p) = inner.procs.get_mut(&self.pid) {
            p.record_slices = on;
            if !on {
                p.slices.clear();
            }
        }
    }

    /// Recorded `(start, length)` CPU slices (see
    /// [`ProcessHandle::record_slices`]).
    pub fn slices(&self) -> Vec<(SimTime, SimDuration)> {
        let inner = self.kernel.inner.borrow();
        inner
            .procs
            .get(&self.pid)
            .map(|p| p.slices.clone())
            .unwrap_or_default()
    }

    /// Remove the process from the kernel. Any pending request is dropped
    /// (its waiter observes a closed channel).
    pub fn exit(&self) {
        {
            let mut inner = self.kernel.inner.borrow_mut();
            inner.procs.remove(&self.pid);
            if inner.current == Some(self.pid) {
                inner.current = None;
            }
        }
        self.kernel.interrupt();
    }
}

/// Park the current task forever: the fate of any task that needs CPU from
/// a process that no longer exists. Bound such waits with
/// `mgrid_desim::with_timeout` when forward progress must be observed.
async fn halt_forever() -> ! {
    std::future::pending::<()>().await;
    unreachable!("pending future completed")
}

struct InterruptibleSleep {
    until: SimTime,
    slot: Rc<RefCell<IntrSlot>>,
    timer: Option<Pin<Box<mgrid_desim::executor::Sleep>>>,
}

impl Future for InterruptibleSleep {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.slot.borrow().fired || now() >= self.until {
            return Poll::Ready(());
        }
        self.slot.borrow_mut().waker = Some(cx.waker().clone());
        let until = self.until;
        let timer = self
            .timer
            .get_or_insert_with(|| Box::pin(mgrid_desim::sleep_until(until)));
        match timer.as_mut().poll(cx) {
            Poll::Ready(()) => Poll::Ready(()),
            Poll::Pending => {
                if self.slot.borrow().fired {
                    Poll::Ready(())
                } else {
                    Poll::Pending
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgrid_desim::{spawn, SimRng, Simulation};

    fn quiet_params() -> OsParams {
        OsParams {
            timer_noise: 0.0,
            context_switch: SimDuration::ZERO,
            ..OsParams::default()
        }
    }

    #[test]
    fn single_process_gets_full_cpu() {
        let mut sim = Simulation::new(1);
        sim.spawn(async {
            let k = OsKernel::new(quiet_params(), SimRng::new(1));
            let p = k.spawn_process("worker");
            let start = now();
            p.run_cpu(SimDuration::from_millis(100)).await;
            let wall = now() - start;
            assert_eq!(wall, SimDuration::from_millis(100));
            assert_eq!(p.cpu_used(), SimDuration::from_millis(100));
        });
        sim.run_to_completion();
    }

    #[test]
    fn two_cpu_bound_processes_share_evenly() {
        let mut sim = Simulation::new(1);
        sim.spawn(async {
            let k = OsKernel::new(quiet_params(), SimRng::new(1));
            let a = k.spawn_process("a");
            let b = k.spawn_process("b");
            let ha = {
                let a = a.clone();
                spawn(async move {
                    a.run_cpu(SimDuration::from_millis(200)).await;
                    now()
                })
            };
            let hb = {
                let b = b.clone();
                spawn(async move {
                    b.run_cpu(SimDuration::from_millis(200)).await;
                    now()
                })
            };
            let ta = ha.await;
            let tb = hb.await;
            // Both need 200ms CPU on a shared CPU: both finish ~400ms.
            let last = ta.max(tb);
            assert!((last.as_secs_f64() - 0.4).abs() < 0.05, "finish at {last}");
            // Fair sharing: each got its requested CPU.
            assert_eq!(a.cpu_used(), SimDuration::from_millis(200));
            assert_eq!(b.cpu_used(), SimDuration::from_millis(200));
        });
        sim.run_to_completion();
    }

    #[test]
    fn sigstop_gates_execution() {
        let mut sim = Simulation::new(1);
        sim.spawn(async {
            let k = OsKernel::new(quiet_params(), SimRng::new(1));
            let p = k.spawn_process("gated");
            p.sigstop();
            let h = {
                let p = p.clone();
                spawn(async move {
                    p.run_cpu(SimDuration::from_millis(10)).await;
                    now()
                })
            };
            sleep(SimDuration::from_millis(50)).await;
            assert!(!h.is_finished(), "stopped process must not run");
            p.sigcont();
            let t = h.await;
            // Resumes at 50ms, needs 10ms CPU.
            let nanos = t.as_nanos();
            assert!((60_000_000..60_100_000).contains(&nanos), "finished at {t}");
        });
        sim.run_to_completion();
    }

    #[test]
    fn sleeper_preempts_spinner_on_wake() {
        let mut sim = Simulation::new(1);
        sim.spawn(async {
            let k = OsKernel::new(quiet_params(), SimRng::new(1));
            let hog = k.spawn_process("hog");
            let nimble = k.spawn_process("nimble");
            {
                let hog = hog.clone();
                spawn(async move {
                    hog.run_cpu(SimDuration::from_secs(10)).await;
                });
            }
            // Let the hog run a while and drain credit.
            sleep(SimDuration::from_millis(100)).await;
            let start = now();
            nimble.run_cpu(SimDuration::from_micros(500)).await;
            let latency = now() - start - SimDuration::from_micros(500);
            // The sleeper banked credit, so it preempts almost immediately.
            assert!(
                latency < SimDuration::from_millis(2),
                "wakeup latency {latency}"
            );
        });
        sim.run_until(SimTime::from_secs_f64(1.0));
    }

    #[test]
    fn cpu_accounting_is_conserved() {
        let mut sim = Simulation::new(2);
        sim.spawn(async {
            let k = OsKernel::new(quiet_params(), SimRng::new(2));
            let mut handles = Vec::new();
            let mut procs = Vec::new();
            for i in 0..4 {
                let p = k.spawn_process(format!("p{i}"));
                procs.push(p.clone());
                handles.push(spawn(async move {
                    p.run_cpu(SimDuration::from_millis(50)).await;
                }));
            }
            for h in handles {
                h.await;
            }
            let total: u64 = procs.iter().map(|p| p.cpu_used().as_nanos()).sum();
            assert_eq!(total, 200_000_000);
            assert_eq!(k.busy_time().as_nanos(), 200_000_000);
            // Serialized on one CPU: wall >= total CPU.
            assert!(now() >= SimTime::from_nanos(200_000_000));
        });
        sim.run_to_completion();
    }

    #[test]
    fn exit_removes_process() {
        let mut sim = Simulation::new(1);
        sim.spawn(async {
            let k = OsKernel::new(quiet_params(), SimRng::new(1));
            let p = k.spawn_process("gone");
            assert_eq!(k.process_count(), 1);
            p.exit();
            assert_eq!(k.process_count(), 0);
        });
        sim.run_to_completion();
    }

    #[test]
    fn run_cpu_after_exit_parks_forever() {
        let mut sim = Simulation::new(1);
        sim.spawn(async {
            let k = OsKernel::new(quiet_params(), SimRng::new(1));
            let p = k.spawn_process("doomed");
            p.exit();
            let r = mgrid_desim::timeout::with_timeout(
                SimDuration::from_secs(1),
                p.run_cpu(SimDuration::from_millis(1)),
            )
            .await;
            assert!(
                r.is_none(),
                "compute on an exited process must not complete"
            );
        });
        sim.run_until(SimTime::from_secs_f64(2.0));
    }

    #[test]
    fn exit_mid_request_halts_the_requester() {
        let mut sim = Simulation::new(1);
        sim.spawn(async {
            let k = OsKernel::new(quiet_params(), SimRng::new(1));
            let p = k.spawn_process("victim");
            let h = {
                let p = p.clone();
                spawn(async move {
                    p.run_cpu(SimDuration::from_millis(100)).await;
                })
            };
            sleep(SimDuration::from_millis(10)).await;
            p.exit();
            sleep(SimDuration::from_millis(500)).await;
            assert!(!h.is_finished(), "killed process's compute must halt");
        });
        sim.run_until(SimTime::from_secs_f64(1.0));
    }

    #[test]
    fn slices_recorded_when_enabled() {
        let mut sim = Simulation::new(1);
        sim.spawn(async {
            let k = OsKernel::new(quiet_params(), SimRng::new(1));
            let a = k.spawn_process("a");
            let b = k.spawn_process("b");
            a.record_slices(true);
            let ha = {
                let a = a.clone();
                spawn(async move { a.run_cpu(SimDuration::from_millis(60)).await })
            };
            let hb = {
                let b = b.clone();
                spawn(async move { b.run_cpu(SimDuration::from_millis(60)).await })
            };
            ha.await;
            hb.await;
            let slices = a.slices();
            assert!(!slices.is_empty());
            let total: u64 = slices.iter().map(|(_, d)| d.as_nanos()).sum();
            assert_eq!(total, 60_000_000);
        });
        sim.run_to_completion();
    }
}
