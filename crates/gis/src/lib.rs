//! # mgrid-gis — a Grid Information Service for MicroGrid-rs
//!
//! A from-scratch stand-in for the Globus MDS/GIS (LDAP) that the
//! MicroGrid virtualizes (paper §2.2.2): DN-addressed records in a
//! directory information tree, LDAP-style search filters with scopes, and
//! the paper's virtual-resource record extensions (Fig 3) — extension by
//! addition, so virtualized entries stay subtype-compatible with existing
//! queries and live in the same servers as physical records.

#![warn(missing_docs)]

pub mod directory;
pub mod dn;
pub mod filter;
pub mod record;
pub mod virtualization;

pub use directory::{DirError, Directory, Scope};
pub use dn::{Dn, DnParseError, Rdn};
pub use filter::{Filter, FilterParseError};
pub use record::Record;
