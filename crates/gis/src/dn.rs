//! LDAP-style distinguished names.
//!
//! GIS records are addressed by distinguished names such as
//! `hn=vm.ucsd.edu, ou=Concurrent Systems Architecture Group, o=Grid`
//! (paper Fig 3). A DN is a sequence of relative DNs (attribute=value
//! pairs) ordered leaf-first; the directory tree hangs records under their
//! parent DN.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One `attr=value` component of a distinguished name.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rdn {
    /// Attribute name (normalized to lowercase).
    pub attr: String,
    /// Attribute value (as written).
    pub value: String,
}

impl Rdn {
    /// Create an RDN; the attribute name is lowercased.
    pub fn new(attr: impl AsRef<str>, value: impl Into<String>) -> Self {
        Rdn {
            attr: attr.as_ref().to_ascii_lowercase(),
            value: value.into(),
        }
    }
}

impl fmt::Display for Rdn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.attr, self.value)
    }
}

/// A distinguished name: RDNs ordered leaf-first (`hn=x, ou=y, o=Grid`).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Dn {
    rdns: Vec<Rdn>,
}

/// Error parsing a DN string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnParseError(pub String);

impl fmt::Display for DnParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid DN: {}", self.0)
    }
}

impl std::error::Error for DnParseError {}

impl Dn {
    /// The empty DN (root of the directory).
    pub fn root() -> Self {
        Dn::default()
    }

    /// Build from leaf-first RDNs.
    pub fn from_rdns(rdns: Vec<Rdn>) -> Self {
        Dn { rdns }
    }

    /// Parse `attr=value, attr=value, ...` (leaf first, comma separated).
    pub fn parse(s: &str) -> Result<Self, DnParseError> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(Dn::root());
        }
        let mut rdns = Vec::new();
        for part in s.split(',') {
            let part = part.trim();
            let (attr, value) = part
                .split_once('=')
                .ok_or_else(|| DnParseError(format!("component without '=': {part:?}")))?;
            let attr = attr.trim();
            let value = value.trim();
            if attr.is_empty() || value.is_empty() {
                return Err(DnParseError(format!("empty attr or value in {part:?}")));
            }
            rdns.push(Rdn::new(attr, value));
        }
        Ok(Dn { rdns })
    }

    /// Leaf-first RDNs.
    pub fn rdns(&self) -> &[Rdn] {
        &self.rdns
    }

    /// Number of components.
    pub fn depth(&self) -> usize {
        self.rdns.len()
    }

    /// True for the empty root DN.
    pub fn is_root(&self) -> bool {
        self.rdns.is_empty()
    }

    /// The leaf (first) RDN, if any.
    pub fn leaf(&self) -> Option<&Rdn> {
        self.rdns.first()
    }

    /// Parent DN (everything but the leaf); `None` at the root.
    pub fn parent(&self) -> Option<Dn> {
        if self.rdns.is_empty() {
            None
        } else {
            Some(Dn {
                rdns: self.rdns[1..].to_vec(),
            })
        }
    }

    /// A child of this DN with the extra leaf RDN.
    pub fn child(&self, rdn: Rdn) -> Dn {
        let mut rdns = Vec::with_capacity(self.rdns.len() + 1);
        rdns.push(rdn);
        rdns.extend(self.rdns.iter().cloned());
        Dn { rdns }
    }

    /// True if `self` equals `ancestor` or lies beneath it.
    pub fn is_within(&self, ancestor: &Dn) -> bool {
        let n = self.rdns.len();
        let m = ancestor.rdns.len();
        n >= m && self.rdns[n - m..] == ancestor.rdns[..]
    }

    /// True if `self` is an immediate child of `parent`.
    pub fn is_child_of(&self, parent: &Dn) -> bool {
        self.depth() == parent.depth() + 1 && self.is_within(parent)
    }
}

impl fmt::Display for Dn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.rdns.iter().map(|r| r.to_string()).collect();
        write!(f, "{}", parts.join(", "))
    }
}

impl std::str::FromStr for Dn {
    type Err = DnParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Dn::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let dn = Dn::parse("hn=vm.ucsd.edu, ou=CSAG, o=Grid").unwrap();
        assert_eq!(dn.depth(), 3);
        assert_eq!(dn.leaf().unwrap().attr, "hn");
        assert_eq!(dn.leaf().unwrap().value, "vm.ucsd.edu");
        assert_eq!(dn.to_string(), "hn=vm.ucsd.edu, ou=CSAG, o=Grid");
    }

    #[test]
    fn attr_names_are_case_insensitive() {
        let a = Dn::parse("HN=x, OU=y").unwrap();
        let b = Dn::parse("hn=x, ou=y").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parent_and_child() {
        let dn = Dn::parse("hn=x, ou=y, o=Grid").unwrap();
        let parent = dn.parent().unwrap();
        assert_eq!(parent.to_string(), "ou=y, o=Grid");
        assert_eq!(parent.child(Rdn::new("hn", "x")), dn);
        assert!(dn.is_child_of(&parent));
        assert!(!parent.is_child_of(&dn));
    }

    #[test]
    fn is_within_hierarchy() {
        let org = Dn::parse("o=Grid").unwrap();
        let ou = Dn::parse("ou=y, o=Grid").unwrap();
        let host = Dn::parse("hn=x, ou=y, o=Grid").unwrap();
        assert!(host.is_within(&org));
        assert!(host.is_within(&ou));
        assert!(host.is_within(&host));
        assert!(!ou.is_within(&host));
        assert!(host.is_within(&Dn::root()));
    }

    #[test]
    fn rejects_malformed() {
        assert!(Dn::parse("no-equals").is_err());
        assert!(Dn::parse("=value").is_err());
        assert!(Dn::parse("attr=").is_err());
    }

    #[test]
    fn root_is_empty() {
        let root = Dn::root();
        assert!(root.is_root());
        assert_eq!(root.parent(), None);
        assert_eq!(Dn::parse("").unwrap(), root);
    }
}
