//! Virtual-resource record extensions (paper §2.2.2 and Fig 3).
//!
//! The MicroGrid extends standard GIS host and network records with
//! virtualization fields — *extension by addition*, so the extended
//! records remain subtype-compatible with existing queries:
//!
//! ```text
//! hn=vm.ucsd.edu, ou=Concurrent Systems Architecture Group, ...
//!   Is_Virtual_Resource=Yes
//!   Configuration_Name=Slow_CPU_Configuration
//!   Mapped_Physical_Resource=csag-226-67.ucsd.edu
//!   CpuSpeed=10
//!   MemorySize=100MBytes
//! ```
//!
//! The added fields support identification and grouping of the entries of
//! one virtual Grid among many stored in the same GIS server.

use crate::dn::{Dn, Rdn};
use crate::filter::Filter;
use crate::record::Record;

/// Attribute marking a record as part of a virtual Grid.
pub const IS_VIRTUAL: &str = "Is_Virtual_Resource";
/// Attribute naming the virtual Grid configuration a record belongs to.
pub const CONFIGURATION: &str = "Configuration_Name";
/// Attribute naming the physical resource a virtual host is mapped to.
pub const MAPPED_PHYSICAL: &str = "Mapped_Physical_Resource";

/// Build a virtual host record under `base`, as in Fig 3.
///
/// `cpu_speed_mops` and `memory_bytes` become the standard `CpuSpeed` /
/// `MemorySize` attributes; the virtualization fields are added on top.
pub fn virtual_host_record(
    base: &Dn,
    hostname: &str,
    configuration: &str,
    mapped_physical: &str,
    cpu_speed_mops: f64,
    memory_bytes: u64,
) -> Record {
    Record::new(base.child(Rdn::new("hn", hostname)))
        .with("objectclass", "GridComputeResource")
        .with("hn", hostname)
        .with("CpuSpeed", format!("{cpu_speed_mops}"))
        .with("MemorySize", format!("{memory_bytes}"))
        .with(IS_VIRTUAL, "Yes")
        .with(CONFIGURATION, configuration)
        .with(MAPPED_PHYSICAL, mapped_physical)
}

/// Build a virtual network record under `base`, as in Fig 3.
///
/// `speed` follows the paper's free-form convention, e.g. `"100Mbps 50ms"`.
pub fn virtual_network_record(
    base: &Dn,
    network_number: &str,
    configuration: &str,
    nw_type: &str,
    speed: &str,
) -> Record {
    Record::new(base.child(Rdn::new("nn", network_number)))
        .with("objectclass", "GridNetwork")
        .with("nn", network_number)
        .with("nwType", nw_type)
        .with("speed", speed)
        .with(IS_VIRTUAL, "Yes")
        .with(CONFIGURATION, configuration)
}

/// Filter selecting every record of one virtual Grid configuration.
pub fn configuration_filter(configuration: &str) -> Filter {
    Filter::and([
        Filter::eq(IS_VIRTUAL, "Yes"),
        Filter::eq(CONFIGURATION, configuration),
    ])
}

/// Filter selecting virtual hosts of one configuration.
pub fn virtual_hosts_filter(configuration: &str) -> Filter {
    Filter::and([
        Filter::eq("objectclass", "GridComputeResource"),
        Filter::eq(IS_VIRTUAL, "Yes"),
        Filter::eq(CONFIGURATION, configuration),
    ])
}

/// Parse the `"100Mbps 50ms"` speed convention into
/// `(bits_per_second, latency_seconds)`.
pub fn parse_speed(speed: &str) -> Option<(f64, f64)> {
    let mut bps = None;
    let mut latency = None;
    for tok in speed.split_whitespace() {
        let t = tok.to_ascii_lowercase();
        if let Some(v) = t.strip_suffix("gbps") {
            bps = Some(v.parse::<f64>().ok()? * 1e9);
        } else if let Some(v) = t.strip_suffix("mbps") {
            bps = Some(v.parse::<f64>().ok()? * 1e6);
        } else if let Some(v) = t.strip_suffix("kbps") {
            bps = Some(v.parse::<f64>().ok()? * 1e3);
        } else if let Some(v) = t.strip_suffix("ms") {
            latency = Some(v.parse::<f64>().ok()? * 1e-3);
        } else if let Some(v) = t.strip_suffix("us") {
            latency = Some(v.parse::<f64>().ok()? * 1e-6);
        } else if let Some(v) = t.strip_suffix('s') {
            latency = Some(v.parse::<f64>().ok()?);
        } else {
            return None;
        }
    }
    Some((bps?, latency.unwrap_or(0.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::Directory;

    fn base() -> Dn {
        Dn::parse("ou=Concurrent Systems Architecture Group, o=Grid").unwrap()
    }

    #[test]
    fn fig3_host_record_shape() {
        let r = virtual_host_record(
            &base(),
            "vm.ucsd.edu",
            "Slow_CPU_Configuration",
            "csag-226-67.ucsd.edu",
            10.0,
            100_000_000,
        );
        assert_eq!(
            r.dn.to_string(),
            "hn=vm.ucsd.edu, ou=Concurrent Systems Architecture Group, o=Grid"
        );
        assert_eq!(r.get(IS_VIRTUAL), Some("Yes"));
        assert_eq!(r.get(CONFIGURATION), Some("Slow_CPU_Configuration"));
        assert_eq!(r.get(MAPPED_PHYSICAL), Some("csag-226-67.ucsd.edu"));
        assert_eq!(r.get_f64("CpuSpeed"), Some(10.0));
        assert_eq!(r.get_u64("MemorySize"), Some(100_000_000));
    }

    #[test]
    fn fig3_network_record_shape() {
        let r = virtual_network_record(
            &base(),
            "1.11.11.0",
            "Slow_CPU_Configuration",
            "LAN",
            "100Mbps 50ms",
        );
        assert_eq!(r.get("nwType"), Some("LAN"));
        assert_eq!(r.get("speed"), Some("100Mbps 50ms"));
        assert_eq!(r.get(IS_VIRTUAL), Some("Yes"));
    }

    #[test]
    fn grouping_by_configuration() {
        let mut d = Directory::new();
        for (host, config) in [
            ("vm1.ucsd.edu", "ConfigA"),
            ("vm2.ucsd.edu", "ConfigA"),
            ("vm3.ucsd.edu", "ConfigB"),
        ] {
            d.add(virtual_host_record(
                &base(),
                host,
                config,
                "phys.ucsd.edu",
                10.0,
                1 << 27,
            ))
            .unwrap();
        }
        let hits = d.search_all(&virtual_hosts_filter("ConfigA"));
        assert_eq!(hits.len(), 2);
        let hits_b = d.search_all(&configuration_filter("ConfigB"));
        assert_eq!(hits_b.len(), 1);
    }

    #[test]
    fn extended_records_remain_subtype_compatible() {
        // A legacy query for compute resources must return virtual records
        // too (extension by addition, "a la Pascal, Modula-3, or C++").
        let mut d = Directory::new();
        d.add(virtual_host_record(
            &base(),
            "vm.ucsd.edu",
            "C",
            "p",
            10.0,
            1,
        ))
        .unwrap();
        let legacy = Filter::parse("(objectclass=GridComputeResource)").unwrap();
        assert_eq!(d.search_all(&legacy).len(), 1);
    }

    #[test]
    fn speed_parsing() {
        assert_eq!(parse_speed("100Mbps 50ms"), Some((100e6, 0.05)));
        let (bps, lat) = parse_speed("1.2Gbps 10us").unwrap();
        assert_eq!(bps, 1.2e9);
        assert!((lat - 1e-5).abs() < 1e-12);
        assert_eq!(parse_speed("64kbps"), Some((64e3, 0.0)));
        assert_eq!(parse_speed("fast"), None);
        assert_eq!(parse_speed("50ms"), None); // bandwidth required
    }
}
