//! The directory information tree: DN-addressed record storage with
//! LDAP-style scoped searches.

use std::collections::BTreeMap;

use crate::dn::Dn;
use crate::filter::Filter;
use crate::record::Record;

/// Search scope, mirroring LDAP.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scope {
    /// Only the base entry itself.
    Base,
    /// Immediate children of the base entry.
    OneLevel,
    /// The base entry and everything beneath it.
    Subtree,
}

/// Errors of directory operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DirError {
    /// The target DN already holds an entry.
    AlreadyExists(String),
    /// No entry at the target DN.
    NoSuchEntry(String),
    /// The entry still has children.
    NotLeaf(String),
}

impl std::fmt::Display for DirError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DirError::AlreadyExists(dn) => write!(f, "entry already exists: {dn}"),
            DirError::NoSuchEntry(dn) => write!(f, "no such entry: {dn}"),
            DirError::NotLeaf(dn) => write!(f, "entry has children: {dn}"),
        }
    }
}

impl std::error::Error for DirError {}

/// An in-memory GIS directory.
///
/// Keyed by stringified DN so iteration order (and therefore search-result
/// order) is deterministic.
#[derive(Clone, Debug, Default)]
pub struct Directory {
    entries: BTreeMap<String, Record>,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Self {
        Directory::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the directory has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert a record at its DN.
    ///
    /// Missing ancestors are *not* created (matching LDAP, which requires
    /// parents to exist); for convenience we only require this when the
    /// parent is non-root.
    pub fn add(&mut self, record: Record) -> Result<(), DirError> {
        let key = record.dn.to_string();
        if self.entries.contains_key(&key) {
            return Err(DirError::AlreadyExists(key));
        }
        if let Some(parent) = record.dn.parent() {
            if !parent.is_root() && !self.entries.contains_key(&parent.to_string()) {
                // Auto-create intermediate organizational entries: the
                // paper's workflow drops records into existing GIS servers
                // without bespoke server setup, so we mirror that
                // permissiveness while keeping the tree well-formed.
                self.add(Record::new(parent))?;
            }
        }
        self.entries.insert(key, record);
        Ok(())
    }

    /// Replace the record at a DN (or insert it, creating ancestors).
    // The entry API can't be used here: the miss arm calls `add`, which
    // needs `&mut self` while an `Entry` would still borrow `entries`.
    #[allow(clippy::map_entry)]
    pub fn upsert(&mut self, record: Record) {
        let key = record.dn.to_string();
        if self.entries.contains_key(&key) {
            self.entries.insert(key, record);
        } else {
            self.add(record).expect("upsert cannot collide");
        }
    }

    /// Fetch the record at a DN.
    pub fn get(&self, dn: &Dn) -> Option<&Record> {
        self.entries.get(&dn.to_string())
    }

    /// Mutable access to the record at a DN.
    pub fn get_mut(&mut self, dn: &Dn) -> Option<&mut Record> {
        self.entries.get_mut(&dn.to_string())
    }

    /// Delete a leaf entry.
    pub fn delete(&mut self, dn: &Dn) -> Result<Record, DirError> {
        let key = dn.to_string();
        if !self.entries.contains_key(&key) {
            return Err(DirError::NoSuchEntry(key));
        }
        let has_children = self.entries.values().any(|r| r.dn.is_child_of(dn));
        if has_children {
            return Err(DirError::NotLeaf(key));
        }
        Ok(self.entries.remove(&key).expect("checked above"))
    }

    /// Scoped, filtered search under `base`. Results are in DN order.
    pub fn search(&self, base: &Dn, scope: Scope, filter: &Filter) -> Vec<&Record> {
        self.entries
            .values()
            .filter(|r| match scope {
                Scope::Base => &r.dn == base,
                Scope::OneLevel => r.dn.is_child_of(base),
                Scope::Subtree => r.dn.is_within(base),
            })
            .filter(|r| filter.matches(r))
            .collect()
    }

    /// Search the whole tree.
    pub fn search_all(&self, filter: &Filter) -> Vec<&Record> {
        self.search(&Dn::root(), Scope::Subtree, filter)
    }

    /// Iterate all records in DN order.
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.entries.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    fn sample() -> Directory {
        let mut d = Directory::new();
        d.add(Record::new(dn("o=Grid"))).unwrap();
        d.add(Record::new(dn("ou=CSAG, o=Grid")).with("ou", "CSAG"))
            .unwrap();
        for (host, speed, virt) in [
            ("csag-226-67.ucsd.edu", "533", "No"),
            ("vm.ucsd.edu", "10", "Yes"),
            ("vm2.ucsd.edu", "20", "Yes"),
        ] {
            d.add(
                Record::new(dn(&format!("hn={host}, ou=CSAG, o=Grid")))
                    .with("objectclass", "GridComputeResource")
                    .with("hn", host)
                    .with("CpuSpeed", speed)
                    .with("Is_Virtual_Resource", virt),
            )
            .unwrap();
        }
        d
    }

    #[test]
    fn add_get_delete() {
        let mut d = sample();
        assert_eq!(d.len(), 5);
        let h = dn("hn=vm.ucsd.edu, ou=CSAG, o=Grid");
        assert_eq!(d.get(&h).unwrap().get("CpuSpeed"), Some("10"));
        d.delete(&h).unwrap();
        assert!(d.get(&h).is_none());
        assert_eq!(d.delete(&h), Err(DirError::NoSuchEntry(h.to_string())));
    }

    #[test]
    fn duplicate_add_rejected() {
        let mut d = sample();
        let r = Record::new(dn("ou=CSAG, o=Grid"));
        assert!(matches!(d.add(r), Err(DirError::AlreadyExists(_))));
    }

    #[test]
    fn delete_nonleaf_rejected() {
        let mut d = sample();
        assert!(matches!(
            d.delete(&dn("ou=CSAG, o=Grid")),
            Err(DirError::NotLeaf(_))
        ));
    }

    #[test]
    fn ancestors_autocreated() {
        let mut d = Directory::new();
        d.add(Record::new(dn("hn=deep, ou=a, ou=b, o=Grid")))
            .unwrap();
        assert!(d.get(&dn("ou=a, ou=b, o=Grid")).is_some());
        assert!(d.get(&dn("ou=b, o=Grid")).is_some());
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn scoped_search() {
        let d = sample();
        let base = dn("ou=CSAG, o=Grid");
        let any = Filter::parse("(&)").unwrap();
        assert_eq!(d.search(&base, Scope::Base, &any).len(), 1);
        assert_eq!(d.search(&base, Scope::OneLevel, &any).len(), 3);
        assert_eq!(d.search(&base, Scope::Subtree, &any).len(), 4);
    }

    #[test]
    fn filtered_search_finds_virtual_hosts() {
        let d = sample();
        let f =
            Filter::parse("(&(objectclass=GridComputeResource)(Is_Virtual_Resource=Yes))").unwrap();
        let hits = d.search_all(&f);
        assert_eq!(hits.len(), 2);
        assert!(hits
            .iter()
            .all(|r| r.get("Is_Virtual_Resource") == Some("Yes")));
    }

    #[test]
    fn legacy_query_ignores_extension_fields() {
        // Subtype compatibility (paper §2.2.2): a pre-virtualization query
        // for compute resources sees virtual and physical records alike.
        let d = sample();
        let f = Filter::parse("(objectclass=GridComputeResource)").unwrap();
        assert_eq!(d.search_all(&f).len(), 3);
    }

    #[test]
    fn search_results_deterministic_order() {
        let d = sample();
        let f = Filter::parse("(is_virtual_resource=*)").unwrap();
        let names: Vec<&str> = d
            .search_all(&f)
            .iter()
            .map(|r| r.get("hn").unwrap())
            .collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }
}
