//! LDAP-style search filters with a string syntax:
//! `(&(objectclass=host)(Is_Virtual_Resource=Yes))`,
//! `(|(nwType=LAN)(nwType=WAN))`, `(!(is_virtual_resource=*))`,
//! `(hn=vm*.ucsd.edu)`.
//!
//! Matching follows LDAP `caseIgnoreMatch`: attribute names and values
//! compare case-insensitively.

use std::fmt;

use crate::record::Record;

/// A search filter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Filter {
    /// `(attr=value)` — some value of the attribute equals `value`.
    Eq(String, String),
    /// `(attr=*)` — the attribute is present.
    Present(String),
    /// `(attr=ab*cd*ef)` — substring match with `*` wildcards.
    Substring(String, Vec<String>, bool, bool),
    /// `(&(f1)(f2)...)` — all must match; `(&)` is true.
    And(Vec<Filter>),
    /// `(|(f1)(f2)...)` — any must match; `(|)` is false.
    Or(Vec<Filter>),
    /// `(!(f))` — negation.
    Not(Box<Filter>),
}

/// Error parsing a filter string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterParseError(pub String);

impl fmt::Display for FilterParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid filter: {}", self.0)
    }
}

impl std::error::Error for FilterParseError {}

impl Filter {
    /// Equality filter.
    pub fn eq(attr: impl AsRef<str>, value: impl Into<String>) -> Filter {
        Filter::Eq(attr.as_ref().to_ascii_lowercase(), value.into())
    }

    /// Presence filter.
    pub fn present(attr: impl AsRef<str>) -> Filter {
        Filter::Present(attr.as_ref().to_ascii_lowercase())
    }

    /// Conjunction.
    pub fn and(filters: impl IntoIterator<Item = Filter>) -> Filter {
        Filter::And(filters.into_iter().collect())
    }

    /// Disjunction.
    pub fn or(filters: impl IntoIterator<Item = Filter>) -> Filter {
        Filter::Or(filters.into_iter().collect())
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Filter) -> Filter {
        Filter::Not(Box::new(f))
    }

    /// Evaluate against a record.
    pub fn matches(&self, record: &Record) -> bool {
        match self {
            Filter::Eq(attr, value) => record
                .get_all(attr)
                .iter()
                .any(|v| v.eq_ignore_ascii_case(value)),
            Filter::Present(attr) => record.has(attr),
            Filter::Substring(attr, parts, anchored_start, anchored_end) => record
                .get_all(attr)
                .iter()
                .any(|v| substring_match(v, parts, *anchored_start, *anchored_end)),
            Filter::And(fs) => fs.iter().all(|f| f.matches(record)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(record)),
            Filter::Not(f) => !f.matches(record),
        }
    }

    /// Parse the string syntax.
    pub fn parse(s: &str) -> Result<Filter, FilterParseError> {
        let mut p = Parser {
            input: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let f = p.filter()?;
        p.skip_ws();
        if p.pos != p.input.len() {
            return Err(FilterParseError(format!(
                "trailing input at byte {}: {s:?}",
                p.pos
            )));
        }
        Ok(f)
    }
}

fn substring_match(
    value: &str,
    parts: &[String],
    anchored_start: bool,
    anchored_end: bool,
) -> bool {
    let v = value.to_ascii_lowercase();
    let mut pos = 0usize;
    let n = parts.len();
    for (i, part) in parts.iter().enumerate() {
        let p = part.to_ascii_lowercase();
        let is_first = i == 0;
        let is_last = i + 1 == n;
        if is_last && anchored_end {
            // The final part must sit at the end, without overlapping the
            // region already consumed by earlier parts.
            return v.ends_with(&p) && v.len() >= pos + p.len();
        }
        if is_first && anchored_start {
            if !v[pos..].starts_with(&p) {
                return false;
            }
            pos += p.len();
        } else {
            match v[pos..].find(&p) {
                Some(off) => pos += off + p.len(),
                None => return false,
            }
        }
    }
    true
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), FilterParseError> {
        if self.pos < self.input.len() && self.input[self.pos] == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(FilterParseError(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn filter(&mut self) -> Result<Filter, FilterParseError> {
        self.expect(b'(')?;
        let f = match self.peek() {
            Some(b'&') => {
                self.pos += 1;
                Filter::And(self.filter_list()?)
            }
            Some(b'|') => {
                self.pos += 1;
                Filter::Or(self.filter_list()?)
            }
            Some(b'!') => {
                self.pos += 1;
                Filter::Not(Box::new(self.filter()?))
            }
            _ => self.comparison()?,
        };
        self.expect(b')')?;
        Ok(f)
    }

    fn filter_list(&mut self) -> Result<Vec<Filter>, FilterParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b'(') {
                out.push(self.filter()?);
            } else {
                return Ok(out);
            }
        }
    }

    fn comparison(&mut self) -> Result<Filter, FilterParseError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b != b'=' && b != b')' && b != b'(')
        {
            self.pos += 1;
        }
        if self.peek() != Some(b'=') {
            return Err(FilterParseError(format!(
                "expected '=' in comparison at byte {}",
                self.pos
            )));
        }
        let attr = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| FilterParseError("non-utf8 attribute".into()))?
            .trim()
            .to_ascii_lowercase();
        if attr.is_empty() {
            return Err(FilterParseError("empty attribute name".into()));
        }
        self.pos += 1; // consume '='
        let vstart = self.pos;
        while self.peek().is_some_and(|b| b != b')') {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.input[vstart..self.pos])
            .map_err(|_| FilterParseError("non-utf8 value".into()))?
            .trim();
        if raw == "*" {
            return Ok(Filter::Present(attr));
        }
        if raw.contains('*') {
            let anchored_start = !raw.starts_with('*');
            let anchored_end = !raw.ends_with('*');
            let parts: Vec<String> = raw
                .split('*')
                .filter(|p| !p.is_empty())
                .map(str::to_string)
                .collect();
            if parts.is_empty() {
                return Ok(Filter::Present(attr));
            }
            return Ok(Filter::Substring(attr, parts, anchored_start, anchored_end));
        }
        if raw.is_empty() {
            return Err(FilterParseError("empty value".into()));
        }
        Ok(Filter::Eq(attr, raw.to_string()))
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Filter::Eq(a, v) => write!(f, "({a}={v})"),
            Filter::Present(a) => write!(f, "({a}=*)"),
            Filter::Substring(a, parts, s, e) => {
                write!(f, "({a}=")?;
                if !s {
                    write!(f, "*")?;
                }
                write!(f, "{}", parts.join("*"))?;
                if !e {
                    write!(f, "*")?;
                }
                write!(f, ")")
            }
            Filter::And(fs) => {
                write!(f, "(&")?;
                for x in fs {
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Filter::Or(fs) => {
                write!(f, "(|")?;
                for x in fs {
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Filter::Not(x) => write!(f, "(!{x})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dn::Dn;

    fn host_record() -> Record {
        Record::new(Dn::parse("hn=vm.ucsd.edu, o=Grid").unwrap())
            .with("objectclass", "GridComputeResource")
            .with("Is_Virtual_Resource", "Yes")
            .with("CpuSpeed", "10")
            .with("hn", "vm.ucsd.edu")
    }

    #[test]
    fn eq_matches_case_insensitively() {
        let r = host_record();
        assert!(Filter::parse("(is_virtual_resource=YES)")
            .unwrap()
            .matches(&r));
        assert!(!Filter::parse("(is_virtual_resource=No)")
            .unwrap()
            .matches(&r));
    }

    #[test]
    fn presence() {
        let r = host_record();
        assert!(Filter::parse("(cpuspeed=*)").unwrap().matches(&r));
        assert!(!Filter::parse("(nwtype=*)").unwrap().matches(&r));
    }

    #[test]
    fn and_or_not() {
        let r = host_record();
        assert!(
            Filter::parse("(&(objectclass=GridComputeResource)(Is_Virtual_Resource=Yes))")
                .unwrap()
                .matches(&r)
        );
        assert!(Filter::parse("(|(cpuspeed=99)(cpuspeed=10))")
            .unwrap()
            .matches(&r));
        assert!(Filter::parse("(!(cpuspeed=99))").unwrap().matches(&r));
        assert!(!Filter::parse("(&(cpuspeed=10)(cpuspeed=99))")
            .unwrap()
            .matches(&r));
    }

    #[test]
    fn empty_and_is_true_empty_or_is_false() {
        let r = host_record();
        assert!(Filter::parse("(&)").unwrap().matches(&r));
        assert!(!Filter::parse("(|)").unwrap().matches(&r));
    }

    #[test]
    fn substring_wildcards() {
        let r = host_record();
        assert!(Filter::parse("(hn=vm*)").unwrap().matches(&r));
        assert!(Filter::parse("(hn=*ucsd*)").unwrap().matches(&r));
        assert!(Filter::parse("(hn=*edu)").unwrap().matches(&r));
        assert!(Filter::parse("(hn=vm*edu)").unwrap().matches(&r));
        assert!(!Filter::parse("(hn=vm*com)").unwrap().matches(&r));
        assert!(!Filter::parse("(hn=xx*)").unwrap().matches(&r));
    }

    #[test]
    fn parse_errors() {
        assert!(Filter::parse("").is_err());
        assert!(Filter::parse("(novalue)").is_err());
        assert!(Filter::parse("(a=b").is_err());
        assert!(Filter::parse("(a=b))").is_err());
        assert!(Filter::parse("(=b)").is_err());
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for s in [
            "(a=b)",
            "(a=*)",
            "(&(a=b)(c=d))",
            "(|(a=b)(!(c=d)))",
            "(hn=vm*edu)",
        ] {
            let f = Filter::parse(s).unwrap();
            let f2 = Filter::parse(&f.to_string()).unwrap();
            assert_eq!(f, f2);
        }
    }
}
