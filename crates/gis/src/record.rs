//! GIS records: multi-valued attribute sets addressed by DN.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::dn::Dn;

/// One directory entry.
///
/// Attribute names are case-insensitive (normalized to lowercase);
/// attributes are multi-valued, in insertion order.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// Where this record lives in the directory tree.
    pub dn: Dn,
    attrs: BTreeMap<String, Vec<String>>,
}

impl Record {
    /// Create an empty record at `dn`.
    pub fn new(dn: Dn) -> Self {
        Record {
            dn,
            attrs: BTreeMap::new(),
        }
    }

    /// Add a value to an attribute (keeps existing values).
    pub fn add(&mut self, attr: impl AsRef<str>, value: impl Into<String>) -> &mut Self {
        self.attrs
            .entry(attr.as_ref().to_ascii_lowercase())
            .or_default()
            .push(value.into());
        self
    }

    /// Builder-style [`Record::add`].
    pub fn with(mut self, attr: impl AsRef<str>, value: impl Into<String>) -> Self {
        self.add(attr, value);
        self
    }

    /// Replace all values of an attribute.
    pub fn set(&mut self, attr: impl AsRef<str>, value: impl Into<String>) -> &mut Self {
        self.attrs
            .insert(attr.as_ref().to_ascii_lowercase(), vec![value.into()]);
        self
    }

    /// Remove an attribute entirely; returns its old values.
    pub fn remove(&mut self, attr: impl AsRef<str>) -> Option<Vec<String>> {
        self.attrs.remove(&attr.as_ref().to_ascii_lowercase())
    }

    /// First value of an attribute.
    pub fn get(&self, attr: impl AsRef<str>) -> Option<&str> {
        self.attrs
            .get(&attr.as_ref().to_ascii_lowercase())
            .and_then(|v| v.first())
            .map(String::as_str)
    }

    /// All values of an attribute.
    pub fn get_all(&self, attr: impl AsRef<str>) -> &[String] {
        self.attrs
            .get(&attr.as_ref().to_ascii_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// True if the attribute exists with at least one value.
    pub fn has(&self, attr: impl AsRef<str>) -> bool {
        !self.get_all(attr).is_empty()
    }

    /// Iterate `(attr, values)` pairs in attribute order.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &[String])> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Number of distinct attributes.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// Parse the first value of an attribute as a float.
    pub fn get_f64(&self, attr: impl AsRef<str>) -> Option<f64> {
        self.get(attr)?.trim().parse().ok()
    }

    /// Parse the first value of an attribute as an unsigned integer.
    pub fn get_u64(&self, attr: impl AsRef<str>) -> Option<u64> {
        self.get(attr)?.trim().parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> Record {
        Record::new(Dn::parse("hn=vm.ucsd.edu, o=Grid").unwrap())
            .with("objectclass", "GridComputeResource")
            .with("CpuSpeed", "10")
            .with("MemorySize", "100000000")
    }

    #[test]
    fn get_is_case_insensitive() {
        let r = rec();
        assert_eq!(r.get("cpuspeed"), Some("10"));
        assert_eq!(r.get("CPUSPEED"), Some("10"));
        assert_eq!(r.get("missing"), None);
    }

    #[test]
    fn multi_valued_attributes() {
        let mut r = rec();
        r.add("objectclass", "VirtualResource");
        assert_eq!(r.get_all("objectclass").len(), 2);
        assert_eq!(r.get("objectclass"), Some("GridComputeResource"));
    }

    #[test]
    fn set_replaces_values() {
        let mut r = rec();
        r.add("CpuSpeed", "20");
        r.set("CpuSpeed", "30");
        assert_eq!(r.get_all("CpuSpeed"), ["30"]);
    }

    #[test]
    fn numeric_parsing() {
        let r = rec();
        assert_eq!(r.get_f64("CpuSpeed"), Some(10.0));
        assert_eq!(r.get_u64("MemorySize"), Some(100_000_000));
        assert_eq!(r.get_f64("objectclass"), None);
    }

    #[test]
    fn remove_deletes_attribute() {
        let mut r = rec();
        assert!(r.remove("CpuSpeed").is_some());
        assert!(!r.has("CpuSpeed"));
        assert!(r.remove("CpuSpeed").is_none());
    }

    #[test]
    fn serde_roundtrip() {
        let r = rec();
        let json = serde_json::to_string(&r).unwrap();
        let back: Record = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
