//! Property-based tests of the information service.

use proptest::prelude::*;

use mgrid_gis::{Directory, Dn, Filter, Record, Scope};

/// A tiny generator of random filters over attributes a..d / values x..z.
fn arb_filter() -> impl Strategy<Value = Filter> {
    let leaf = prop_oneof![
        ("[a-d]", "[x-z]{1,2}").prop_map(|(a, v)| Filter::eq(a, v)),
        "[a-d]".prop_map(Filter::present),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Filter::and),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Filter::or),
            inner.prop_map(Filter::not),
        ]
    })
}

fn arb_record(idx: usize) -> impl Strategy<Value = Record> {
    prop::collection::vec(("[a-d]", "[x-z]{1,2}"), 0..6).prop_map(move |attrs| {
        let mut r = Record::new(Dn::parse(&format!("cn=e{idx}, o=Grid")).unwrap());
        for (k, v) in attrs {
            r.add(k, v);
        }
        r
    })
}

proptest! {
    /// Display -> parse round-trips every generated filter.
    #[test]
    fn filter_display_parse_roundtrip(f in arb_filter()) {
        let text = f.to_string();
        let back = Filter::parse(&text).unwrap();
        prop_assert_eq!(back, f);
    }

    /// Directory search equals a naive linear scan with the same filter.
    #[test]
    fn search_equals_naive_scan(
        recs in prop::collection::vec(arb_record(0), 0..8),
        f in arb_filter(),
    ) {
        let mut dir = Directory::new();
        let mut naive = Vec::new();
        for (i, mut r) in recs.into_iter().enumerate() {
            r.dn = Dn::parse(&format!("cn=e{i}, o=Grid")).unwrap();
            naive.push(r.clone());
            dir.upsert(r);
        }
        let hits: Vec<String> = dir
            .search(&Dn::parse("o=Grid").unwrap(), Scope::OneLevel, &f)
            .into_iter()
            .map(|r| r.dn.to_string())
            .collect();
        let mut expected: Vec<String> = naive
            .iter()
            .filter(|r| f.matches(r))
            .map(|r| r.dn.to_string())
            .collect();
        expected.sort();
        prop_assert_eq!(hits, expected);
    }

    /// Double negation is identity on every record.
    #[test]
    fn double_negation(f in arb_filter(), rec in arb_record(1)) {
        let nn = Filter::not(Filter::not(f.clone()));
        prop_assert_eq!(f.matches(&rec), nn.matches(&rec));
    }

    /// Scope laws: Base ⊆ Subtree and OneLevel ⊆ Subtree for any base.
    #[test]
    fn scope_containment(recs in prop::collection::vec(arb_record(2), 1..8)) {
        let mut dir = Directory::new();
        for (i, mut r) in recs.into_iter().enumerate() {
            let depth = i % 3;
            let dn = match depth {
                0 => format!("cn=e{i}, o=Grid"),
                1 => format!("cn=e{i}, ou=mid, o=Grid"),
                _ => format!("cn=e{i}, ou=deep, ou=mid, o=Grid"),
            };
            r.dn = Dn::parse(&dn).unwrap();
            dir.upsert(r);
        }
        let any = Filter::and([]);
        for base in ["o=Grid", "ou=mid, o=Grid"] {
            let base = Dn::parse(base).unwrap();
            let base_hits = dir.search(&base, Scope::Base, &any).len();
            let one = dir.search(&base, Scope::OneLevel, &any).len();
            let sub = dir.search(&base, Scope::Subtree, &any).len();
            prop_assert!(base_hits <= sub);
            prop_assert!(one <= sub);
        }
    }
}
