//! # mgrid-faults — deterministic, scenario-scripted fault injection
//!
//! The healthy virtual Grid that `microgrid` assembles is only half of the
//! paper's what-if promise: real Grid experiments ask what happens when the
//! vBNS drops packets, a site partitions away, or a compute host dies
//! mid-job. This crate supplies the scenario layer for those questions.
//!
//! A [`FaultPlan`] is a serializable script of timed [`FaultEvent`]s —
//! link outages and partitions, probabilistic per-link loss / corruption /
//! reordering, virtual-host crash and restart, and transient CPU-capacity
//! degradation. At grid bring-up the plan is handed to [`spawn_injector`],
//! a simulation daemon that replays the script on the simulated clock and
//! publishes each [`FaultKind`] on a [`FaultBus`]. The resource models
//! (`netsim`, `hostsim`) subscribe and reconfigure themselves; they never
//! poll.
//!
//! ## Determinism
//!
//! Everything here is driven by the simulation clock and, for the
//! probabilistic link impairments, by `desim::rng` streams forked from the
//! grid seed inside the consuming model. A plan therefore perturbs a run
//! the same way every time: one config + one seed = one fault timeline =
//! one trace (see `docs/FAULTS.md`).

#![warn(missing_docs)]

use std::cell::RefCell;
use std::rc::Rc;

use mgrid_desim::time::{SimDuration, SimTime};
use mgrid_desim::{obs, spawn_daemon, Event};
use serde::{Deserialize, Serialize};

/// One kind of injected fault.
///
/// Link-level kinds name both endpoints of a configured duplex link; the
/// impairment applies to both directions. Host-level kinds name a virtual
/// host. Probabilities are expressed per-mille (`0..=1000`) so plans
/// serialize exactly and compare bitwise.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Take the duplex link `a`–`b` down: every packet offered to either
    /// direction is dropped.
    LinkDown {
        /// One endpoint (virtual host or router name).
        a: String,
        /// The other endpoint.
        b: String,
    },
    /// Bring the duplex link `a`–`b` back up.
    LinkUp {
        /// One endpoint.
        a: String,
        /// The other endpoint.
        b: String,
    },
    /// Partition the network: every link with one endpoint in `side_a`
    /// and the other in `side_b` goes down.
    Partition {
        /// Node names on one side of the cut.
        side_a: Vec<String>,
        /// Node names on the other side.
        side_b: Vec<String>,
    },
    /// Heal a partition: every link crossing the cut comes back up.
    HealPartition {
        /// Node names on one side of the cut.
        side_a: Vec<String>,
        /// Node names on the other side.
        side_b: Vec<String>,
    },
    /// Drop each packet offered to the link with probability
    /// `per_mille / 1000` (0 disables).
    LinkLoss {
        /// One endpoint.
        a: String,
        /// The other endpoint.
        b: String,
        /// Loss probability in thousandths.
        per_mille: u32,
    },
    /// Corrupt each packet in flight with probability `per_mille / 1000`:
    /// the packet consumes its transmission time but is discarded on
    /// arrival, as a checksum failure would.
    LinkCorrupt {
        /// One endpoint.
        a: String,
        /// The other endpoint.
        b: String,
        /// Corruption probability in thousandths.
        per_mille: u32,
    },
    /// Swap adjacent in-flight packets with probability
    /// `per_mille / 1000`, modeling out-of-order delivery.
    LinkReorder {
        /// One endpoint.
        a: String,
        /// The other endpoint.
        b: String,
        /// Reorder probability in thousandths.
        per_mille: u32,
    },
    /// Crash a virtual host: every process on it halts permanently and
    /// new CPU requests never complete until a restart.
    HostCrash {
        /// Virtual host name.
        host: String,
    },
    /// Restart a crashed virtual host (already-crashed processes stay
    /// dead; new processes may be spawned).
    HostRestart {
        /// Virtual host name.
        host: String,
    },
    /// Degrade a host's CPU capacity to `factor` of nominal (in `(0, 1]`).
    CpuDegrade {
        /// Virtual host name.
        host: String,
        /// Remaining capacity fraction.
        factor: f64,
    },
    /// Restore a degraded host to full CPU capacity.
    CpuRestore {
        /// Virtual host name.
        host: String,
    },
}

impl FaultKind {
    /// Stable snake_case name of the kind, used in trace events and the
    /// `faults.<kind>` metric keys.
    pub const fn name(&self) -> &'static str {
        match self {
            FaultKind::LinkDown { .. } => "link_down",
            FaultKind::LinkUp { .. } => "link_up",
            FaultKind::Partition { .. } => "partition",
            FaultKind::HealPartition { .. } => "heal_partition",
            FaultKind::LinkLoss { .. } => "link_loss",
            FaultKind::LinkCorrupt { .. } => "link_corrupt",
            FaultKind::LinkReorder { .. } => "link_reorder",
            FaultKind::HostCrash { .. } => "host_crash",
            FaultKind::HostRestart { .. } => "host_restart",
            FaultKind::CpuDegrade { .. } => "cpu_degrade",
            FaultKind::CpuRestore { .. } => "cpu_restore",
        }
    }

    /// Per-kind counter key in the metrics registry.
    pub const fn metric_name(&self) -> &'static str {
        match self {
            FaultKind::LinkDown { .. } => "faults.link_down",
            FaultKind::LinkUp { .. } => "faults.link_up",
            FaultKind::Partition { .. } => "faults.partition",
            FaultKind::HealPartition { .. } => "faults.heal_partition",
            FaultKind::LinkLoss { .. } => "faults.link_loss",
            FaultKind::LinkCorrupt { .. } => "faults.link_corrupt",
            FaultKind::LinkReorder { .. } => "faults.link_reorder",
            FaultKind::HostCrash { .. } => "faults.host_crash",
            FaultKind::HostRestart { .. } => "faults.host_restart",
            FaultKind::CpuDegrade { .. } => "faults.cpu_degrade",
            FaultKind::CpuRestore { .. } => "faults.cpu_restore",
        }
    }

    /// Human-readable target description for trace output.
    pub fn target(&self) -> String {
        match self {
            FaultKind::LinkDown { a, b }
            | FaultKind::LinkUp { a, b }
            | FaultKind::LinkLoss { a, b, .. }
            | FaultKind::LinkCorrupt { a, b, .. }
            | FaultKind::LinkReorder { a, b, .. } => format!("{a}-{b}"),
            FaultKind::Partition { side_a, side_b }
            | FaultKind::HealPartition { side_a, side_b } => {
                format!("{}|{}", side_a.join(","), side_b.join(","))
            }
            FaultKind::HostCrash { host }
            | FaultKind::HostRestart { host }
            | FaultKind::CpuDegrade { host, .. }
            | FaultKind::CpuRestore { host } => host.clone(),
        }
    }

    /// Every node name this fault refers to, for referential validation
    /// against a grid configuration.
    pub fn node_refs(&self) -> Vec<&str> {
        match self {
            FaultKind::LinkDown { a, b }
            | FaultKind::LinkUp { a, b }
            | FaultKind::LinkLoss { a, b, .. }
            | FaultKind::LinkCorrupt { a, b, .. }
            | FaultKind::LinkReorder { a, b, .. } => vec![a, b],
            FaultKind::Partition { side_a, side_b }
            | FaultKind::HealPartition { side_a, side_b } => side_a
                .iter()
                .chain(side_b.iter())
                .map(String::as_str)
                .collect(),
            FaultKind::HostCrash { host }
            | FaultKind::HostRestart { host }
            | FaultKind::CpuDegrade { host, .. }
            | FaultKind::CpuRestore { host } => vec![host],
        }
    }

    /// True if the fault targets a virtual host (rather than a link).
    pub const fn is_host_fault(&self) -> bool {
        matches!(
            self,
            FaultKind::HostCrash { .. }
                | FaultKind::HostRestart { .. }
                | FaultKind::CpuDegrade { .. }
                | FaultKind::CpuRestore { .. }
        )
    }

    /// Check parameter ranges (probabilities in `0..=1000`, degradation
    /// factors in `(0, 1]`). Returns a description of the first violation.
    pub fn check_params(&self) -> Result<(), String> {
        match self {
            FaultKind::LinkLoss { per_mille, .. }
            | FaultKind::LinkCorrupt { per_mille, .. }
            | FaultKind::LinkReorder { per_mille, .. }
                if *per_mille > 1000 =>
            {
                Err(format!("{}: per_mille {per_mille} > 1000", self.name()))
            }
            FaultKind::CpuDegrade { factor, .. } if !(*factor > 0.0 && *factor <= 1.0) => {
                Err(format!("{}: factor {factor} outside (0, 1]", self.name()))
            }
            _ => Ok(()),
        }
    }
}

/// One scheduled fault: `kind` fires at simulated time `at` (measured
/// from the start of the run).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Offset from simulation start.
    pub at: SimDuration,
    /// What happens.
    pub kind: FaultKind,
}

/// A complete fault script for one run.
///
/// Events need not be pre-sorted; the injector orders them by `at`,
/// breaking ties by plan position, so the scenario file reads naturally.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled faults.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add an event, builder-style.
    pub fn at(mut self, at: SimDuration, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// True if the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Check parameter ranges of every event (see
    /// [`FaultKind::check_params`]).
    pub fn check_params(&self) -> Result<(), String> {
        for ev in &self.events {
            ev.kind.check_params()?;
        }
        Ok(())
    }

    /// Events sorted by fire time (stable: plan order breaks ties).
    pub fn sorted_events(&self) -> Vec<FaultEvent> {
        let mut evs = self.events.clone();
        evs.sort_by_key(|e| e.at);
        evs
    }

    /// Round every event time **up** to the next multiple of `epoch`,
    /// for sharded runs (see `docs/PARALLEL.md`).
    ///
    /// Under the sharded engine each logical process carries a full
    /// replica of the plan and injects it locally. Aligning injection
    /// times to the conservative barrier epochs guarantees a fault never
    /// lands inside an epoch window some shard has already committed:
    /// every replica observes the state change at the same barrier, so
    /// the sharded timeline matches the sequential one event for event.
    /// Events already on a boundary (including `at == 0`) are unchanged;
    /// relative order within the plan is preserved because rounding up
    /// is monotone.
    ///
    /// ```
    /// use mgrid_desim::time::SimDuration;
    /// use mgrid_faults::{FaultKind, FaultPlan};
    ///
    /// let plan = FaultPlan::new().at(
    ///     SimDuration::from_millis(7),
    ///     FaultKind::HostCrash { host: "n0".into() },
    /// );
    /// let aligned = plan.align_to_epochs(SimDuration::from_millis(5));
    /// assert_eq!(aligned.events[0].at, SimDuration::from_millis(10));
    /// ```
    #[must_use]
    pub fn align_to_epochs(&self, epoch: SimDuration) -> FaultPlan {
        let step = epoch.as_nanos().max(1);
        let events = self
            .events
            .iter()
            .map(|ev| {
                let ns = ev.at.as_nanos();
                let aligned = ns.div_ceil(step) * step;
                FaultEvent {
                    at: SimDuration::from_nanos(aligned),
                    kind: ev.kind.clone(),
                }
            })
            .collect();
        FaultPlan { events }
    }

    /// The instants at which this plan changes link *connectivity*
    /// (`LinkDown` / `LinkUp` / `Partition` / `HealPartition`), sorted
    /// and deduplicated.
    ///
    /// These are exactly the instants at which a shard's adaptive
    /// lookahead claim can stop holding: a replica publishing advice
    /// from the live cut state (`Network::outgoing_cut_lookahead` in
    /// `mgrid-netsim`) uses the next entry after its current time as the
    /// advice's `valid_until` floor. The event-driven engine never lets
    /// any window cross the earliest published floor, so every replica
    /// re-samples its claim before a connectivity change could
    /// invalidate it — no fixed-stride alignment of the plan required.
    /// Impairment-only events (loss, corruption, reordering, host
    /// faults) don't move packets across the cut any faster and are not
    /// floors.
    pub fn link_change_times(&self) -> Vec<SimDuration> {
        let mut times: Vec<SimDuration> = self
            .events
            .iter()
            .filter(|ev| {
                matches!(
                    ev.kind,
                    FaultKind::LinkDown { .. }
                        | FaultKind::LinkUp { .. }
                        | FaultKind::Partition { .. }
                        | FaultKind::HealPartition { .. }
                )
            })
            .map(|ev| ev.at)
            .collect();
        times.sort_unstable();
        times.dedup();
        times
    }

    /// Round every event time **up** to the next floor in `floors` (a
    /// sorted list of synchronization instants); events past the last
    /// floor are left unchanged.
    ///
    /// This generalizes [`FaultPlan::align_to_epochs`] to the
    /// event-driven engine, whose barriers land at event-driven instants
    /// rather than on a fixed stride: when a run derives its windows
    /// from dynamic floors (advice `valid_until` values, checkpoint
    /// schedules), aligning the plan to those same floors guarantees no
    /// shard has committed a window past a fault before it fires.
    /// Aligning to the plan's own [`FaultPlan::link_change_times`] is a
    /// no-op — every connectivity event already sits on its own floor —
    /// which is why sharded runs can inject scripted faults at their
    /// exact times.
    #[must_use]
    pub fn align_to_floors(&self, floors: &[SimDuration]) -> FaultPlan {
        let events = self
            .events
            .iter()
            .map(|ev| {
                let at = floors
                    .iter()
                    .copied()
                    .find(|&f| f >= ev.at)
                    .unwrap_or(ev.at);
                FaultEvent {
                    at,
                    kind: ev.kind.clone(),
                }
            })
            .collect();
        FaultPlan { events }
    }
}

type Subscriber = Box<dyn Fn(&FaultKind)>;

/// The distribution channel between the injector and the resource models.
///
/// Models subscribe a closure at grid bring-up; [`spawn_injector`] calls
/// every subscriber, in subscription order, each time a fault fires.
/// Single-threaded like everything in the simulator — `Rc`, not `Arc`.
#[derive(Clone, Default)]
pub struct FaultBus {
    subs: Rc<RefCell<Vec<Subscriber>>>,
}

impl FaultBus {
    /// A bus with no subscribers.
    pub fn new() -> Self {
        FaultBus::default()
    }

    /// Register `f` to be called on every published fault.
    pub fn subscribe(&self, f: impl Fn(&FaultKind) + 'static) {
        self.subs.borrow_mut().push(Box::new(f));
    }

    /// Deliver `kind` to every subscriber in subscription order.
    pub fn publish(&self, kind: &FaultKind) {
        // Subscribers may not re-enter subscribe(); hold the borrow only
        // across the iteration.
        for sub in self.subs.borrow().iter() {
            sub(kind);
        }
    }

    /// Number of registered subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subs.borrow().len()
    }
}

/// Spawn the injector daemon: replay `plan` on the simulation clock,
/// publishing each fault on `bus` at its scheduled time.
///
/// Runs as a daemon so a plan stretching past the workload's end never
/// keeps the simulation alive. Each injection increments
/// `faults.injected` plus the per-kind `faults.<kind>` counter and emits
/// an [`Event::FaultInjected`] trace event.
pub fn spawn_injector(plan: &FaultPlan, bus: FaultBus) {
    let events = plan.sorted_events();
    if events.is_empty() {
        return;
    }
    spawn_daemon(async move {
        for ev in events {
            mgrid_desim::sleep_until(SimTime::ZERO + ev.at).await;
            obs::count("faults.injected", 1);
            obs::count(ev.kind.metric_name(), 1);
            obs::emit(|| Event::FaultInjected {
                fault: ev.kind.name(),
                target: ev.kind.target(),
            });
            bus.publish(&ev.kind);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgrid_desim::{now, sleep, Simulation};

    fn down(a: &str, b: &str) -> FaultKind {
        FaultKind::LinkDown {
            a: a.into(),
            b: b.into(),
        }
    }

    fn up(a: &str, b: &str) -> FaultKind {
        FaultKind::LinkUp {
            a: a.into(),
            b: b.into(),
        }
    }

    #[test]
    fn plan_json_roundtrip() {
        let plan = FaultPlan::new()
            .at(SimDuration::from_secs(1), down("n0", "r0"))
            .at(
                SimDuration::from_millis(1500),
                FaultKind::LinkLoss {
                    a: "n0".into(),
                    b: "r0".into(),
                    per_mille: 50,
                },
            )
            .at(
                SimDuration::from_secs(2),
                FaultKind::HostCrash { host: "n1".into() },
            );
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn params_validated() {
        assert!(FaultKind::LinkLoss {
            a: "a".into(),
            b: "b".into(),
            per_mille: 1001,
        }
        .check_params()
        .is_err());
        assert!(FaultKind::CpuDegrade {
            host: "h".into(),
            factor: 0.0,
        }
        .check_params()
        .is_err());
        assert!(FaultKind::CpuDegrade {
            host: "h".into(),
            factor: 1.0,
        }
        .check_params()
        .is_ok());
    }

    #[test]
    fn node_refs_cover_all_targets() {
        assert_eq!(down("x", "y").node_refs(), vec!["x", "y"]);
        let p = FaultKind::Partition {
            side_a: vec!["a".into()],
            side_b: vec!["b".into(), "c".into()],
        };
        assert_eq!(p.node_refs(), vec!["a", "b", "c"]);
        assert_eq!(
            FaultKind::HostCrash { host: "h".into() }.node_refs(),
            vec!["h"]
        );
    }

    #[test]
    fn injector_fires_in_time_order_with_stable_ties() {
        let plan = FaultPlan::new()
            .at(SimDuration::from_millis(20), down("late", "l"))
            .at(SimDuration::from_millis(10), down("first", "f"))
            .at(SimDuration::from_millis(10), down("second", "s"));
        let mut sim = Simulation::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        let bus = FaultBus::new();
        {
            let log = log.clone();
            bus.subscribe(move |k| {
                log.borrow_mut().push((now(), k.target()));
            });
        }
        sim.block_on(async move {
            spawn_injector(&plan, bus);
            sleep(SimDuration::from_millis(50)).await;
        });
        let got = log.borrow().clone();
        let ms = |n: u64| SimTime::ZERO + SimDuration::from_millis(n);
        assert_eq!(
            got,
            vec![
                (ms(10), "first-f".to_string()),
                (ms(10), "second-s".to_string()),
                (ms(20), "late-l".to_string()),
            ]
        );
    }

    #[test]
    fn injector_daemon_never_blocks_exit() {
        // A plan far in the future must not keep the simulation alive.
        let plan = FaultPlan::new().at(SimDuration::from_secs(3600), down("a", "b"));
        let mut sim = Simulation::new(1);
        let bus = FaultBus::new();
        let t = sim.block_on(async move {
            spawn_injector(&plan, bus);
            sleep(SimDuration::from_millis(1)).await;
            now()
        });
        assert_eq!(t, SimTime::ZERO + SimDuration::from_millis(1));
    }

    #[test]
    fn epoch_alignment_rounds_up_and_keeps_order() {
        let ms = SimDuration::from_millis;
        let plan = FaultPlan::new()
            .at(ms(0), down("a", "b"))
            .at(ms(7), down("c", "d"))
            .at(ms(10), down("e", "f"))
            .at(ms(11), FaultKind::HostCrash { host: "h".into() });
        let aligned = plan.align_to_epochs(ms(5));
        let ats: Vec<_> = aligned.events.iter().map(|e| e.at).collect();
        assert_eq!(ats, vec![ms(0), ms(10), ms(10), ms(15)]);
        // Kinds travel with their events.
        assert_eq!(aligned.events[3].kind.name(), "host_crash");
        // Idempotent: aligning twice changes nothing.
        assert_eq!(aligned.align_to_epochs(ms(5)), aligned);
        // A zero epoch is inert rather than a division by zero.
        assert_eq!(plan.align_to_epochs(SimDuration::from_nanos(0)), plan);
    }

    #[test]
    fn link_change_times_cover_connectivity_only() {
        let ms = SimDuration::from_millis;
        let plan = FaultPlan::new()
            .at(ms(30), up("a", "b"))
            .at(ms(10), down("a", "b"))
            .at(
                ms(20),
                FaultKind::LinkLoss {
                    a: "a".into(),
                    b: "b".into(),
                    per_mille: 100,
                },
            )
            .at(ms(10), FaultKind::HostCrash { host: "h".into() })
            .at(
                ms(10),
                FaultKind::Partition {
                    side_a: vec!["a".into()],
                    side_b: vec!["b".into()],
                },
            );
        // Sorted, deduplicated, and only the connectivity kinds: loss
        // and host faults never widen what can cross the cut.
        assert_eq!(plan.link_change_times(), vec![ms(10), ms(30)]);
        assert!(FaultPlan::new().link_change_times().is_empty());
    }

    #[test]
    fn floor_alignment_rounds_up_to_the_next_floor() {
        let ms = SimDuration::from_millis;
        let plan = FaultPlan::new()
            .at(ms(7), down("a", "b"))
            .at(ms(12), up("a", "b"))
            .at(ms(40), down("c", "d"));
        let floors = [ms(10), ms(12), ms(25)];
        let ats: Vec<_> = plan
            .align_to_floors(&floors)
            .events
            .iter()
            .map(|e| e.at)
            .collect();
        // 7 → 10; 12 is already a floor; 40 is past the last floor and
        // stays put.
        assert_eq!(ats, vec![ms(10), ms(12), ms(40)]);
        // Aligning a plan to its own connectivity instants is a no-op:
        // every event already sits on its own floor.
        let own = plan.link_change_times();
        assert_eq!(plan.align_to_floors(&own), plan);
    }

    #[test]
    fn injection_counts_into_metrics() {
        let plan = FaultPlan::new()
            .at(SimDuration::from_millis(1), down("a", "b"))
            .at(
                SimDuration::from_millis(2),
                FaultKind::HostCrash { host: "h".into() },
            );
        let mut sim = Simulation::new(1);
        sim.block_on(async move {
            spawn_injector(&plan, FaultBus::new());
            sleep(SimDuration::from_millis(5)).await;
        });
        let m = sim.obs().metrics();
        assert_eq!(m.counter("faults.injected"), 2);
        assert_eq!(m.counter("faults.link_down"), 1);
        assert_eq!(m.counter("faults.host_crash"), 1);
    }
}
