//! Golden-file and well-formedness tests for the Perfetto exporter.
//!
//! The golden file (`tests/golden/perfetto_small.json`) pins the exact
//! bytes the exporter produces for a small fixed-seed scenario; any
//! format drift shows up as a diff against a committed artifact instead
//! of a silent change under trace viewers. Regenerate it by running the
//! test with `MGRID_BLESS=1` after an intentional format change.
//!
//! Well-formedness is checked by a zero-dependency recursive-descent
//! JSON parser over *every* exported record — the repo bakes in no JSON
//! crate, and the exporter hand-rolls its output, so the test must not
//! trust the code under test to validate itself.

use mgrid_desim::shard::EpochRecord;
use mgrid_desim::time::SimDuration;
use mgrid_desim::{obs, perfetto, sleep, spawn, Category, Event, Simulation};

/// Drive a small deterministic scenario: two "hosts" exchange one
/// message and run one collective-style rendezvous, with a few typed
/// events mixed in. Returns the exporter's output.
fn small_export() -> String {
    let mut sim = Simulation::new(42);
    sim.obs().enable_tracing(64);
    sim.obs().enable_spans();
    let obs_handle = sim.obs().clone();
    sim.block_on(async move {
        // h0: compute, then send.
        spawn(async {
            let c = obs::span_begin(Category::Sched, "quantum", || {
                ("h0".into(), "p0".into(), "".into())
            });
            sleep(SimDuration::from_micros(100)).await;
            obs::span_end(c);
            let tx = obs::span_begin(Category::Vsock, "vsock_send", || {
                ("h0".into(), "p0".into(), "h1:7".into())
            });
            obs::flow_out("msg", "h0", "h1:7", tx);
            obs::emit(|| Event::QuantumGrant {
                host: "h0".into(),
                job: "p0".into(),
            });
            sleep(SimDuration::from_micros(20)).await;
            obs::span_end(tx);
        });
        // h1: wait for the message, then compute.
        spawn(async {
            let rx = obs::span_begin(Category::Vsock, "vsock_recv", || {
                ("h1".into(), "p1".into(), ":7".into())
            });
            sleep(SimDuration::from_micros(120)).await;
            obs::flow_in("msg", "h0", "h1:7", rx);
            obs::span_end(rx);
            let c = obs::span_begin(Category::Sched, "quantum", || {
                ("h1".into(), "p1".into(), "".into())
            });
            sleep(SimDuration::from_micros(50)).await;
            obs::span_end(c);
        });
        sleep(SimDuration::from_micros(300)).await;
    });
    let snap = sim.obs().spans().snapshot();
    let events = obs_handle.tracer().events();
    let epochs = vec![
        EpochRecord {
            horizons: vec![100_000, 100_000],
            ran: vec![true, false],
        },
        EpochRecord {
            horizons: vec![200_000, 200_000],
            ran: vec![true, true],
        },
    ];
    perfetto::export(&snap, &events, &epochs)
}

#[test]
fn export_is_byte_stable_and_matches_the_golden_file() {
    let a = small_export();
    let b = small_export();
    assert_eq!(a, b, "same seed, same bytes");

    let golden = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/perfetto_small.json"
    );
    if std::env::var("MGRID_BLESS").as_deref() == Ok("1") {
        std::fs::write(golden, &a).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(golden).expect(
        "golden file missing; regenerate with MGRID_BLESS=1 cargo test -p mgrid-desim --test perfetto",
    );
    assert_eq!(a, want, "exporter output drifted from the golden file");
}

#[test]
fn every_exported_record_is_well_formed_json() {
    let out = small_export();
    let doc = json::parse(&out).expect("whole export parses");
    let json::Value::Object(top) = doc else {
        panic!("top level must be an object")
    };
    let events = top
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .expect("traceEvents key");
    let json::Value::Array(records) = events else {
        panic!("traceEvents must be an array")
    };
    assert!(records.len() > 10, "scenario should export many records");
    for rec in records {
        let json::Value::Object(fields) = rec else {
            panic!("every record must be an object")
        };
        let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        let Some(json::Value::String(ph)) = get("ph") else {
            panic!("record missing ph: {rec:?}")
        };
        assert!(
            matches!(ph.as_str(), "M" | "X" | "s" | "f" | "i"),
            "unexpected phase {ph}"
        );
        assert!(
            matches!(get("pid"), Some(json::Value::Number(_))),
            "record missing numeric pid: {rec:?}"
        );
        if ph != "M" {
            assert!(
                matches!(get("ts"), Some(json::Value::Number(_))),
                "non-metadata record missing numeric ts: {rec:?}"
            );
        }
        if ph == "X" {
            assert!(
                matches!(get("dur"), Some(json::Value::Number(_))),
                "complete event missing dur: {rec:?}"
            );
        }
    }
}

/// A minimal strict JSON parser — no dependencies, rejects trailing
/// garbage, validates escapes and number syntax. Only what the test
/// needs: parse and expose the tree.
mod json {
    #[derive(Debug, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    pub fn parse(s: &str) -> Result<Value, String> {
        let b = s.as_bytes();
        let mut i = 0;
        let v = value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing bytes at {i}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<Value, String> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => object(b, i),
            Some(b'[') => array(b, i),
            Some(b'"') => Ok(Value::String(string(b, i)?)),
            Some(b't') => lit(b, i, "true", Value::Bool(true)),
            Some(b'f') => lit(b, i, "false", Value::Bool(false)),
            Some(b'n') => lit(b, i, "null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
            _ => Err(format!("unexpected byte at {i}")),
        }
    }

    fn lit(b: &[u8], i: &mut usize, word: &str, v: Value) -> Result<Value, String> {
        if b[*i..].starts_with(word.as_bytes()) {
            *i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at {i}"))
        }
    }

    fn number(b: &[u8], i: &mut usize) -> Result<Value, String> {
        let start = *i;
        if b.get(*i) == Some(&b'-') {
            *i += 1;
        }
        let digits = |b: &[u8], i: &mut usize| {
            let s = *i;
            while *i < b.len() && b[*i].is_ascii_digit() {
                *i += 1;
            }
            *i > s
        };
        let int_start = *i;
        if !digits(b, i) {
            return Err(format!("bad number at {start}"));
        }
        if b[int_start] == b'0' && *i - int_start > 1 {
            return Err(format!("leading zero at {start}"));
        }
        if b.get(*i) == Some(&b'.') {
            *i += 1;
            if !digits(b, i) {
                return Err(format!("bad fraction at {start}"));
            }
        }
        if matches!(b.get(*i), Some(b'e') | Some(b'E')) {
            *i += 1;
            if matches!(b.get(*i), Some(b'+') | Some(b'-')) {
                *i += 1;
            }
            if !digits(b, i) {
                return Err(format!("bad exponent at {start}"));
            }
        }
        let text = std::str::from_utf8(&b[start..*i]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|e| e.to_string())
    }

    fn string(b: &[u8], i: &mut usize) -> Result<String, String> {
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected string at {i}"));
        }
        *i += 1;
        let mut out = Vec::new();
        loop {
            match b.get(*i) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *i += 1;
                    return String::from_utf8(out).map_err(|e| e.to_string());
                }
                Some(b'\\') => {
                    *i += 1;
                    match b.get(*i) {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'b') => out.push(8),
                        Some(b'f') => out.push(12),
                        Some(b'n') => out.push(b'\n'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'u') => {
                            let hex = b
                                .get(*i + 1..*i + 5)
                                .ok_or("short \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            let ch =
                                char::from_u32(code).ok_or(format!("bad \\u escape {code:04x}"))?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                            *i += 4;
                        }
                        _ => return Err(format!("bad escape at {i}")),
                    }
                    *i += 1;
                }
                Some(&c) if c < 0x20 => {
                    return Err(format!("raw control byte 0x{c:02x} in string"))
                }
                Some(&c) => {
                    out.push(c);
                    *i += 1;
                }
            }
        }
    }

    fn array(b: &[u8], i: &mut usize) -> Result<Value, String> {
        *i += 1; // consume '['
        let mut items = Vec::new();
        skip_ws(b, i);
        if b.get(*i) == Some(&b']') {
            *i += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(value(b, i)?);
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b']') => {
                    *i += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected , or ] at {i}")),
            }
        }
    }

    fn object(b: &[u8], i: &mut usize) -> Result<Value, String> {
        *i += 1; // consume '{'
        let mut fields = Vec::new();
        skip_ws(b, i);
        if b.get(*i) == Some(&b'}') {
            *i += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            skip_ws(b, i);
            let k = string(b, i)?;
            skip_ws(b, i);
            if b.get(*i) != Some(&b':') {
                return Err(format!("expected : at {i}"));
            }
            *i += 1;
            fields.push((k, value(b, i)?));
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b'}') => {
                    *i += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected , or }} at {i}")),
            }
        }
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,]",
            "{\"a\":}",
            "01",
            "\"\\x\"",
            "{\"a\":1} extra",
            "\"\u{1}\"",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
        assert_eq!(
            parse(" [1, -2.5e3, \"a\\u0041\", {}] ").unwrap(),
            Value::Array(vec![
                Value::Number(1.0),
                Value::Number(-2500.0),
                Value::String("aA".into()),
                Value::Object(vec![]),
            ])
        );
    }
}
