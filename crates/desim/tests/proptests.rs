//! Property-based tests of the engine's core guarantees.

use proptest::prelude::*;

use mgrid_desim::channel::channel;
use mgrid_desim::sync::Semaphore;
use mgrid_desim::time::SimDuration;
use mgrid_desim::{sleep, spawn, with_rng, Simulation};

proptest! {
    /// Determinism: any mix of sleeping tasks produces the identical
    /// completion trace when re-run with the same seed.
    #[test]
    fn identical_seed_identical_trace(
        seed in any::<u64>(),
        tasks in prop::collection::vec(0u64..1_000_000, 1..25),
    ) {
        fn trace(seed: u64, tasks: &[u64]) -> Vec<(u64, u64)> {
            let mut sim = Simulation::new(seed);
            let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
            for (i, &d) in tasks.iter().enumerate() {
                let log = log.clone();
                sim.spawn(async move {
                    // Mix fixed delays with seeded random ones.
                    let extra = with_rng(|r| r.below(1000));
                    sleep(SimDuration::from_nanos(d + extra)).await;
                    log.borrow_mut().push((i as u64, mgrid_desim::now().as_nanos()));
                });
            }
            sim.run_to_completion();
            let v = log.borrow().clone();
            v
        }
        prop_assert_eq!(trace(seed, &tasks), trace(seed, &tasks));
    }

    /// Channel FIFO: any interleaving of producers preserves per-producer
    /// order at the consumer.
    #[test]
    fn channel_per_producer_fifo(
        counts in prop::collection::vec(1usize..20, 1..5),
        delays in prop::collection::vec(0u64..500, 1..5),
    ) {
        let mut sim = Simulation::new(3);
        let n_producers = counts.len();
        let counts2 = counts.clone();
        let received = sim.block_on(async move {
            let (tx, rx) = channel();
            for (p, (&count, delay)) in counts2.iter().zip(delays.iter().cycle()).enumerate() {
                let tx = tx.clone();
                let delay = *delay;
                spawn(async move {
                    for i in 0..count {
                        sleep(SimDuration::from_nanos(delay)).await;
                        tx.send((p, i)).await.unwrap();
                    }
                });
            }
            drop(tx);
            let mut got: Vec<(usize, usize)> = Vec::new();
            while let Ok(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        // Per-producer subsequences are 0..count in order.
        for (p, &count) in counts.iter().enumerate().take(n_producers) {
            let seq: Vec<usize> = received.iter().filter(|(q, _)| *q == p).map(|(_, i)| *i).collect();
            prop_assert_eq!(seq, (0..count).collect::<Vec<_>>());
        }
    }

    /// Semaphore: concurrency never exceeds the permit count, and all
    /// acquirers eventually complete.
    #[test]
    fn semaphore_never_oversubscribed(
        permits in 1usize..5,
        tasks in 1usize..25,
        hold_ns in 1u64..10_000,
    ) {
        let mut sim = Simulation::new(4);
        let peak = sim.block_on(async move {
            let sem = Semaphore::new(permits);
            let active = std::rc::Rc::new(std::cell::Cell::new(0usize));
            let peak = std::rc::Rc::new(std::cell::Cell::new(0usize));
            let mut handles = Vec::new();
            for _ in 0..tasks {
                let sem = sem.clone();
                let active = active.clone();
                let peak = peak.clone();
                handles.push(spawn(async move {
                    sem.acquire().await;
                    active.set(active.get() + 1);
                    peak.set(peak.get().max(active.get()));
                    sleep(SimDuration::from_nanos(hold_ns)).await;
                    active.set(active.get() - 1);
                    sem.release();
                }));
            }
            for h in handles {
                h.await;
            }
            peak.get()
        });
        prop_assert!(peak <= permits, "peak {peak} > permits {permits}");
    }

    /// RNG `below(n)` is always in range and `shuffle` permutes.
    #[test]
    fn rng_contracts(seed in any::<u64>(), n in 1u64..10_000) {
        let mut rng = mgrid_desim::SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(n) < n);
        }
        let mut v: Vec<u64> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..50).collect::<Vec<u64>>());
    }
}
