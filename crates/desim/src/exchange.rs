//! Lock-free cross-worker exchange primitives for the sharded engine.
//!
//! The PR 6 engine funneled every cross-shard message through one shared
//! mailbox matrix behind a lock, plus three more locked vectors for the
//! per-round all-reduce — four lock acquisitions per shard per epoch,
//! all serializing on the same cache lines. This module replaces that
//! with two wait-free pieces:
//!
//! * [`ExchangeCell`]: a double-buffered mailbox for one directed shard
//!   pair. The producer publishes a whole batch with one atomic pointer
//!   swap; the consumer drains it with another. Two banks selected by
//!   round parity keep a round's writes from colliding with the
//!   previous round's reads, and the engine's barrier provides the
//!   happens-before edge between them.
//! * [`SlotVec`]: a fixed-size slot array whose indices are statically
//!   partitioned between threads (each slot has exactly one writer), so
//!   job hand-off and result collection need no locks either.
//!
//! Neither type spins or blocks: per epoch the whole exchange costs two
//! atomic swaps per active shard pair.

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

/// One bank of an [`ExchangeCell`]: a published batch (null = empty)
/// and the minimum timestamp it carries (`u64::MAX` = none). The
/// timestamp is stored on *every* publish, batch or not, so readers can
/// distinguish "nothing sent this round" from a stale value.
struct Bank<T> {
    buf: AtomicPtr<Vec<T>>,
    min_time: AtomicU64,
}

/// A double-buffered, lock-free mailbox for one directed `(src, dst)`
/// shard pair.
///
/// Protocol (enforced by the sharded engine, not by this type): in each
/// barrier round the producer calls [`publish`](ExchangeCell::publish)
/// on the bank selected by round parity *before* the barrier, and the
/// consumer calls [`min_time`](ExchangeCell::min_time) /
/// [`take`](ExchangeCell::take) on the same bank *after* it. Alternating
/// parity gives each bank a full round of exclusivity, so the atomics
/// only ever hand a fully-built `Vec` across the barrier.
pub(crate) struct ExchangeCell<T> {
    banks: [Bank<T>; 2],
    /// The cell owns the published `Vec<T>` batches (dropped in `Drop`).
    _owns: PhantomData<Vec<T>>,
}

// SAFETY: the cell never hands out references into a batch — publish and
// take transfer *ownership* of a whole `Vec<T>` through an atomic pointer
// swap, so sharing the cell across threads only ever moves values between
// them. That is exactly the `T: Send` contract; `T: Sync` is not needed.
unsafe impl<T: Send> Sync for ExchangeCell<T> {}
// SAFETY: as above — the cell is an owner of `Vec<T>` values, so moving
// the cell itself to another thread moves those values (`T: Send`).
unsafe impl<T: Send> Send for ExchangeCell<T> {}

impl<T> ExchangeCell<T> {
    pub(crate) fn new() -> Self {
        let bank = || Bank {
            buf: AtomicPtr::new(ptr::null_mut()),
            min_time: AtomicU64::new(u64::MAX),
        };
        ExchangeCell {
            banks: [bank(), bank()],
            _owns: PhantomData,
        }
    }

    /// Publish this round's batch into bank `parity`. `min_time` must be
    /// the minimum timestamp in `batch` (`u64::MAX` when empty); it is
    /// stored unconditionally so the consumer always observes a
    /// this-round value, while the buffer swap is skipped for empty
    /// batches.
    pub(crate) fn publish(&self, parity: usize, batch: Vec<T>, min_time: u64) {
        let bank = &self.banks[parity & 1];
        // ORDERING: Release publishes the batch contents written before
        // this store; paired with the Acquire load in `min_time`.
        bank.min_time.store(min_time, Ordering::Release);
        if batch.is_empty() {
            return;
        }
        let prev = bank
            .buf
            // ORDERING: AcqRel — Release publishes the boxed batch to
            // the consumer's swap in `take`; Acquire receives ownership
            // of any leftover batch reclaimed below.
            .swap(Box::into_raw(Box::new(batch)), Ordering::AcqRel);
        if !prev.is_null() {
            // A leftover batch means the consumer stopped before
            // draining (e.g. the run ended on this round's verdict);
            // reclaim it rather than leak.
            // SAFETY: non-null pointers in `buf` only ever come from
            // `Box::into_raw` in this function, and the swap above took
            // sole ownership of this one.
            drop(unsafe { Box::from_raw(prev) });
        }
    }

    /// The minimum timestamp published into bank `parity` this round
    /// (`u64::MAX` = nothing in flight on this edge).
    pub(crate) fn min_time(&self, parity: usize) -> u64 {
        // ORDERING: Acquire pairs with the Release store in `publish`,
        // making the batch visible before its timestamp is trusted.
        self.banks[parity & 1].min_time.load(Ordering::Acquire)
    }

    /// Drain bank `parity`, taking the published batch if any.
    pub(crate) fn take(&self, parity: usize) -> Option<Vec<T>> {
        let prev = self.banks[parity & 1]
            .buf
            // ORDERING: AcqRel — Acquire receives the batch published
            // by `publish`'s Release swap; Release publishes the null
            // so a same-slot republish can't observe a stale pointer.
            .swap(ptr::null_mut(), Ordering::AcqRel);
        if prev.is_null() {
            return None;
        }
        // SAFETY: non-null pointers in `buf` only ever come from
        // `Box::into_raw` in `publish`, and the swap above took sole
        // ownership of this one.
        Some(*unsafe { Box::from_raw(prev) })
    }
}

impl<T> Drop for ExchangeCell<T> {
    fn drop(&mut self) {
        for bank in &self.banks {
            // ORDERING: AcqRel — same pairing as `take`; `&mut self`
            // already guarantees exclusivity, the ordering is belt and
            // suspenders for the reclaim.
            let p = bank.buf.swap(ptr::null_mut(), Ordering::AcqRel);
            if !p.is_null() {
                // SAFETY: sole ownership, as in `take`.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

/// A fixed-size array of single-writer slots shared across threads.
///
/// The caller must partition indices so that each slot is touched by at
/// most one thread at a time (the sharded engine does this statically
/// for shard results and via an atomic ticket counter for job claims);
/// `take`/`put` are `unsafe` to make that contract explicit at each
/// call site.
pub(crate) struct SlotVec<T> {
    slots: Vec<UnsafeCell<Option<T>>>,
}

// SAFETY: every slot is `Option<T>` behind an `UnsafeCell`; the
// single-writer-per-slot contract on `take`/`put` means distinct threads
// never alias a slot mutably, and `T: Send` lets values cross threads.
unsafe impl<T: Send> Sync for SlotVec<T> {}

impl<T> SlotVec<T> {
    /// `n` empty slots.
    pub(crate) fn new(n: usize) -> Self {
        SlotVec {
            slots: (0..n).map(|_| UnsafeCell::new(None)).collect(),
        }
    }

    /// One filled slot per value, in order.
    pub(crate) fn from_values(values: Vec<T>) -> Self {
        SlotVec {
            slots: values
                .into_iter()
                .map(|v| UnsafeCell::new(Some(v)))
                .collect(),
        }
    }

    /// Take slot `i`'s value.
    ///
    /// # Safety
    /// No other thread may access slot `i` concurrently.
    // SAFETY: `unsafe fn` by design — it propagates the per-slot
    // exclusivity obligation to the caller instead of discharging it.
    pub(crate) unsafe fn take(&self, i: usize) -> Option<T> {
        // SAFETY: exclusivity of slot `i` is the caller's contract.
        unsafe { (*self.slots[i].get()).take() }
    }

    /// Store `v` into slot `i`.
    ///
    /// # Safety
    /// No other thread may access slot `i` concurrently.
    // SAFETY: `unsafe fn` by design — it propagates the per-slot
    // exclusivity obligation to the caller instead of discharging it.
    pub(crate) unsafe fn put(&self, i: usize, v: T) {
        // SAFETY: exclusivity of slot `i` is the caller's contract.
        unsafe { *self.slots[i].get() = Some(v) };
    }

    /// Consume the array, returning every slot (exclusive access is
    /// guaranteed by ownership).
    pub(crate) fn into_inner(self) -> Vec<Option<T>> {
        self.slots.into_iter().map(UnsafeCell::into_inner).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_take_round_trips_batches() {
        let cell = ExchangeCell::<u32>::new();
        assert_eq!(cell.min_time(0), u64::MAX);
        cell.publish(0, vec![7, 8], 40);
        assert_eq!(cell.min_time(0), 40);
        assert_eq!(cell.min_time(1), u64::MAX);
        assert_eq!(cell.take(0), Some(vec![7, 8]));
        assert_eq!(cell.take(0), None);
    }

    #[test]
    fn empty_publish_resets_the_timestamp_only() {
        let cell = ExchangeCell::<u32>::new();
        cell.publish(0, vec![1], 10);
        assert_eq!(cell.take(0), Some(vec![1]));
        cell.publish(0, Vec::new(), u64::MAX);
        assert_eq!(cell.min_time(0), u64::MAX);
        assert_eq!(cell.take(0), None);
    }

    #[test]
    fn undrained_batches_are_reclaimed_not_leaked() {
        let cell = ExchangeCell::<String>::new();
        cell.publish(1, vec!["a".into()], 1);
        // Re-publish on the same bank without draining (engine stopped),
        // then drop the cell with a batch still in flight: both paths
        // must free their boxes (run under the test suite's normal
        // allocator this is exercised by miri-less sanity: no crash).
        cell.publish(1, vec!["b".into()], 2);
        assert_eq!(cell.take(1), Some(vec!["b".to_string()]));
        cell.publish(1, vec!["c".into()], 3);
        drop(cell);
    }

    #[test]
    fn slot_vec_hands_each_index_to_one_owner() {
        let v = SlotVec::from_values(vec![1, 2, 3]);
        // SAFETY: single-threaded test — trivially exclusive.
        unsafe {
            assert_eq!(v.take(1), Some(2));
            assert_eq!(v.take(1), None);
            v.put(1, 9);
        }
        assert_eq!(v.into_inner(), vec![Some(1), Some(9), Some(3)]);
    }
}
