//! Chrome trace-event / Perfetto JSON export.
//!
//! Renders a [`SpanSnapshot`] (plus optional flat events and
//! shard-epoch records) into the Chrome trace-event JSON format that
//! <https://ui.perfetto.dev> and `chrome://tracing` load directly:
//!
//! - every span track (virtual host) becomes a Perfetto *process* row
//!   and every lane (grid process / daemon) a *thread* row under it,
//!   with `"X"` complete events for the spans themselves;
//! - resolved flow edges become `"s"`/`"f"` flow arrows from the
//!   producing span to the consuming span;
//! - flat [`TraceEvent`]s become `"i"` instant ticks on one lane per
//!   [`Category`], under a dedicated `events` process;
//! - [`EpochRecord`]s from the sharded engine become run/idle slices on
//!   one lane per shard under a `shard-engine` process, making barrier
//!   behaviour visually debuggable next to the causal spans.
//!
//! The output is hand-rolled (no serde), mirroring
//! [`crate::event::Event::to_json_line`]: identical inputs produce byte-identical
//! strings, which the golden-file test in `tests/perfetto.rs` pins.
//! Timestamps are microseconds (the trace-event unit) formatted as
//! exact `ns/1000` decimals with three fractional digits — no floats.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::Category;
use crate::shard::EpochRecord;
use crate::span::SpanSnapshot;
use crate::trace::TraceEvent;

/// Escape a string for a JSON value position (same rules as
/// [`crate::event::Event::to_json_line`]'s `field_str`).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Nanoseconds rendered as trace-event microseconds (`"12.345"`).
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Build the complete Chrome trace-event JSON document.
///
/// `events` adds instant ticks (pass `&[]` to skip), `epochs` adds the
/// shard-engine lanes (pass `&[]` for a sequential run). The result is
/// a pure function of its inputs: same snapshot, same bytes.
pub fn export(snap: &SpanSnapshot, events: &[TraceEvent], epochs: &[EpochRecord]) -> String {
    // Deterministic pid/tid assignment: tracks sorted by name, lanes
    // sorted within each track, both 1-based.
    let mut tracks: BTreeMap<&str, BTreeMap<&str, usize>> = BTreeMap::new();
    for s in &snap.spans {
        tracks
            .entry(s.track.as_ref())
            .or_default()
            .insert(s.lane.as_ref(), 0);
    }
    let mut pid_of: BTreeMap<&str, usize> = BTreeMap::new();
    for (p, (track, lanes)) in tracks.iter_mut().enumerate() {
        pid_of.insert(track, p + 1);
        for (t, tid) in lanes.values_mut().enumerate() {
            *tid = t + 1;
        }
    }
    let events_pid = tracks.len() + 1;
    let engine_pid = tracks.len() + 2;

    let mut recs: Vec<String> = Vec::new();

    // Metadata: process and thread names.
    for (track, lanes) in &tracks {
        let pid = pid_of[track];
        recs.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\"{}\"}}}}",
            esc(track)
        ));
        for (lane, tid) in lanes {
            recs.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
                esc(lane)
            ));
        }
    }
    if !events.is_empty() {
        recs.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{events_pid},\"args\":{{\"name\":\"events\"}}}}"
        ));
        for (t, cat) in Category::ALL.iter().enumerate() {
            recs.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{events_pid},\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                t + 1,
                cat.name()
            ));
        }
    }
    if !epochs.is_empty() {
        let shards = epochs[0].horizons.len();
        recs.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{engine_pid},\"args\":{{\"name\":\"shard-engine\"}}}}"
        ));
        for d in 0..shards {
            recs.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{engine_pid},\"tid\":{},\"args\":{{\"name\":\"shard{d}\"}}}}",
                d + 1
            ));
        }
    }

    // Span slices, in record order.
    for s in &snap.spans {
        let Some(end) = s.end else { continue };
        let pid = pid_of[s.track.as_ref()];
        let tid = tracks[s.track.as_ref()][s.lane.as_ref()];
        let args = if s.detail.is_empty() {
            format!("{{\"span\":{}}}", s.id.get())
        } else {
            format!(
                "{{\"span\":{},\"detail\":\"{}\"}}",
                s.id.get(),
                esc(s.detail.as_ref())
            )
        };
        recs.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{tid},\"args\":{args}}}",
            esc(s.name),
            s.cat.name(),
            ts_us(s.begin.as_nanos()),
            ts_us(end.as_nanos().saturating_sub(s.begin.as_nanos())),
        ));
    }

    // Flow arrows: anchored at the producer's begin ("s") and bound to
    // the slice enclosing the consumer's end ("f" with bp:"e").
    for (i, f) in snap.flows.iter().enumerate() {
        let (Some(from), Some(to)) = (snap.span(f.from), snap.span(f.to)) else {
            continue;
        };
        let Some(to_end) = to.end else { continue };
        if from.end.is_none() {
            continue;
        }
        let id = i + 1;
        recs.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":{id},\"ts\":{},\"pid\":{},\"tid\":{}}}",
            f.class,
            ts_us(from.begin.as_nanos()),
            pid_of[from.track.as_ref()],
            tracks[from.track.as_ref()][from.lane.as_ref()],
        ));
        recs.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{id},\"ts\":{},\"pid\":{},\"tid\":{}}}",
            f.class,
            ts_us(to_end.as_nanos()),
            pid_of[to.track.as_ref()],
            tracks[to.track.as_ref()][to.lane.as_ref()],
        ));
    }

    // Flat events as thread-scoped instants on per-category lanes.
    for e in events {
        let tid = Category::ALL
            .iter()
            .position(|c| *c == e.category())
            .expect("category is in ALL")
            + 1;
        recs.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{events_pid},\"tid\":{tid}}}",
            e.event.kind(),
            e.category().name(),
            ts_us(e.at.as_nanos()),
        ));
    }

    // Shard-epoch lanes: one run/idle slice per shard per round,
    // spanning from the previous round's horizon to this one's.
    if !epochs.is_empty() {
        let shards = epochs[0].horizons.len();
        let mut prev = vec![0u64; shards];
        for (round, rec) in epochs.iter().enumerate() {
            for (d, last) in prev.iter_mut().enumerate() {
                let h = rec.horizons.get(d).copied().unwrap_or(u64::MAX);
                if h == u64::MAX || h <= *last {
                    continue;
                }
                let name = if rec.ran.get(d).copied().unwrap_or(false) {
                    "run"
                } else {
                    "idle"
                };
                recs.push(format!(
                    "{{\"name\":\"{name}\",\"cat\":\"epoch\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{engine_pid},\"tid\":{},\"args\":{{\"round\":{}}}}}",
                    ts_us(*last),
                    ts_us(h - *last),
                    d + 1,
                    round + 1,
                ));
                *last = h;
            }
        }
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, r) in recs.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(r);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanStore;
    use crate::time::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn sample() -> SpanSnapshot {
        let st = SpanStore::new();
        st.set_enabled(true);
        let a = st.begin(
            t(1_000),
            None,
            Category::Sched,
            "quantum",
            "alpha0",
            "mg.A",
            "cpu",
        );
        st.end(t(11_500), a);
        let b = st.begin(
            t(2_000),
            None,
            Category::Vsock,
            "vsock_recv",
            "beta0",
            "mg.B",
            String::new(),
        );
        let c = st.begin(
            t(11_500),
            Some(a),
            Category::Vsock,
            "vsock_send",
            "alpha0",
            "mg.A",
            "beta0:19",
        );
        st.flow_out("msg", "alpha0", "beta0:19", c);
        st.flow_in("msg", "alpha0", "beta0:19", b);
        st.end(t(14_000), b);
        st.end(t(15_000), c);
        st.snapshot()
    }

    #[test]
    fn export_is_byte_stable_and_shapes_right() {
        let snap = sample();
        let one = export(&snap, &[], &[]);
        let two = export(&snap, &[], &[]);
        assert_eq!(one, two);
        // pids follow sorted track order: alpha0=1, beta0=2.
        assert!(one.contains(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"alpha0\"}}"
        ));
        assert!(one.contains("\"ph\":\"X\",\"ts\":1.000,\"dur\":10.500,\"pid\":1,\"tid\":1"));
        // One flow pair, producer anchored at the send begin.
        assert!(one.contains("\"cat\":\"flow\",\"ph\":\"s\",\"id\":1,\"ts\":11.500,\"pid\":1"));
        assert!(one.contains("\"ph\":\"f\",\"bp\":\"e\",\"id\":1,\"ts\":14.000,\"pid\":2"));
    }

    #[test]
    fn epoch_records_become_engine_lanes() {
        let epochs = vec![
            EpochRecord {
                horizons: vec![5_000, 5_000],
                ran: vec![true, false],
            },
            EpochRecord {
                horizons: vec![9_000, u64::MAX],
                ran: vec![true, true],
            },
        ];
        let out = export(&SpanSnapshot::default(), &[], &epochs);
        assert!(out.contains("\"name\":\"shard-engine\""));
        assert!(out.contains(
            "\"name\":\"run\",\"cat\":\"epoch\",\"ph\":\"X\",\"ts\":0.000,\"dur\":5.000"
        ));
        assert!(out.contains("\"name\":\"idle\",\"cat\":\"epoch\""));
        // The unbounded (u64::MAX) horizon produced no slice.
        assert_eq!(out.matches("\"cat\":\"epoch\"").count(), 3);
    }

    #[test]
    fn instant_events_land_on_category_lanes() {
        use crate::event::Event;
        let events = vec![TraceEvent {
            at: t(7_250),
            event: Event::PacketDrop { link: 3, bytes: 99 },
        }];
        let out = export(&SpanSnapshot::default(), &events, &[]);
        // Net is the second category lane.
        assert!(out.contains(
            "{\"name\":\"packet_drop\",\"cat\":\"net\",\"ph\":\"i\",\"s\":\"t\",\"ts\":7.250,\"pid\":1,\"tid\":2}"
        ));
    }
}
