//! Deterministic sharded parallel simulation (conservative PDES).
//!
//! This is the **one sanctioned parallel runtime** of the simulation core:
//! everything else in `mgrid-desim` is single-threaded by construction
//! (and mgrid-lint's MG005 enforces that). The sharded engine runs N
//! *logical processes* (shards) — each an ordinary, fully deterministic
//! [`Simulation`] — on a fixed-size worker pool, and synchronizes them
//! with conservative barrier epochs in the style of classic
//! null-message-free CMB executives:
//!
//! * Every shard owns one `Simulation`, created **on its worker thread**
//!   (the executor's ready queue is owner-thread checked) and never
//!   migrated.
//! * Shards exchange timestamped messages through per-edge FIFO
//!   **mailboxes** (one per ordered shard pair). A message exported at
//!   virtual time `t` must arrive no earlier than `t + lookahead`, where
//!   the *lookahead* is the minimum latency across the cut between shards
//!   (exported by `mgrid-netsim` for grid topologies).
//! * The engine repeatedly computes the global minimum next-event time
//!   `m` over all shards (pending timers, runnable tasks, and undelivered
//!   imports), then lets every shard run the half-open epoch window
//!   `[m, m + lookahead)` in parallel. The lookahead guarantee means no
//!   message generated inside the window can arrive inside it, so the
//!   window is safe to execute without further coordination.
//! * At each barrier, imports are merged **sorted by `(time, from_shard,
//!   seq)`** and injected at their exact arrival time. Within one shard
//!   the injection order therefore never depends on thread scheduling,
//!   which makes an N-shard run byte-identical to the 1-shard run.
//!
//! With `shards = 1` (or a plan with no edges and one job) the engine
//! runs entirely inline on the calling thread — no threads, no barriers,
//! no mailboxes — and is the same event loop as [`Simulation::run`], so
//! sequential behaviour is bit-for-bit unchanged.
//!
//! See `docs/PARALLEL.md` for the determinism argument and tuning notes
//! (`MGRID_SHARDS`).

use std::cell::{Cell, RefCell};
use std::collections::BinaryHeap;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use crate::executor::Simulation;
use crate::time::{SimDuration, SimTime};

/// How the shards of a plan may communicate.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    shards: usize,
    lookahead: Option<SimDuration>,
    max_workers: usize,
}

impl ShardPlan {
    /// A plan for `shards` logical processes that exchange messages with
    /// the given conservative lookahead (the minimum virtual latency any
    /// cross-shard message experiences).
    ///
    /// # Panics
    /// Panics if `shards` is zero or `lookahead` is zero — a zero
    /// lookahead admits no safe epoch window and the engine cannot make
    /// progress.
    pub fn connected(shards: usize, lookahead: SimDuration) -> Self {
        assert!(shards > 0, "a plan needs at least one shard");
        assert!(
            !lookahead.is_zero(),
            "conservative sharding requires a strictly positive lookahead"
        );
        ShardPlan {
            shards,
            lookahead: Some(lookahead),
            max_workers: usize::MAX,
        }
    }

    /// A plan whose shards never communicate (no cross-shard edges, so
    /// the lookahead is effectively infinite and each shard runs to
    /// completion in a single epoch). This is the degenerate plan behind
    /// [`run_jobs`] — independent scenarios of one benchmark figure.
    pub fn independent(shards: usize) -> Self {
        assert!(shards > 0, "a plan needs at least one shard");
        ShardPlan {
            shards,
            lookahead: None,
            max_workers: usize::MAX,
        }
    }

    /// Cap the worker pool at `n` threads. Shards are statically
    /// assigned round-robin (`shard % workers`), so a smaller pool
    /// multiplexes several shards per worker without affecting results.
    pub fn with_max_workers(mut self, n: usize) -> Self {
        assert!(n > 0, "the worker pool needs at least one thread");
        self.max_workers = n;
        self
    }

    /// Number of shards in the plan.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The conservative lookahead, `None` for independent shards.
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.lookahead
    }
}

/// A timestamped cross-shard message, as seen by the receiving shard.
#[derive(Debug)]
pub struct Import<M> {
    /// Virtual arrival time (the instant the receiver must act on it).
    pub time: SimTime,
    /// Originating shard.
    pub from: usize,
    /// FIFO sequence number on the `(from, to)` mailbox edge.
    pub seq: u64,
    /// The message itself.
    pub msg: M,
}

// Imports merge through a min-heap ordered by (time, from, seq): the
// deterministic tie-break the whole engine's repeatability rests on.
impl<M> PartialEq for Import<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.from, self.seq) == (other.time, other.from, other.seq)
    }
}
impl<M> Eq for Import<M> {}
impl<M> PartialOrd for Import<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Import<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.from, self.seq).cmp(&(other.time, other.from, other.seq))
    }
}

struct Export<M> {
    to: usize,
    import: Import<M>,
}

/// A shard's capability to publish messages to its peers.
///
/// Cheap to clone; hand clones to the simulation tasks that sit on the
/// shard boundary (e.g. netsim's cross-shard link pumps). Exports are
/// buffered locally and shipped at the next epoch barrier, preserving
/// per-edge FIFO order.
pub struct ShardHandle<M> {
    shard_id: usize,
    shards: usize,
    lookahead: Option<SimDuration>,
    outbox: Rc<RefCell<Vec<Export<M>>>>,
    /// Per-destination FIFO sequence counters.
    seqs: Rc<Vec<Cell<u64>>>,
}

impl<M> Clone for ShardHandle<M> {
    fn clone(&self) -> Self {
        ShardHandle {
            shard_id: self.shard_id,
            shards: self.shards,
            lookahead: self.lookahead,
            outbox: self.outbox.clone(),
            seqs: self.seqs.clone(),
        }
    }
}

impl<M> ShardHandle<M> {
    fn new(shard_id: usize, plan: &ShardPlan) -> Self {
        ShardHandle {
            shard_id,
            shards: plan.shards,
            lookahead: plan.lookahead,
            outbox: Rc::new(RefCell::new(Vec::new())),
            seqs: Rc::new((0..plan.shards).map(|_| Cell::new(0)).collect()),
        }
    }

    /// This shard's index, `0..shards`.
    pub fn shard_id(&self) -> usize {
        self.shard_id
    }

    /// Total number of shards in the run.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Export `msg` to shard `to`, arriving at virtual time `time`.
    ///
    /// Must be called from inside this shard's simulation (it reads the
    /// simulation clock to check the lookahead contract).
    ///
    /// # Panics
    /// Panics if `time` violates the plan's lookahead — i.e. the message
    /// would arrive inside the epoch window currently being executed,
    /// which would break determinism.
    pub fn export(&self, to: usize, time: SimTime, msg: M) {
        assert!(to < self.shards, "export to unknown shard {to}");
        assert_ne!(to, self.shard_id, "a shard cannot export to itself");
        if let Some(la) = self.lookahead {
            let now = crate::executor::now();
            assert!(
                time >= now + la,
                "lookahead violation: export at {now} arriving {time} < now + {la}"
            );
        }
        let seq = self.seqs[to].get();
        self.seqs[to].set(seq + 1);
        self.outbox.borrow_mut().push(Export {
            to,
            import: Import {
                time,
                from: self.shard_id,
                seq,
                msg,
            },
        });
    }

    fn drain(&self) -> Vec<Export<M>> {
        std::mem::take(&mut self.outbox.borrow_mut())
    }
}

/// Delivery hook of a [`ShardRun`]: applies one import to the shard's
/// simulation.
pub type DeliverFn<M> = Box<dyn FnMut(&mut Simulation, Import<M>)>;

/// What a shard factory hands back to the engine: the simulation to
/// drive, plus the three hooks the epoch loop needs.
pub struct ShardRun<M, R> {
    /// The shard's simulation, created on the worker thread.
    pub sim: Simulation,
    /// Called at each barrier for every import addressed to this shard,
    /// in `(time, from, seq)` order. Typical implementations spawn a task
    /// that sleeps until `import.time` and then applies the message.
    pub deliver: DeliverFn<M>,
    /// True once the shard's root work is complete. When every shard
    /// reports done the run ends at the next barrier (mirroring
    /// [`Simulation::block_on`], which stops at root completion).
    pub root_done: Box<dyn Fn() -> bool>,
    /// Extracts the shard's result after the final epoch.
    pub finish: Box<dyn FnOnce(Simulation) -> R>,
}

/// Per-shard state owned by a worker thread.
struct ShardState<M, R> {
    handle: ShardHandle<M>,
    run: Option<ShardRun<M, R>>,
    /// Imports received but not yet deliverable (arrival beyond the
    /// current horizon), kept as a min-heap on `(time, from, seq)`.
    pending: BinaryHeap<std::cmp::Reverse<Import<M>>>,
}

impl<M, R> ShardState<M, R> {
    /// Earliest local activity: next simulation event or pending import.
    fn local_min(&self) -> Option<SimTime> {
        let sim_next = self.run.as_ref().and_then(|r| r.sim.next_event_time());
        let imp_next = self.pending.peek().map(|std::cmp::Reverse(i)| i.time);
        match (sim_next, imp_next) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Deliver every pending import with `time < horizon`, sorted.
    fn deliver_until(&mut self, horizon: SimTime) {
        let run = self.run.as_mut().expect("shard already finished");
        while let Some(std::cmp::Reverse(head)) = self.pending.peek() {
            if head.time >= horizon {
                break;
            }
            let std::cmp::Reverse(imp) = self.pending.pop().unwrap();
            (run.deliver)(&mut run.sim, imp);
        }
    }
}

/// Shared cross-worker coordination state for one run.
struct Exchange<M> {
    barrier: Barrier,
    /// `inboxes[s]`: imports addressed to shard `s`, appended at barriers.
    inboxes: Mutex<Vec<Vec<Import<M>>>>,
    /// `mins[s]`: shard `s`'s local minimum next-event time (nanos;
    /// `u64::MAX` = quiescent), refreshed every round.
    mins: Mutex<Vec<u64>>,
    /// `done[s]` once shard `s`'s root completed.
    done: Mutex<Vec<bool>>,
    /// Set when a worker panicked mid-round; peers drain out at their
    /// next barrier instead of waiting forever.
    failed: AtomicBool,
}

/// The global time floor and termination verdict for one round.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Verdict {
    /// Run the half-open window ending at this horizon (nanos).
    Advance(u64),
    /// Every root completed, or the whole system is quiescent.
    Stop,
}

fn compute_verdict(mins: &[u64], done: &[bool], lookahead: SimDuration) -> Verdict {
    if done.iter().all(|&d| d) {
        return Verdict::Stop;
    }
    let m = mins.iter().copied().min().unwrap_or(u64::MAX);
    if m == u64::MAX {
        // Quiescent with roots unfinished: a distributed deadlock. Stop
        // and let the caller's `finish` hooks observe the blocked state,
        // exactly as `Simulation::run` leaves blocked tasks pending.
        return Verdict::Stop;
    }
    Verdict::Advance(m.saturating_add(lookahead.as_nanos()))
}

/// Run a sharded simulation to completion and return every shard's
/// result, in shard order.
///
/// `factories[s]` is invoked on shard `s`'s worker thread with that
/// shard's [`ShardHandle`]; it builds the shard's [`Simulation`] (which
/// must be created inside the factory — simulations are pinned to the
/// thread that creates them) and returns the [`ShardRun`] hooks.
///
/// With a single shard the run is executed inline on the calling thread
/// with no synchronization at all; the event sequence is identical to
/// `Simulation::block_on` on the same workload.
///
/// # Examples
/// Two logical processes exchanging timestamped ticks across a 10 ms
/// lookahead edge — the result is independent of worker scheduling:
/// ```
/// use mgrid_desim::shard::{run_sharded, ShardPlan, ShardRun};
/// use mgrid_desim::time::{SimDuration, SimTime};
/// use mgrid_desim::Simulation;
/// use std::cell::RefCell;
/// use std::rc::Rc;
///
/// let plan = ShardPlan::connected(2, SimDuration::from_millis(10));
/// let out = run_sharded(plan, (0..2).map(|s| {
///     Box::new(move |h: mgrid_desim::shard::ShardHandle<u64>| {
///         let sim = Simulation::new(1);
///         let seen = Rc::new(RefCell::new(Vec::new()));
///         let root = sim.spawn({
///             let h = h.clone();
///             async move {
///                 // Tell the peer at t=0; it hears us 10 ms later.
///                 h.export(1 - s, SimTime::from_nanos(10_000_000), s as u64);
///             }
///         });
///         let seen2 = seen.clone();
///         let seen3 = seen.clone();
///         ShardRun {
///             sim,
///             deliver: Box::new(move |sim, imp| {
///                 let seen = seen2.clone();
///                 sim.spawn(async move {
///                     mgrid_desim::sleep_until(imp.time).await;
///                     seen.borrow_mut().push(imp.msg);
///                 });
///             }),
///             // Done once we sent our tick *and* heard the peer's.
///             root_done: Box::new(move || {
///                 root.is_finished() && !seen3.borrow().is_empty()
///             }),
///             finish: Box::new(move |_sim| seen.borrow().clone()),
///         }
///     }) as Box<dyn FnOnce(_) -> _ + Send>
/// }).collect());
/// assert_eq!(out, vec![vec![1u64], vec![0]]);
/// ```
pub fn run_sharded<M, R, F>(plan: ShardPlan, factories: Vec<F>) -> Vec<R>
where
    M: Send + 'static,
    R: Send + 'static,
    F: FnOnce(ShardHandle<M>) -> ShardRun<M, R> + Send + 'static,
{
    assert_eq!(
        factories.len(),
        plan.shards,
        "one factory per shard required"
    );
    if plan.shards == 1 {
        // Inline sequential path: byte-identical to Simulation::block_on.
        let handle = ShardHandle::new(0, &plan);
        let factory = factories.into_iter().next().unwrap();
        let mut run = factory(handle);
        let done = run.root_done;
        run.sim.run_until_or(SimTime::MAX, &*done);
        return vec![(run.finish)(run.sim)];
    }

    let workers = plan
        .shards
        .min(plan.max_workers)
        .min(default_workers().max(1));
    let lookahead = plan.lookahead.unwrap_or(SimDuration::MAX);
    let exchange = Arc::new(Exchange::<M> {
        barrier: Barrier::new(workers),
        inboxes: Mutex::new((0..plan.shards).map(|_| Vec::new()).collect()),
        mins: Mutex::new(vec![u64::MAX; plan.shards]),
        done: Mutex::new(vec![false; plan.shards]),
        failed: AtomicBool::new(false),
    });

    // Hand each worker its statically-assigned factories (shard s runs
    // on worker s % workers, forever — simulations cannot migrate).
    let mut per_worker: Vec<Vec<(usize, F)>> = (0..workers).map(|_| Vec::new()).collect();
    for (s, f) in factories.into_iter().enumerate() {
        per_worker[s % workers].push((s, f));
    }

    let results = Arc::new(Mutex::new(
        (0..plan.shards).map(|_| None).collect::<Vec<_>>(),
    ));
    std::thread::scope(|scope| {
        for assigned in per_worker {
            let exchange = Arc::clone(&exchange);
            let results = Arc::clone(&results);
            let plan = plan.clone();
            scope.spawn(move || {
                // The epoch rounds run under catch_unwind so a panicking
                // worker can release its peers: at the instant any worker
                // panics, every worker has completed the same number of
                // barrier waits (the barrier itself enforces this), so
                // the panicked worker contributes exactly one more wait,
                // after which every peer observes `failed` and drains
                // out instead of blocking forever.
                let rounds = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    worker_rounds(assigned, &plan, lookahead, &exchange)
                }));
                match rounds {
                    Ok(None) => {} // a peer failed; its panic propagates
                    Ok(Some(shards)) => {
                        let mut results = results.lock().expect("worker panicked");
                        for (s, mut st) in shards {
                            let run = st.run.take().expect("shard already finished");
                            results[s] = Some((run.finish)(run.sim));
                        }
                    }
                    Err(p) => {
                        exchange.failed.store(true, Ordering::SeqCst);
                        exchange.barrier.wait();
                        std::panic::resume_unwind(p);
                    }
                }
            });
        }
    });
    let mut results = results.lock().expect("worker panicked");
    results
        .iter_mut()
        .map(|r| r.take().expect("shard produced no result"))
        .collect()
}

/// Run the barrier-epoch rounds for one worker's shards. Returns the
/// shard states for finishing, or `None` if a peer worker failed.
fn worker_rounds<M, R, F>(
    assigned: Vec<(usize, F)>,
    plan: &ShardPlan,
    lookahead: SimDuration,
    exchange: &Exchange<M>,
) -> Option<Vec<(usize, ShardState<M, R>)>>
where
    M: Send + 'static,
    R: Send + 'static,
    F: FnOnce(ShardHandle<M>) -> ShardRun<M, R> + Send + 'static,
{
    // Build this worker's shards locally (pinning their simulations to
    // this thread), in ascending shard order.
    let mut shards: Vec<(usize, ShardState<M, R>)> = assigned
        .into_iter()
        .map(|(s, f)| {
            let handle = ShardHandle::new(s, plan);
            let run = f(handle.clone());
            (
                s,
                ShardState {
                    handle,
                    run: Some(run),
                    pending: BinaryHeap::new(),
                },
            )
        })
        .collect();

    loop {
        // Phase A: publish exports produced by the previous window.
        {
            let mut inboxes = exchange.inboxes.lock().expect("peer worker panicked");
            for (_, st) in &mut shards {
                for export in st.handle.drain() {
                    inboxes[export.to].push(export.import);
                }
            }
        }
        exchange.barrier.wait();
        if exchange.failed.load(Ordering::SeqCst) {
            return None;
        }

        // Phase B: absorb imports, report local minima and completion.
        {
            let mut inboxes = exchange.inboxes.lock().expect("peer worker panicked");
            for (s, st) in &mut shards {
                for imp in inboxes[*s].drain(..) {
                    st.pending.push(std::cmp::Reverse(imp));
                }
            }
        }
        {
            let mut mins = exchange.mins.lock().expect("peer worker panicked");
            let mut done = exchange.done.lock().expect("peer worker panicked");
            for (s, st) in &shards {
                mins[*s] = st.local_min().map_or(u64::MAX, SimTime::as_nanos);
                done[*s] = st.run.as_ref().is_none_or(|r| (r.root_done)());
            }
        }
        exchange.barrier.wait();
        if exchange.failed.load(Ordering::SeqCst) {
            return None;
        }

        // Phase C: everyone derives the same verdict from the same data
        // (no worker can reach next round's Phase B writes before all
        // have passed the Phase B barrier above, so the reads are
        // race-free and every worker agrees).
        let verdict = {
            let mins = exchange.mins.lock().expect("peer worker panicked");
            let done = exchange.done.lock().expect("peer worker panicked");
            compute_verdict(&mins, &done, lookahead)
        };
        match verdict {
            Verdict::Stop => {
                // Final barrier: keeps the wait count uniform so a worker
                // that panicked this round can still drain everyone.
                exchange.barrier.wait();
                break;
            }
            Verdict::Advance(horizon_ns) => {
                // Execute the half-open window [*, horizon): deliver the
                // now-safe imports, then run strictly below the horizon.
                let horizon = SimTime::from_nanos(horizon_ns);
                let run_to = SimTime::from_nanos(horizon_ns.saturating_sub(1));
                for (_, st) in &mut shards {
                    st.deliver_until(horizon);
                    let run = st.run.as_mut().expect("shard already finished");
                    run.sim.run_until(run_to);
                }
            }
        }
    }

    Some(shards)
}

/// Run independent jobs on the sharded engine's worker pool and return
/// their results in submission order.
///
/// This is [`run_sharded`] with the degenerate edge-free plan: each job
/// is a logical process with no mailboxes, so every job runs to
/// completion in one epoch. Jobs are claimed dynamically for load
/// balance; since they are mutually independent and individually
/// deterministic, placement cannot affect any result.
///
/// `workers <= 1` runs every job inline on the calling thread, in order
/// — byte-identical to a plain sequential loop.
pub fn run_jobs<R, F>(workers: usize, jobs: Vec<F>) -> Vec<R>
where
    R: Send + 'static,
    F: FnOnce() -> R + Send + 'static,
{
    if workers <= 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(|j| j()).collect();
    }
    let n = jobs.len();
    let workers = workers.min(n);
    let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = jobs[i]
                    .lock()
                    .expect("job poisoned")
                    .take()
                    .expect("job claimed twice");
                *results[i].lock().expect("result poisoned") = Some(job());
            });
        }
    });
    results
        .into_iter()
        .map(|r| {
            r.into_inner()
                .expect("worker panicked")
                .expect("job produced no result")
        })
        .collect()
}

/// The machine's available parallelism (1 if it cannot be determined).
/// Callers that honour `MGRID_SHARDS` clamp to this.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sleep_until;

    /// A ping-pong workload: `shards` LPs arranged in a ring, each
    /// forwarding a counter to its right neighbour with 5 ms latency
    /// until the counter reaches `rounds`. Returns, per shard, the list
    /// of (arrival_ns, value) pairs it observed.
    fn ring(shards: usize, rounds: u64) -> Vec<Vec<(u64, u64)>> {
        let la = SimDuration::from_millis(5);
        let plan = ShardPlan::connected(shards, la);
        let factories: Vec<_> = (0..shards)
            .map(|_| {
                Box::new(move |h: ShardHandle<u64>| {
                    let sim = Simulation::new(9);
                    let log: Rc<RefCell<Vec<(u64, u64)>>> = Rc::new(RefCell::new(Vec::new()));
                    let done = Rc::new(Cell::new(false));
                    // Shard 0 kicks the ring off.
                    let root = sim.spawn({
                        let h = h.clone();
                        async move {
                            if h.shard_id() == 0 && rounds > 0 {
                                h.export(1 % h.shards(), crate::executor::now() + la, 0);
                            }
                        }
                    });
                    let deliver_log = log.clone();
                    let done2 = done.clone();
                    let finish_log = log.clone();
                    ShardRun {
                        sim,
                        deliver: Box::new(move |sim, imp: Import<u64>| {
                            let h = h.clone();
                            let log = deliver_log.clone();
                            let done = done2.clone();
                            sim.spawn(async move {
                                sleep_until(imp.time).await;
                                log.borrow_mut().push((imp.time.as_nanos(), imp.msg));
                                let next = imp.msg + 1;
                                if next < rounds {
                                    let to = (h.shard_id() + 1) % h.shards();
                                    h.export(to, crate::executor::now() + la, next);
                                } else {
                                    done.set(true);
                                }
                            });
                        }),
                        root_done: Box::new(move || {
                            // The ring terminates when the last hop landed
                            // anywhere; each shard is "done" once its own
                            // root ran and no message of its is pending.
                            root.is_finished() && done.get()
                        }),
                        finish: Box::new(move |_| finish_log.borrow().clone()),
                    }
                })
                    as Box<dyn FnOnce(ShardHandle<u64>) -> ShardRun<u64, Vec<(u64, u64)>> + Send>
            })
            .collect();
        run_sharded(plan, factories)
    }

    #[test]
    fn two_shard_ring_is_deterministic() {
        let a = ring(2, 6);
        let b = ring(2, 6);
        assert_eq!(a, b);
        // 6 hops at 5 ms each, alternating shards.
        let all: Vec<_> = {
            let mut v: Vec<_> = a.iter().flatten().copied().collect();
            v.sort_unstable();
            v
        };
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], (5_000_000, 0));
        assert_eq!(all[5], (30_000_000, 5));
    }

    #[test]
    fn shard_counts_agree_on_the_merged_event_log() {
        // The merged (time, value) log must be identical for 2, 3, and 4
        // shards — the engine's core guarantee.
        let merged = |shards: usize| -> Vec<(u64, u64)> {
            let mut v: Vec<_> = ring(shards, 12).iter().flatten().copied().collect();
            v.sort_unstable();
            v
        };
        let two = merged(2);
        assert_eq!(two, merged(3));
        assert_eq!(two, merged(4));
    }

    #[test]
    fn single_shard_runs_inline_without_threads() {
        let plan = ShardPlan::connected(1, SimDuration::from_millis(1));
        let tid = std::thread::current().id();
        let out = run_sharded::<(), _, _>(
            plan,
            vec![Box::new(move |_h: ShardHandle<()>| {
                assert_eq!(std::thread::current().id(), tid);
                let sim = Simulation::new(3);
                let root = sim.spawn(async {
                    crate::sleep(SimDuration::from_millis(2)).await;
                });
                ShardRun {
                    sim,
                    deliver: Box::new(|_, _| unreachable!("no peers")),
                    root_done: Box::new(move || root.is_finished()),
                    finish: Box::new(|sim| sim.now().as_millis()),
                }
            })
                as Box<
                    dyn FnOnce(ShardHandle<()>) -> ShardRun<(), u64> + Send,
                >],
        );
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn lookahead_violation_panics() {
        let plan = ShardPlan::connected(2, SimDuration::from_millis(50));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_sharded::<u8, _, _>(
                plan,
                (0..2)
                    .map(|s| {
                        Box::new(move |h: ShardHandle<u8>| {
                            let sim = Simulation::new(1);
                            let root = sim.spawn({
                                let h = h.clone();
                                async move {
                                    if s == 0 {
                                        // Arrives in 1 ms — inside the 50 ms
                                        // lookahead: must panic.
                                        h.export(1, SimTime::from_nanos(1_000_000), 1);
                                    }
                                }
                            });
                            ShardRun {
                                sim,
                                deliver: Box::new(|_, _| {}),
                                root_done: Box::new(move || root.is_finished()),
                                finish: Box::new(|_| ()),
                            }
                        })
                            as Box<dyn FnOnce(ShardHandle<u8>) -> ShardRun<u8, ()> + Send>
                    })
                    .collect(),
            )
        }));
        assert!(caught.is_err(), "lookahead violation must panic");
    }

    #[test]
    fn run_jobs_preserves_submission_order() {
        let jobs: Vec<_> = (0..17)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> i32 + Send>)
            .collect();
        let serial: Vec<_> = (0..17).map(|i| i * i).collect();
        assert_eq!(run_jobs(1, jobs), serial);
        let jobs: Vec<_> = (0..17)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> i32 + Send>)
            .collect();
        assert_eq!(run_jobs(4, jobs), serial);
    }
}
