//! Deterministic sharded parallel simulation (conservative PDES).
//!
//! This is the **one sanctioned parallel runtime** of the simulation core:
//! everything else in `mgrid-desim` is single-threaded by construction
//! (and mgrid-lint's MG005 enforces that). The sharded engine runs N
//! *logical processes* (shards) — each an ordinary, fully deterministic
//! [`Simulation`] — on a fixed-size worker pool, and synchronizes them
//! with **event-driven conservative epochs**:
//!
//! * Every shard owns one `Simulation`, created **on its worker thread**
//!   (the executor's ready queue is owner-thread checked) and never
//!   migrated.
//! * Shards exchange timestamped messages through per-`(src, dst)`
//!   double-buffered exchange cells (`crate::exchange`): a batch is
//!   published with one atomic pointer swap before the barrier and
//!   drained with another after it — no locks anywhere on the epoch
//!   path. A message exported at virtual time `t` must arrive no
//!   earlier than `t + lookahead(src, dst)`, where the per-pair
//!   lookahead is the minimum latency across that edge of the cut
//!   (exported by `mgrid-netsim` / `microgrid::partition` for grid
//!   topologies).
//! * Each barrier round all-reduces every shard's earliest possible
//!   activity (next local event or earliest in-flight import) and gives
//!   each shard its own **horizon**: the earliest instant any chain of
//!   cross-shard messages could still reach it. The epoch floor jumps
//!   straight to the global minimum next-event time — empty virtual
//!   time costs one round, never `gap / lookahead` rounds — and a shard
//!   with nothing before its horizon parks on the barrier without
//!   touching its executor at all.
//! * A shard may additionally publish [`LookaheadAdvice`] widening its
//!   static lookahead while faults keep the fast cut links down; the
//!   engine clamps every window at the advice validity floor so a claim
//!   is always re-examined before it can expire.
//! * Imports merge into each shard **sorted by `(time, from_shard,
//!   seq)`** and are injected at their exact arrival time. Within one
//!   shard the injection order therefore never depends on thread
//!   scheduling, which makes an N-shard run byte-identical to the
//!   1-shard run.
//!
//! With `shards = 1` (or a plan with no edges and one job) the engine
//! runs entirely inline on the calling thread — no threads, no barriers,
//! no mailboxes — and is the same event loop as [`Simulation::run`], so
//! sequential behaviour is bit-for-bit unchanged.
//!
//! See `docs/PARALLEL.md` for the determinism argument, the horizon
//! fixpoint, and tuning notes (`MGRID_SHARDS`).

use std::cell::{Cell, RefCell};
use std::collections::BinaryHeap;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use crate::exchange::{ExchangeCell, SlotVec};
use crate::executor::Simulation;
use crate::time::{SimDuration, SimTime};

/// How the shards of a plan may communicate.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    shards: usize,
    lookahead: Option<SimDuration>,
    max_workers: usize,
    /// Flattened `shards × shards` per-pair lookahead in nanoseconds,
    /// row-major by source; `u64::MAX` marks a pair with no direct edge.
    matrix: Option<Arc<[u64]>>,
    /// Record one [`EpochRecord`] per barrier round (see
    /// [`ShardPlan::with_epoch_log`]).
    log_epochs: bool,
}

impl ShardPlan {
    /// A plan for `shards` logical processes that exchange messages with
    /// the given conservative lookahead (the minimum virtual latency any
    /// cross-shard message experiences).
    ///
    /// # Panics
    /// Panics if `shards` is zero or `lookahead` is zero — a zero
    /// lookahead admits no safe epoch window and the engine cannot make
    /// progress.
    pub fn connected(shards: usize, lookahead: SimDuration) -> Self {
        assert!(shards > 0, "a plan needs at least one shard");
        assert!(
            !lookahead.is_zero(),
            "conservative sharding requires a strictly positive lookahead"
        );
        ShardPlan {
            shards,
            lookahead: Some(lookahead),
            max_workers: usize::MAX,
            matrix: None,
            log_epochs: false,
        }
    }

    /// A plan whose shards never communicate (no cross-shard edges, so
    /// the lookahead is effectively infinite and each shard runs to
    /// completion in a single epoch). This is the degenerate plan behind
    /// [`run_jobs`] — independent scenarios of one benchmark figure.
    pub fn independent(shards: usize) -> Self {
        assert!(shards > 0, "a plan needs at least one shard");
        ShardPlan {
            shards,
            lookahead: None,
            max_workers: usize::MAX,
            matrix: None,
            log_epochs: false,
        }
    }

    /// Record one [`EpochRecord`] per barrier round into
    /// [`EpochStats::records`] — the per-shard horizon/activity log the
    /// Perfetto exporter renders as shard-epoch lanes. Off by default:
    /// the log grows with the number of rounds, which the regular
    /// benchmark paths don't want to pay for.
    pub fn with_epoch_log(mut self) -> Self {
        self.log_epochs = true;
        self
    }

    /// Cap the worker pool at `n` threads. Shards are statically
    /// assigned round-robin (`shard % workers`), so a smaller pool
    /// multiplexes several shards per worker without affecting results.
    pub fn with_max_workers(mut self, n: usize) -> Self {
        assert!(n > 0, "the worker pool needs at least one thread");
        self.max_workers = n;
        self
    }

    /// Refine a connected plan with a per-`(src, dst)` lookahead matrix:
    /// `matrix[src][dst]` is the minimum latency of the direct cut links
    /// from shard `src` to shard `dst`, or `None` when no direct edge
    /// joins the pair (such pairs exchange no traffic — cross-shard
    /// messages always leave through a direct cut link). Wider per-pair
    /// bounds give distant shards larger safe windows than the single
    /// global minimum would.
    ///
    /// # Panics
    /// Panics on a non-square matrix, on a plan without a lookahead
    /// (use [`ShardPlan::connected`]), or on an off-diagonal entry below
    /// the plan's global lookahead (the global value must stay the
    /// minimum over the matrix).
    pub fn with_lookahead_matrix(mut self, matrix: Vec<Vec<Option<SimDuration>>>) -> Self {
        let la = self
            .lookahead
            .expect("per-pair lookahead requires a connected plan");
        assert_eq!(matrix.len(), self.shards, "matrix must be shards × shards");
        let mut flat = Vec::with_capacity(self.shards * self.shards);
        for (s, row) in matrix.iter().enumerate() {
            assert_eq!(row.len(), self.shards, "matrix must be shards × shards");
            for (d, cell) in row.iter().enumerate() {
                flat.push(match cell {
                    Some(l) => {
                        assert!(
                            s == d || *l >= la,
                            "pair lookahead ({s},{d}) is below the plan's global lookahead"
                        );
                        l.as_nanos()
                    }
                    None => u64::MAX,
                });
            }
        }
        self.matrix = Some(flat.into());
        self
    }

    /// Number of shards in the plan.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The conservative lookahead, `None` for independent shards.
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.lookahead
    }

    /// Conservative lookahead from `src` to `dst` in nanoseconds: the
    /// matrix entry when one was provided, the global lookahead
    /// otherwise; `u64::MAX` when the pair exchanges no traffic.
    fn pair_lookahead_ns(&self, src: usize, dst: usize) -> u64 {
        match &self.matrix {
            Some(m) => m[src * self.shards + dst],
            None => self.lookahead.map_or(u64::MAX, SimDuration::as_nanos),
        }
    }
}

/// A timestamped cross-shard message, as seen by the receiving shard.
#[derive(Debug)]
pub struct Import<M> {
    /// Virtual arrival time (the instant the receiver must act on it).
    pub time: SimTime,
    /// Originating shard.
    pub from: usize,
    /// FIFO sequence number on the `(from, to)` mailbox edge.
    pub seq: u64,
    /// The message itself.
    pub msg: M,
}

// Imports merge through a min-heap ordered by (time, from, seq): the
// deterministic tie-break the whole engine's repeatability rests on.
impl<M> PartialEq for Import<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.from, self.seq) == (other.time, other.from, other.seq)
    }
}
impl<M> Eq for Import<M> {}
impl<M> PartialOrd for Import<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Import<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.from, self.seq).cmp(&(other.time, other.from, other.seq))
    }
}

struct Export<M> {
    to: usize,
    import: Import<M>,
}

/// A shard's capability to publish messages to its peers.
///
/// Cheap to clone; hand clones to the simulation tasks that sit on the
/// shard boundary (e.g. netsim's cross-shard link pumps). Exports are
/// buffered locally and shipped at the next epoch barrier, preserving
/// per-edge FIFO order.
pub struct ShardHandle<M> {
    shard_id: usize,
    shards: usize,
    lookahead: Option<SimDuration>,
    matrix: Option<Arc<[u64]>>,
    outbox: Rc<RefCell<Vec<Export<M>>>>,
    /// Per-destination FIFO sequence counters.
    seqs: Rc<Vec<Cell<u64>>>,
}

impl<M> Clone for ShardHandle<M> {
    fn clone(&self) -> Self {
        ShardHandle {
            shard_id: self.shard_id,
            shards: self.shards,
            lookahead: self.lookahead,
            matrix: self.matrix.clone(),
            outbox: self.outbox.clone(),
            seqs: self.seqs.clone(),
        }
    }
}

impl<M> ShardHandle<M> {
    fn new(shard_id: usize, plan: &ShardPlan) -> Self {
        ShardHandle {
            shard_id,
            shards: plan.shards,
            lookahead: plan.lookahead,
            matrix: plan.matrix.clone(),
            outbox: Rc::new(RefCell::new(Vec::new())),
            seqs: Rc::new((0..plan.shards).map(|_| Cell::new(0)).collect()),
        }
    }

    /// This shard's index, `0..shards`.
    pub fn shard_id(&self) -> usize {
        self.shard_id
    }

    /// Total number of shards in the run.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Export `msg` to shard `to`, arriving at virtual time `time`.
    ///
    /// Must be called from inside this shard's simulation (it reads the
    /// simulation clock to check the lookahead contract).
    ///
    /// # Panics
    /// Panics if `time` violates the plan's lookahead for the
    /// `(self, to)` pair — i.e. the message would arrive inside an epoch
    /// window a peer may currently be executing, which would break
    /// determinism.
    pub fn export(&self, to: usize, time: SimTime, msg: M) {
        assert!(to < self.shards, "export to unknown shard {to}");
        assert_ne!(to, self.shard_id, "a shard cannot export to itself");
        if self.lookahead.is_some() {
            let now = crate::executor::now();
            let pair_ns = self.matrix.as_ref().map_or_else(
                || self.lookahead.unwrap().as_nanos(),
                |m| m[self.shard_id * self.shards + to],
            );
            assert!(
                time.as_nanos() >= now.as_nanos().saturating_add(pair_ns),
                "lookahead violation: export from shard {} at {now} arriving {time} \
                 before the shard-{to} lookahead ({pair_ns} ns) elapses",
                self.shard_id,
            );
        }
        let seq = self.seqs[to].get();
        self.seqs[to].set(seq + 1);
        self.outbox.borrow_mut().push(Export {
            to,
            import: Import {
                time,
                from: self.shard_id,
                seq,
                msg,
            },
        });
    }

    fn drain(&self) -> Vec<Export<M>> {
        std::mem::take(&mut self.outbox.borrow_mut())
    }
}

/// Delivery hook of a [`ShardRun`]: applies one import to the shard's
/// simulation.
pub type DeliverFn<M> = Box<dyn FnMut(&mut Simulation, Import<M>)>;

/// Adaptive-lookahead hook of a [`ShardRun`]: consulted once per barrier
/// round with the shard's current virtual time.
pub type LookaheadFn = Box<dyn Fn(SimTime) -> LookaheadAdvice>;

/// Adaptive lookahead advice, published by a shard at each barrier round.
///
/// The static per-pair lookahead of a [`ShardPlan`] is the minimum
/// latency of the cut assuming *every* cut link can carry traffic. When
/// fault events down the fast links on the cut, the surviving (or
/// still-draining) links may be much slower, and a shard that knows
/// this can widen everyone's epoch windows by promising a larger bound
/// on its own future exports.
#[derive(Clone, Copy, Debug, Default)]
pub struct LookaheadAdvice {
    /// A lower bound on `arrival − send` for every export this shard
    /// will make while the advice is valid. `None` claims nothing
    /// beyond the plan's static lookahead (always safe); use
    /// `Some(SimDuration::MAX)` for "cannot export at all right now".
    pub out_lookahead: Option<SimDuration>,
    /// Earliest virtual instant at which the claim may stop holding —
    /// typically the next fault event that can bring a cut link back up
    /// (see `FaultPlan::link_change_times` in `mgrid-faults`). `None`
    /// means the claim holds forever. The engine never lets any shard's
    /// window cross the earliest published floor, so advice is always
    /// re-sampled before it could go stale.
    pub valid_until: Option<SimTime>,
}

/// What a shard factory hands back to the engine: the simulation to
/// drive, plus the hooks the epoch loop needs.
pub struct ShardRun<M, R> {
    /// The shard's simulation, created on the worker thread.
    pub sim: Simulation,
    /// Called at each barrier for every import addressed to this shard,
    /// in `(time, from, seq)` order. Typical implementations spawn a task
    /// that sleeps until `import.time` and then applies the message.
    pub deliver: DeliverFn<M>,
    /// True once the shard's root work is complete. When every shard
    /// reports done the run ends at the next barrier (mirroring
    /// [`Simulation::block_on`], which stops at root completion).
    pub root_done: Box<dyn Fn() -> bool>,
    /// Optional adaptive-lookahead hook; `None` publishes neutral advice
    /// (the static plan lookahead, always valid).
    pub advise: Option<LookaheadFn>,
    /// Extracts the shard's result after the final epoch.
    pub finish: Box<dyn FnOnce(Simulation) -> R>,
}

/// Per-shard state owned by a worker thread.
struct ShardState<M, R> {
    handle: ShardHandle<M>,
    run: Option<ShardRun<M, R>>,
    /// Imports received but not yet deliverable (arrival beyond the
    /// current horizon), kept as a min-heap on `(time, from, seq)`.
    pending: BinaryHeap<std::cmp::Reverse<Import<M>>>,
}

impl<M, R> ShardState<M, R> {
    /// Earliest local activity: next simulation event or pending import.
    fn local_min(&self) -> Option<SimTime> {
        let sim_next = self.run.as_ref().and_then(|r| r.sim.next_event_time());
        let imp_next = self.pending.peek().map(|std::cmp::Reverse(i)| i.time);
        match (sim_next, imp_next) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Deliver every pending import with `time < horizon`, sorted.
    fn deliver_until(&mut self, horizon: SimTime) {
        let run = self.run.as_mut().expect("shard already finished");
        while let Some(std::cmp::Reverse(head)) = self.pending.peek() {
            if head.time >= horizon {
                break;
            }
            let std::cmp::Reverse(imp) = self.pending.pop().unwrap();
            (run.deliver)(&mut run.sim, imp);
        }
    }
}

/// Shared cross-worker coordination state for one run.
///
/// Everything is exchanged through parity-banked atomics: each round a
/// worker *stores* into the bank selected by the round's parity before
/// the (single) barrier, then every worker *loads* the whole bank after
/// it. The barrier provides the happens-before edge; alternating parity
/// keeps one round's stores from racing the previous round's loads, so
/// no locks are needed anywhere.
struct Exchange<M> {
    barrier: Barrier,
    /// `cells[src * shards + dst]`: the double-banked mailbox of each
    /// directed shard pair.
    cells: Vec<ExchangeCell<Import<M>>>,
    /// Per bank, per shard: local minimum next-event time (nanos,
    /// `u64::MAX` = quiescent).
    mins: [Vec<AtomicU64>; 2],
    /// Per bank, per shard: root completion.
    done: [Vec<AtomicBool>; 2],
    /// Per bank, per shard: advice lookahead in nanos (`0` = no claim
    /// beyond the static plan).
    out_la: [Vec<AtomicU64>; 2],
    /// Per bank, per shard: advice validity floor in nanos
    /// (`u64::MAX` = unbounded).
    floor: [Vec<AtomicU64>; 2],
    /// Set when a worker panicked mid-round; peers drain out at their
    /// next barrier instead of waiting forever.
    failed: AtomicBool,
    /// Barrier rounds executed (every worker counts the same number;
    /// `fetch_max` makes the aggregation order-free).
    epochs: AtomicU64,
    /// Shard-windows that executed events / were idle-parked.
    windows_run: AtomicU64,
    windows_idle: AtomicU64,
    /// Per-round log (only with [`ShardPlan::with_epoch_log`]); set
    /// exactly once, after the epoch loop, by the worker owning shard 0
    /// — the verdict bank is identical on every worker, so one recorder
    /// suffices and a write-once cell (no lock) is all it takes. Read by
    /// the caller after the worker joins.
    epoch_log: std::sync::OnceLock<Vec<EpochRecord>>,
}

impl<M> Exchange<M> {
    fn new(shards: usize, workers: usize) -> Self {
        let bank_u64 = || -> [Vec<AtomicU64>; 2] {
            std::array::from_fn(|_| (0..shards).map(|_| AtomicU64::new(u64::MAX)).collect())
        };
        Exchange {
            barrier: Barrier::new(workers),
            cells: (0..shards * shards).map(|_| ExchangeCell::new()).collect(),
            mins: bank_u64(),
            done: std::array::from_fn(|_| (0..shards).map(|_| AtomicBool::new(false)).collect()),
            out_la: bank_u64(),
            floor: bank_u64(),
            failed: AtomicBool::new(false),
            epochs: AtomicU64::new(0),
            windows_run: AtomicU64::new(0),
            windows_idle: AtomicU64::new(0),
            epoch_log: std::sync::OnceLock::new(),
        }
    }
}

/// One barrier round of a sharded run, as logged by
/// [`ShardPlan::with_epoch_log`]: the per-shard horizons granted by the
/// verdict and whether each shard had events to execute before its
/// horizon. The Perfetto exporter turns consecutive records into
/// run/idle slices on per-shard lanes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EpochRecord {
    /// Per-shard exclusive horizon in nanoseconds (`u64::MAX` when a
    /// shard was unbounded this round).
    pub horizons: Vec<u64>,
    /// Per-shard: true when the shard had activity before its horizon
    /// (the window executed rather than idle-parked).
    pub ran: Vec<bool>,
}

/// Where a sharded run spent its barrier rounds; see
/// [`run_sharded_stats`]. The perf harness uses this to report
/// epochs/sec and per-epoch barrier overhead.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Barrier rounds executed (one global all-reduce each). Zero for
    /// the inline single-shard path.
    pub epochs: u64,
    /// Shard-windows that actually executed events.
    pub windows_run: u64,
    /// Shard-windows skipped because the shard had nothing before its
    /// horizon: the shard parked on the barrier without its executor
    /// being polled at all.
    pub windows_idle: u64,
    /// Per-round horizon/activity log; empty unless the plan asked for
    /// it via [`ShardPlan::with_epoch_log`].
    pub records: Vec<EpochRecord>,
}

/// One round's outcome, identical on every worker.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Verdict {
    /// Per-shard horizons (nanos): shard `d` may deliver and execute
    /// strictly below `horizons[d]`.
    Run(Vec<u64>),
    /// Every root completed, or the whole system is quiescent.
    Stop,
}

/// Derive one round's verdict from the published bank.
///
/// `act[s]` starts as shard `s`'s earliest possible activity — its
/// local minimum (`mins`) or the earliest import already in flight to
/// it this round (`arrivals`) — and is relaxed to the fixpoint of
///
/// ```text
/// act[d] = min(act[d], min over s≠d of act[s] + L(s, d))
/// ```
///
/// where `L(s, d)` is the static per-pair lookahead widened by `s`'s
/// adaptive advice. The fixpoint accounts for *transitive* wake-ups: an
/// idle shard is bounded not at infinity but at the cheapest chain of
/// cross-shard messages that could still reach it. Shard `d`'s horizon
/// then excludes `d`'s own activity — its own events cannot produce
/// incoming messages except through a peer, which the fixpoint already
/// prices in. This is what lets a busy shard run far ahead of idle
/// peers instead of everyone marching in lookahead-sized steps, and it
/// strictly dominates the fixed-stride rule (for two shards it yields
/// `m + 2L` instead of `m + L`).
///
/// Every window is finally clamped at the earliest advice-validity
/// floor `C`: advice is re-published each round, so no shard may rely
/// on a claim past the instant it could expire. When `C` is at or below
/// the global minimum `m`, the one-nanosecond window `[m, m+1)` is used
/// instead — always safe, because arrivals carry at least the static
/// lookahead (≥ 1 ns) past their send time, and it guarantees progress.
fn compute_verdict(
    plan: &ShardPlan,
    mins: &[u64],
    arrivals: &[u64],
    done: &[bool],
    out_la: &[u64],
    floors: &[u64],
) -> Verdict {
    if done.iter().all(|&d| d) {
        return Verdict::Stop;
    }
    let n = mins.len();
    let mut act: Vec<u64> = mins.iter().zip(arrivals).map(|(&m, &a)| m.min(a)).collect();
    let m = act.iter().copied().min().unwrap_or(u64::MAX);
    if m == u64::MAX {
        // Quiescent with roots unfinished: a distributed deadlock. Stop
        // and let the caller's `finish` hooks observe the blocked state,
        // exactly as `Simulation::run` leaves blocked tasks pending.
        return Verdict::Stop;
    }
    // Both the static pair bound and the advice are lower bounds on
    // arrival − send, so their max is one too.
    let l_eff = |s: usize, d: usize| plan.pair_lookahead_ns(s, d).max(out_la[s]);
    // Relax to the fixpoint; n sweeps suffice (a lowering chain visits
    // each shard at most once — going around a cycle only adds latency).
    for _ in 0..n {
        let mut changed = false;
        for d in 0..n {
            for s in 0..n {
                if s == d {
                    continue;
                }
                let via = act[s].saturating_add(l_eff(s, d));
                if via < act[d] {
                    act[d] = via;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let c = floors.iter().copied().min().unwrap_or(u64::MAX);
    let clamp = if c <= m { m.saturating_add(1) } else { c };
    let horizons = (0..n)
        .map(|d| {
            let h = (0..n)
                .filter(|&s| s != d)
                .map(|s| act[s].saturating_add(l_eff(s, d)))
                .min()
                .unwrap_or(u64::MAX);
            h.min(clamp)
        })
        .collect();
    Verdict::Run(horizons)
}

/// Run a sharded simulation to completion and return every shard's
/// result, in shard order.
///
/// `factories[s]` is invoked on shard `s`'s worker thread with that
/// shard's [`ShardHandle`]; it builds the shard's [`Simulation`] (which
/// must be created inside the factory — simulations are pinned to the
/// thread that creates them) and returns the [`ShardRun`] hooks.
///
/// With a single shard the run is executed inline on the calling thread
/// with no synchronization at all; the event sequence is identical to
/// `Simulation::block_on` on the same workload.
///
/// # Examples
/// Two logical processes exchanging timestamped ticks across a 10 ms
/// lookahead edge — the result is independent of worker scheduling:
/// ```
/// use mgrid_desim::shard::{run_sharded, ShardPlan, ShardRun};
/// use mgrid_desim::time::{SimDuration, SimTime};
/// use mgrid_desim::Simulation;
/// use std::cell::RefCell;
/// use std::rc::Rc;
///
/// let plan = ShardPlan::connected(2, SimDuration::from_millis(10));
/// let out = run_sharded(plan, (0..2).map(|s| {
///     Box::new(move |h: mgrid_desim::shard::ShardHandle<u64>| {
///         let sim = Simulation::new(1);
///         let seen = Rc::new(RefCell::new(Vec::new()));
///         let root = sim.spawn({
///             let h = h.clone();
///             async move {
///                 // Tell the peer at t=0; it hears us 10 ms later.
///                 h.export(1 - s, SimTime::from_nanos(10_000_000), s as u64);
///             }
///         });
///         let seen2 = seen.clone();
///         let seen3 = seen.clone();
///         ShardRun {
///             sim,
///             deliver: Box::new(move |sim, imp| {
///                 let seen = seen2.clone();
///                 sim.spawn(async move {
///                     mgrid_desim::sleep_until(imp.time).await;
///                     seen.borrow_mut().push(imp.msg);
///                 });
///             }),
///             // Done once we sent our tick *and* heard the peer's.
///             root_done: Box::new(move || {
///                 root.is_finished() && !seen3.borrow().is_empty()
///             }),
///             advise: None,
///             finish: Box::new(move |_sim| seen.borrow().clone()),
///         }
///     }) as Box<dyn FnOnce(_) -> _ + Send>
/// }).collect());
/// assert_eq!(out, vec![vec![1u64], vec![0]]);
/// ```
pub fn run_sharded<M, R, F>(plan: ShardPlan, factories: Vec<F>) -> Vec<R>
where
    M: Send + 'static,
    R: Send + 'static,
    F: FnOnce(ShardHandle<M>) -> ShardRun<M, R> + Send + 'static,
{
    run_sharded_stats(plan, factories).0
}

/// [`run_sharded`], additionally returning the engine's [`EpochStats`]
/// (barrier rounds, executed vs. idle-parked shard-windows).
pub fn run_sharded_stats<M, R, F>(plan: ShardPlan, factories: Vec<F>) -> (Vec<R>, EpochStats)
where
    M: Send + 'static,
    R: Send + 'static,
    F: FnOnce(ShardHandle<M>) -> ShardRun<M, R> + Send + 'static,
{
    assert_eq!(
        factories.len(),
        plan.shards,
        "one factory per shard required"
    );
    if plan.shards == 1 {
        // Inline sequential path: byte-identical to Simulation::block_on.
        let handle = ShardHandle::new(0, &plan);
        let factory = factories.into_iter().next().unwrap();
        let mut run = factory(handle);
        let done = run.root_done;
        run.sim.run_until_or(SimTime::MAX, &*done);
        return (vec![(run.finish)(run.sim)], EpochStats::default());
    }

    let workers = plan
        .shards
        .min(plan.max_workers)
        .min(default_workers().max(1));
    let exchange = Exchange::<M>::new(plan.shards, workers);

    // Hand each worker its statically-assigned factories (shard s runs
    // on worker s % workers, forever — simulations cannot migrate).
    let mut per_worker: Vec<Vec<(usize, F)>> = (0..workers).map(|_| Vec::new()).collect();
    for (s, f) in factories.into_iter().enumerate() {
        per_worker[s % workers].push((s, f));
    }

    let results: SlotVec<R> = SlotVec::new(plan.shards);
    std::thread::scope(|scope| {
        for assigned in per_worker {
            let exchange = &exchange;
            let results = &results;
            let plan = plan.clone();
            scope.spawn(move || {
                // The epoch rounds run under catch_unwind so a panicking
                // worker can release its peers. Invariant: when any
                // worker panics inside `worker_rounds`, every live peer
                // still has at least one barrier wait ahead of it — the
                // round verdict is computed identically everywhere, and
                // nothing between a Stop verdict and loop exit can
                // panic — so the panicked worker contributes exactly one
                // drain wait, after which every peer observes `failed`
                // and drains out instead of blocking forever.
                let rounds = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    worker_rounds(assigned, &plan, exchange)
                }));
                match rounds {
                    Ok(None) => {} // a peer failed; its panic propagates
                    Ok(Some(shards)) => {
                        for (s, mut st) in shards {
                            let run = st.run.take().expect("shard already finished");
                            let out = (run.finish)(run.sim);
                            // SAFETY: shard indices are statically
                            // partitioned across workers, so this thread
                            // is the only writer of slot `s`; the scope
                            // join below publishes the write before the
                            // collecting thread reads it.
                            unsafe { results.put(s, out) };
                        }
                    }
                    Err(p) => {
                        // ORDERING: Release publishes the abort flag;
                        // paired with the Acquire load every worker does
                        // right after the epoch barrier. No payload
                        // beyond the flag itself crosses here, so
                        // SeqCst's total order would buy nothing.
                        exchange.failed.store(true, Ordering::Release);
                        exchange.barrier.wait();
                        std::panic::resume_unwind(p);
                    }
                }
            });
        }
    });
    let stats = EpochStats {
        // ORDERING: Relaxed — read after `thread::scope` joins every
        // worker, which synchronizes all their writes; these are plain
        // post-mortem counters, not a publication edge.
        epochs: exchange.epochs.load(Ordering::Relaxed),
        // ORDERING: Relaxed — same join-synchronized read as above.
        windows_run: exchange.windows_run.load(Ordering::Relaxed),
        // ORDERING: Relaxed — same join-synchronized read as above.
        windows_idle: exchange.windows_idle.load(Ordering::Relaxed),
        records: exchange.epoch_log.get().cloned().unwrap_or_default(),
    };
    let out = results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("shard produced no result"))
        .collect();
    (out, stats)
}

/// Run the event-driven epoch rounds for one worker's shards. Returns
/// the shard states for finishing, or `None` if a peer worker failed.
fn worker_rounds<M, R, F>(
    assigned: Vec<(usize, F)>,
    plan: &ShardPlan,
    exchange: &Exchange<M>,
) -> Option<Vec<(usize, ShardState<M, R>)>>
where
    M: Send + 'static,
    R: Send + 'static,
    F: FnOnce(ShardHandle<M>) -> ShardRun<M, R> + Send + 'static,
{
    let n = plan.shards;
    // Build this worker's shards locally (pinning their simulations to
    // this thread), in ascending shard order.
    let mut shards: Vec<(usize, ShardState<M, R>)> = assigned
        .into_iter()
        .map(|(s, f)| {
            let handle = ShardHandle::new(s, plan);
            let run = f(handle.clone());
            (
                s,
                ShardState {
                    handle,
                    run: Some(run),
                    pending: BinaryHeap::new(),
                },
            )
        })
        .collect();
    // Reusable per-destination export buffers, one set per owned shard.
    let mut scratch: Vec<Vec<Vec<Import<M>>>> = shards
        .iter()
        .map(|_| (0..n).map(|_| Vec::new()).collect())
        .collect();

    let mut rounds: u64 = 0;
    let (mut wrun, mut widle) = (0u64, 0u64);
    // One worker (the owner of shard 0) keeps the per-round epoch log;
    // the verdict bank it reads is identical on every worker.
    let recorder = plan.log_epochs && shards.iter().any(|(s, _)| *s == 0);
    let mut epoch_log: Vec<EpochRecord> = Vec::new();
    loop {
        let parity = (rounds % 2) as usize;
        rounds += 1;
        // Publish this round's bank: per owned shard, exports grouped
        // per destination (timestamp stored even when the batch is
        // empty, so in-flight messages are never invisible to the
        // termination check), local minimum, completion, and advice.
        for ((s, st), bufs) in shards.iter_mut().zip(&mut scratch) {
            for export in st.handle.drain() {
                bufs[export.to].push(export.import);
            }
            for (d, buf) in bufs.iter_mut().enumerate() {
                if d == *s {
                    continue;
                }
                let min_time = buf.iter().map(|i| i.time.as_nanos()).min();
                exchange.cells[*s * n + d].publish(
                    parity,
                    std::mem::take(buf),
                    min_time.unwrap_or(u64::MAX),
                );
            }
            let run = st.run.as_ref().expect("shard already finished");
            let local = st.local_min().map_or(u64::MAX, SimTime::as_nanos);
            // ORDERING: Release on the whole verdict bank (`mins`,
            // `done`, `out_la`, `floor`); paired with the Acquire loads
            // in the bank read below the barrier. The barrier already
            // synchronizes same-epoch readers — Release covers the
            // next-parity writer that overwrites the slot one epoch
            // later without an intervening barrier on that slot.
            exchange.mins[parity][*s].store(local, Ordering::Release);
            // ORDERING: Release — see `mins` above.
            exchange.done[parity][*s].store((run.root_done)(), Ordering::Release);
            let advice = run
                .advise
                .as_ref()
                .map(|f| f(run.sim.now()))
                .unwrap_or_default();
            // ORDERING: Release — see `mins` above.
            exchange.out_la[parity][*s].store(
                advice.out_lookahead.map_or(0, SimDuration::as_nanos),
                Ordering::Release,
            );
            // ORDERING: Release — see `mins` above.
            exchange.floor[parity][*s].store(
                advice.valid_until.map_or(u64::MAX, SimTime::as_nanos),
                Ordering::Release,
            );
        }
        exchange.barrier.wait();
        // ORDERING: Acquire pairs with the Release store in the worker
        // panic path; the barrier already orders the epoch's writes, the
        // Acquire only covers a store racing the barrier itself.
        if exchange.failed.load(Ordering::Acquire) {
            return None;
        }

        // Read the whole bank and derive the verdict. Every worker sees
        // identical values — all stores happened before the barrier, and
        // nobody writes this bank again until after the *next* barrier —
        // so every worker computes the same verdict with no further
        // coordination (and a Stop exits all workers together).
        let read = |v: &[AtomicU64]| -> Vec<u64> {
            // ORDERING: Acquire pairs with the Release stores into the
            // verdict bank above (the closure binding hides the field
            // name from the static pairing audit).
            v.iter().map(|a| a.load(Ordering::Acquire)).collect()
        };
        let mins = read(&exchange.mins[parity]);
        let out_la = read(&exchange.out_la[parity]);
        let floors = read(&exchange.floor[parity]);
        let done: Vec<bool> = exchange.done[parity]
            .iter()
            // ORDERING: Acquire — same verdict-bank pairing as `read`.
            .map(|a| a.load(Ordering::Acquire))
            .collect();
        let arrivals: Vec<u64> = (0..n)
            .map(|d| {
                (0..n)
                    .map(|s| exchange.cells[s * n + d].min_time(parity))
                    .min()
                    .unwrap_or(u64::MAX)
            })
            .collect();
        match compute_verdict(plan, &mins, &arrivals, &done, &out_la, &floors) {
            Verdict::Stop => break,
            Verdict::Run(horizons) => {
                if recorder {
                    // A shard's window executes iff it has activity —
                    // published local minimum or an import in flight —
                    // before its horizon; all three are in the bank.
                    epoch_log.push(EpochRecord {
                        ran: (0..n)
                            .map(|d| mins[d].min(arrivals[d]) < horizons[d])
                            .collect(),
                        horizons: horizons.clone(),
                    });
                }
                for (d, st) in &mut shards {
                    // Absorb every import published to this shard (the
                    // banks must be empty again before their next use).
                    for s in 0..n {
                        if let Some(batch) = exchange.cells[s * n + *d].take(parity) {
                            for imp in batch {
                                st.pending.push(std::cmp::Reverse(imp));
                            }
                        }
                    }
                    let horizon_ns = horizons[*d];
                    let local = st.local_min().map_or(u64::MAX, SimTime::as_nanos);
                    if local >= horizon_ns {
                        // Idle park: nothing before the horizon — leave
                        // the executor untouched.
                        widle += 1;
                        continue;
                    }
                    wrun += 1;
                    st.deliver_until(SimTime::from_nanos(horizon_ns));
                    let run = st.run.as_mut().expect("shard already finished");
                    run.sim
                        .run_until(SimTime::from_nanos(horizon_ns.saturating_sub(1)));
                }
            }
        }
    }
    // ORDERING: Relaxed — statistics counters; the collecting thread
    // reads them only after `thread::scope` joins this worker, and the
    // RMWs themselves are atomic regardless of ordering.
    exchange.epochs.fetch_max(rounds, Ordering::Relaxed);
    // ORDERING: Relaxed — see `epochs` above.
    exchange.windows_run.fetch_add(wrun, Ordering::Relaxed);
    // ORDERING: Relaxed — see `epochs` above.
    exchange.windows_idle.fetch_add(widle, Ordering::Relaxed);
    if recorder {
        exchange
            .epoch_log
            .set(epoch_log)
            .expect("recorder sets the epoch log exactly once");
    }
    Some(shards)
}

/// Run independent jobs on the sharded engine's worker pool and return
/// their results in submission order.
///
/// This is [`run_sharded`] with the degenerate edge-free plan: each job
/// is a logical process with no mailboxes, so every job runs to
/// completion in one epoch. Jobs are claimed dynamically (a lock-free
/// ticket counter) for load balance; since they are mutually
/// independent and individually deterministic, placement cannot affect
/// any result.
///
/// The pool is clamped to the machine's available parallelism:
/// oversubscribing adds scheduler churn without any win (it showed up
/// as a parallel *regression* on single-core runners). `workers <= 1`
/// — requested or after clamping — runs every job inline on the calling
/// thread, in order, byte-identical to a plain sequential loop.
pub fn run_jobs<R, F>(workers: usize, jobs: Vec<F>) -> Vec<R>
where
    R: Send + 'static,
    F: FnOnce() -> R + Send + 'static,
{
    let n = jobs.len();
    let workers = workers.min(n).min(default_workers().max(1));
    if workers <= 1 || n <= 1 {
        return jobs.into_iter().map(|j| j()).collect();
    }
    let jobs = SlotVec::from_values(jobs);
    let next = AtomicUsize::new(0);
    let results: SlotVec<R> = SlotVec::new(n);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // ORDERING: Relaxed — the ticket only needs atomicity
                // of the claim; the job closures were published by
                // `SlotVec::from_values` before the threads spawned, and
                // results are published by the scope join.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // SAFETY: the fetch_add above hands index `i` to exactly
                // one worker, so this thread is the sole owner of job and
                // result slot `i`; the scope join publishes the result
                // writes to the collecting thread below.
                let job = unsafe { jobs.take(i) }.expect("job claimed twice");
                let out = job();
                // SAFETY: as above — slot `i` is owned by this worker.
                unsafe { results.put(i, out) };
            });
        }
    });
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("job produced no result"))
        .collect()
}

/// The machine's available parallelism (1 if it cannot be determined).
/// Callers that honour `MGRID_SHARDS` clamp to this.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sleep_until;

    /// A ping-pong workload: `shards` LPs arranged in a ring, each
    /// forwarding a counter to its right neighbour with 5 ms latency
    /// until the counter reaches `rounds`. Returns, per shard, the list
    /// of (arrival_ns, value) pairs it observed.
    fn ring_with(plan: ShardPlan, shards: usize, rounds: u64) -> Vec<Vec<(u64, u64)>> {
        let la = SimDuration::from_millis(5);
        let factories: Vec<_> = (0..shards)
            .map(|_| {
                Box::new(move |h: ShardHandle<u64>| {
                    let sim = Simulation::new(9);
                    let log: Rc<RefCell<Vec<(u64, u64)>>> = Rc::new(RefCell::new(Vec::new()));
                    let done = Rc::new(Cell::new(false));
                    // Shard 0 kicks the ring off.
                    let root = sim.spawn({
                        let h = h.clone();
                        async move {
                            if h.shard_id() == 0 && rounds > 0 {
                                h.export(1 % h.shards(), crate::executor::now() + la, 0);
                            }
                        }
                    });
                    let deliver_log = log.clone();
                    let done2 = done.clone();
                    let finish_log = log.clone();
                    ShardRun {
                        sim,
                        deliver: Box::new(move |sim, imp: Import<u64>| {
                            let h = h.clone();
                            let log = deliver_log.clone();
                            let done = done2.clone();
                            sim.spawn(async move {
                                sleep_until(imp.time).await;
                                log.borrow_mut().push((imp.time.as_nanos(), imp.msg));
                                let next = imp.msg + 1;
                                if next < rounds {
                                    let to = (h.shard_id() + 1) % h.shards();
                                    h.export(to, crate::executor::now() + la, next);
                                } else {
                                    done.set(true);
                                }
                            });
                        }),
                        root_done: Box::new(move || {
                            // The ring terminates when the last hop landed
                            // anywhere; each shard is "done" once its own
                            // root ran and no message of its is pending.
                            root.is_finished() && done.get()
                        }),
                        advise: None,
                        finish: Box::new(move |_| finish_log.borrow().clone()),
                    }
                })
                    as Box<dyn FnOnce(ShardHandle<u64>) -> ShardRun<u64, Vec<(u64, u64)>> + Send>
            })
            .collect();
        run_sharded(plan, factories)
    }

    fn ring(shards: usize, rounds: u64) -> Vec<Vec<(u64, u64)>> {
        let plan = ShardPlan::connected(shards, SimDuration::from_millis(5));
        ring_with(plan, shards, rounds)
    }

    #[test]
    fn two_shard_ring_is_deterministic() {
        let a = ring(2, 6);
        let b = ring(2, 6);
        assert_eq!(a, b);
        // 6 hops at 5 ms each, alternating shards.
        let all: Vec<_> = {
            let mut v: Vec<_> = a.iter().flatten().copied().collect();
            v.sort_unstable();
            v
        };
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], (5_000_000, 0));
        assert_eq!(all[5], (30_000_000, 5));
    }

    #[test]
    fn shard_counts_agree_on_the_merged_event_log() {
        // The merged (time, value) log must be identical for 2, 3, and 4
        // shards — the engine's core guarantee.
        let merged = |shards: usize| -> Vec<(u64, u64)> {
            let mut v: Vec<_> = ring(shards, 12).iter().flatten().copied().collect();
            v.sort_unstable();
            v
        };
        let two = merged(2);
        assert_eq!(two, merged(3));
        assert_eq!(two, merged(4));
    }

    #[test]
    fn per_pair_matrix_preserves_the_merged_log() {
        // The ring only exports forward, so a matrix that marks every
        // non-neighbour pair edge-free (and backward edges slow) must
        // not change a single arrival.
        let la = SimDuration::from_millis(5);
        let n = 3;
        let matrix: Vec<Vec<Option<SimDuration>>> = (0..n)
            .map(|s| {
                (0..n)
                    .map(|d| if d == (s + 1) % n { Some(la) } else { None })
                    .collect()
            })
            .collect();
        let plan = ShardPlan::connected(n, la).with_lookahead_matrix(matrix);
        let mut with_matrix: Vec<_> = ring_with(plan, n, 12).iter().flatten().copied().collect();
        with_matrix.sort_unstable();
        let mut plain: Vec<_> = ring(n, 12).iter().flatten().copied().collect();
        plain.sort_unstable();
        assert_eq!(with_matrix, plain);
    }

    #[test]
    fn idle_gap_is_crossed_in_a_constant_number_of_epochs() {
        // Two shards, 1 ms lookahead, no messages at all: shard 0 sleeps
        // 10 s, shard 1 sleeps 10 µs. A fixed-stride engine needs ~10 000
        // lookahead-sized epochs to march the floor to 10 s; the
        // event-driven engine must jump there in a handful of rounds,
        // parking shard 0 while shard 1's window runs.
        let plan = ShardPlan::connected(2, SimDuration::from_millis(1));
        let factories: Vec<_> = (0..2)
            .map(|s| {
                Box::new(move |_h: ShardHandle<()>| {
                    let sim = Simulation::new(1);
                    let root = sim.spawn(async move {
                        if s == 0 {
                            crate::sleep(SimDuration::from_secs(10)).await;
                        } else {
                            crate::sleep(SimDuration::from_micros(10)).await;
                        }
                    });
                    ShardRun {
                        sim,
                        deliver: Box::new(|_, _| unreachable!("no messages")),
                        root_done: Box::new(move || root.is_finished()),
                        advise: None,
                        finish: Box::new(|sim| sim.now().as_nanos()),
                    }
                }) as Box<dyn FnOnce(ShardHandle<()>) -> ShardRun<(), u64> + Send>
            })
            .collect();
        let (out, stats) = run_sharded_stats(plan, factories);
        assert_eq!(out[0], 10_000_000_000);
        assert!(
            stats.epochs <= 6,
            "event-driven engine must jump the idle gap, took {} epochs",
            stats.epochs
        );
        assert!(
            stats.windows_idle >= 1,
            "shard 0 should have parked at least once"
        );
    }

    #[test]
    fn verdict_lets_the_busy_shard_run_past_idle_peers() {
        let plan = ShardPlan::connected(2, SimDuration::from_nanos(100));
        let v = compute_verdict(
            &plan,
            &[10, u64::MAX],
            &[u64::MAX; 2],
            &[false; 2],
            &[0; 2],
            &[u64::MAX; 2],
        );
        // Shard 1 is idle but can be woken by shard 0 no earlier than
        // 110; shard 0 therefore runs to 110 + 100 = 210 — double the
        // fixed-stride window m + L.
        assert_eq!(v, Verdict::Run(vec![210, 110]));
    }

    #[test]
    fn verdict_counts_in_flight_arrivals() {
        let plan = ShardPlan::connected(2, SimDuration::from_nanos(100));
        // Both executors quiescent, but an import published this round
        // reaches shard 1 at t=40: not a deadlock.
        let v = compute_verdict(
            &plan,
            &[u64::MAX; 2],
            &[u64::MAX, 40],
            &[false; 2],
            &[0; 2],
            &[u64::MAX; 2],
        );
        assert_eq!(v, Verdict::Run(vec![140, 240]));
    }

    #[test]
    fn verdict_stops_on_completion_and_on_deadlock() {
        let plan = ShardPlan::connected(2, SimDuration::from_nanos(100));
        let all_done = compute_verdict(
            &plan,
            &[5, 5],
            &[u64::MAX; 2],
            &[true, true],
            &[0; 2],
            &[u64::MAX; 2],
        );
        assert_eq!(all_done, Verdict::Stop);
        let deadlock = compute_verdict(
            &plan,
            &[u64::MAX; 2],
            &[u64::MAX; 2],
            &[false, true],
            &[0; 2],
            &[u64::MAX; 2],
        );
        assert_eq!(deadlock, Verdict::Stop);
    }

    #[test]
    fn verdict_clamps_at_the_advice_floor() {
        let plan = ShardPlan::connected(2, SimDuration::from_nanos(100));
        // Shard 0 promises 10 µs of lookahead, valid until t = 500.
        let v = compute_verdict(
            &plan,
            &[10, 400],
            &[u64::MAX; 2],
            &[false; 2],
            &[10_000, 0],
            &[500, u64::MAX],
        );
        assert_eq!(v, Verdict::Run(vec![500, 500]));
        // A floor at or below the global minimum degrades to the safe
        // one-nanosecond window, never to a stalled one.
        let v = compute_verdict(
            &plan,
            &[10, 400],
            &[u64::MAX; 2],
            &[false; 2],
            &[10_000, 0],
            &[10, u64::MAX],
        );
        assert_eq!(v, Verdict::Run(vec![11, 11]));
    }

    #[test]
    fn pair_matrix_is_consulted_per_edge() {
        let la = SimDuration::from_nanos(10);
        let plan = ShardPlan::connected(3, la).with_lookahead_matrix(vec![
            vec![None, Some(SimDuration::from_nanos(10)), None],
            vec![Some(SimDuration::from_nanos(25)), None, Some(la)],
            vec![None, Some(la), None],
        ]);
        assert_eq!(plan.pair_lookahead_ns(0, 1), 10);
        assert_eq!(plan.pair_lookahead_ns(1, 0), 25);
        assert_eq!(plan.pair_lookahead_ns(0, 2), u64::MAX);
        // Without a matrix every pair falls back to the global value.
        let plain = ShardPlan::connected(3, la);
        assert_eq!(plain.pair_lookahead_ns(0, 2), 10);
    }

    #[test]
    fn single_shard_runs_inline_without_threads() {
        let plan = ShardPlan::connected(1, SimDuration::from_millis(1));
        let tid = std::thread::current().id();
        let out = run_sharded::<(), _, _>(
            plan,
            vec![Box::new(move |_h: ShardHandle<()>| {
                assert_eq!(std::thread::current().id(), tid);
                let sim = Simulation::new(3);
                let root = sim.spawn(async {
                    crate::sleep(SimDuration::from_millis(2)).await;
                });
                ShardRun {
                    sim,
                    deliver: Box::new(|_, _| unreachable!("no peers")),
                    root_done: Box::new(move || root.is_finished()),
                    advise: None,
                    finish: Box::new(|sim| sim.now().as_millis()),
                }
            })
                as Box<
                    dyn FnOnce(ShardHandle<()>) -> ShardRun<(), u64> + Send,
                >],
        );
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn lookahead_violation_panics() {
        let plan = ShardPlan::connected(2, SimDuration::from_millis(50));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_sharded::<u8, _, _>(
                plan,
                (0..2)
                    .map(|s| {
                        Box::new(move |h: ShardHandle<u8>| {
                            let sim = Simulation::new(1);
                            let root = sim.spawn({
                                let h = h.clone();
                                async move {
                                    if s == 0 {
                                        // Arrives in 1 ms — inside the 50 ms
                                        // lookahead: must panic.
                                        h.export(1, SimTime::from_nanos(1_000_000), 1);
                                    }
                                }
                            });
                            ShardRun {
                                sim,
                                deliver: Box::new(|_, _| {}),
                                root_done: Box::new(move || root.is_finished()),
                                advise: None,
                                finish: Box::new(|_| ()),
                            }
                        })
                            as Box<dyn FnOnce(ShardHandle<u8>) -> ShardRun<u8, ()> + Send>
                    })
                    .collect(),
            )
        }));
        assert!(caught.is_err(), "lookahead violation must panic");
    }

    #[test]
    fn run_jobs_preserves_submission_order() {
        let jobs: Vec<_> = (0..17)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> i32 + Send>)
            .collect();
        let serial: Vec<_> = (0..17).map(|i| i * i).collect();
        assert_eq!(run_jobs(1, jobs), serial);
        let jobs: Vec<_> = (0..17)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> i32 + Send>)
            .collect();
        assert_eq!(run_jobs(4, jobs), serial);
    }
}
