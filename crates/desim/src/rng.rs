//! Deterministic pseudo-random number generation for simulations.
//!
//! The engine must be bit-reproducible: the same seed yields the same event
//! trace. We therefore ship a small, self-contained generator
//! (xoshiro256++ seeded via SplitMix64) instead of depending on platform
//! entropy. All stochastic model components (OS jitter, interception
//! overhead noise, packet timing perturbations) draw from one of these.

use std::cell::RefCell;
use std::rc::Rc;

/// xoshiro256++ PRNG with SplitMix64 seeding.
///
/// Fast, high-quality, and deterministic across platforms. Not
/// cryptographically secure (irrelevant here).
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
    /// Cached second output of the Box-Muller transform.
    spare_normal: Option<f64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng {
            s,
            spare_normal: None,
        }
    }

    /// Derive an independent child generator (stream splitting).
    ///
    /// Useful for giving each model component its own stream so that adding
    /// draws in one component does not perturb another.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64() ^ 0xA5A5_5A5A_DEAD_BEEF)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Lemire's multiply-shift rejection method (unbiased).
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal deviate (Box-Muller with caching).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Reject u1 == 0 to keep ln() finite.
        let mut u1 = self.f64();
        while u1 <= f64::MIN_POSITIVE {
            u1 = self.f64();
        }
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Exponential deviate with the given mean (`mean = 1/lambda`).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let mut u = self.f64();
        while u <= f64::MIN_POSITIVE {
            u = self.f64();
        }
        -mean * u.ln()
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

/// A cheaply cloneable shared handle to a [`SimRng`].
#[derive(Clone, Debug)]
pub struct SharedRng(Rc<RefCell<SimRng>>);

impl SharedRng {
    /// Wrap a generator in a shared handle.
    pub fn new(seed: u64) -> Self {
        SharedRng(Rc::new(RefCell::new(SimRng::new(seed))))
    }

    /// Run a closure with mutable access to the generator.
    pub fn with<R>(&self, f: impl FnOnce(&mut SimRng) -> R) -> R {
        f(&mut self.0.borrow_mut())
    }

    /// Derive an independent child generator.
    pub fn fork(&self) -> SimRng {
        self.with(|r| r.fork())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SimRng::new(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = r.below(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(11);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let z = r.normal();
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(13);
        let n = 100_000;
        let mean = 2.5;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        assert!((sum / n as f64 - mean).abs() < 0.05);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(17);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_independent() {
        let mut parent = SimRng::new(5);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..16).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 2);
    }
}
