//! Virtual time: the MicroGrid's `gettimeofday` virtualization (paper §2.3).
//!
//! A [`VirtualClock`] maps the engine's physical clock onto virtual Grid
//! time at a configurable *simulation rate* `r = d(virtual)/d(physical)`.
//! With `r = 0.04` (the paper's Fig 17 setting), one virtual second takes 25
//! physical seconds of emulation. The rate may change during a run
//! (dynamic virtual time, listed by the paper as near-term future work); the
//! clock accumulates piecewise-linear segments so virtual time never jumps
//! or reverses.

use std::cell::RefCell;
use std::rc::Rc;

use crate::time::{SimDuration, SimTime};

#[derive(Debug)]
struct Segment {
    /// Physical instant where this segment begins.
    phys_start: SimTime,
    /// Virtual time already accumulated at `phys_start`.
    virt_start: SimTime,
    /// d(virtual)/d(physical) within this segment.
    rate: f64,
}

#[derive(Debug)]
struct ClockState {
    current: Segment,
    /// Closed history, kept so conversions of past instants stay exact.
    history: Vec<Segment>,
}

/// A shared virtual clock.
///
/// Cloning shares the underlying clock state, so every virtual host on a
/// coordinated virtual Grid observes the same virtual time — the paper's
/// global coordination requirement.
#[derive(Clone, Debug)]
pub struct VirtualClock {
    state: Rc<RefCell<ClockState>>,
}

impl VirtualClock {
    /// Create a clock starting at virtual zero with the given rate.
    ///
    /// # Panics
    /// Panics if `rate` is not finite and strictly positive.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "simulation rate must be positive, got {rate}"
        );
        VirtualClock {
            state: Rc::new(RefCell::new(ClockState {
                current: Segment {
                    phys_start: SimTime::ZERO,
                    virt_start: SimTime::ZERO,
                    rate,
                },
                history: Vec::new(),
            })),
        }
    }

    /// An identity clock (`rate = 1`): virtual time equals physical time.
    /// Used for "physical grid" baseline runs.
    pub fn identity() -> Self {
        VirtualClock::new(1.0)
    }

    /// The current simulation rate.
    pub fn rate(&self) -> f64 {
        self.state.borrow().current.rate
    }

    /// Change the rate at physical instant `phys_now` (dynamic virtual
    /// time). Virtual time is continuous across the change.
    ///
    /// # Panics
    /// Panics if `phys_now` precedes the start of the current segment, or if
    /// the new rate is invalid.
    pub fn set_rate(&self, phys_now: SimTime, rate: f64) {
        assert!(
            rate.is_finite() && rate > 0.0,
            "simulation rate must be positive, got {rate}"
        );
        let mut s = self.state.borrow_mut();
        assert!(
            phys_now >= s.current.phys_start,
            "rate change in the past: {phys_now:?} < {:?}",
            s.current.phys_start
        );
        let virt_now = virt_at(&s.current, phys_now);
        let old = std::mem::replace(
            &mut s.current,
            Segment {
                phys_start: phys_now,
                virt_start: virt_now,
                rate,
            },
        );
        s.history.push(old);
    }

    /// Virtual time corresponding to physical instant `phys`.
    ///
    /// Past instants are resolved against the segment history, so the
    /// mapping is consistent even across rate changes.
    pub fn virtual_at(&self, phys: SimTime) -> SimTime {
        let s = self.state.borrow();
        if phys >= s.current.phys_start {
            return virt_at(&s.current, phys);
        }
        // Find the most recent historical segment starting at or before phys.
        match s.history.binary_search_by(|seg| seg.phys_start.cmp(&phys)) {
            Ok(i) => virt_at(&s.history[i], phys),
            Err(0) => SimTime::ZERO, // before the first segment: clamp
            Err(i) => virt_at(&s.history[i - 1], phys),
        }
    }

    /// Physical duration needed for `virt` of virtual time to elapse at the
    /// *current* rate.
    pub fn to_physical(&self, virt: SimDuration) -> SimDuration {
        // mgrid-lint: allow(MG008) the rate map IS the paper's scaled-clock model; both runs replay the same f64 ops
        virt.div_f64(self.rate())
    }

    /// Virtual duration that elapses over `phys` of physical time at the
    /// *current* rate.
    pub fn to_virtual(&self, phys: SimDuration) -> SimDuration {
        // mgrid-lint: allow(MG008) same scaled-clock model as `to_physical`; deterministic per seed
        phys.mul_f64(self.rate())
    }
}

fn virt_at(seg: &Segment, phys: SimTime) -> SimTime {
    let elapsed = phys.saturating_since(seg.phys_start);
    // mgrid-lint: allow(MG008) segment interpolation is the scaled-clock model; identical f64 ops replay identically
    seg.virt_start + elapsed.mul_f64(seg.rate)
}

/// Sleep for a span of **virtual** time on the given clock.
///
/// Converts through the clock's current rate; if the rate changes while
/// sleeping, the wake-up instant is not retroactively adjusted (matching the
/// MicroGrid, where an in-flight timer is not rescheduled).
pub async fn sleep_virtual(clock: &VirtualClock, virt: SimDuration) {
    crate::executor::sleep(clock.to_physical(virt)).await;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_clock_is_identity() {
        let c = VirtualClock::identity();
        let t = SimTime::from_secs_f64(12.5);
        assert_eq!(c.virtual_at(t), t);
    }

    #[test]
    fn half_rate_halves_virtual_time() {
        let c = VirtualClock::new(0.5);
        assert_eq!(
            c.virtual_at(SimTime::from_secs_f64(10.0)),
            SimTime::from_secs_f64(5.0)
        );
    }

    #[test]
    fn duration_conversions_roundtrip() {
        let c = VirtualClock::new(0.04);
        let v = SimDuration::from_secs(1);
        let p = c.to_physical(v);
        assert_eq!(p, SimDuration::from_secs(25));
        assert_eq!(c.to_virtual(p), v);
    }

    #[test]
    fn rate_change_is_continuous() {
        let c = VirtualClock::new(1.0);
        c.set_rate(SimTime::from_secs_f64(10.0), 0.25);
        // At the changeover instant virtual == 10s.
        assert_eq!(
            c.virtual_at(SimTime::from_secs_f64(10.0)),
            SimTime::from_secs_f64(10.0)
        );
        // 4s later physically -> 1s later virtually.
        assert_eq!(
            c.virtual_at(SimTime::from_secs_f64(14.0)),
            SimTime::from_secs_f64(11.0)
        );
    }

    #[test]
    fn history_resolves_past_instants() {
        let c = VirtualClock::new(2.0);
        c.set_rate(SimTime::from_secs_f64(5.0), 0.5);
        c.set_rate(SimTime::from_secs_f64(9.0), 1.0);
        // Segment 1 (rate 2.0): virtual_at(3) = 6.
        assert_eq!(
            c.virtual_at(SimTime::from_secs_f64(3.0)),
            SimTime::from_secs_f64(6.0)
        );
        // Segment 2 (rate 0.5, starts phys 5 virt 10): virtual_at(7) = 11.
        assert_eq!(
            c.virtual_at(SimTime::from_secs_f64(7.0)),
            SimTime::from_secs_f64(11.0)
        );
        // Segment 3 (rate 1.0, starts phys 9 virt 12): virtual_at(10) = 13.
        assert_eq!(
            c.virtual_at(SimTime::from_secs_f64(10.0)),
            SimTime::from_secs_f64(13.0)
        );
    }

    #[test]
    fn monotone_across_rate_changes() {
        let c = VirtualClock::new(1.5);
        c.set_rate(SimTime::from_secs_f64(2.0), 0.1);
        c.set_rate(SimTime::from_secs_f64(4.0), 3.0);
        let mut prev = SimTime::ZERO;
        for i in 0..100 {
            let t = SimTime::from_secs_f64(i as f64 * 0.1);
            let v = c.virtual_at(t);
            assert!(v >= prev, "virtual time went backwards at {t:?}");
            prev = v;
        }
    }

    #[test]
    fn clones_share_state() {
        let a = VirtualClock::new(1.0);
        let b = a.clone();
        a.set_rate(SimTime::from_secs_f64(1.0), 0.5);
        assert_eq!(b.rate(), 0.5);
    }

    #[test]
    #[should_panic]
    fn zero_rate_rejected() {
        let _ = VirtualClock::new(0.0);
    }

    #[test]
    fn sleep_virtual_scales() {
        use crate::executor::Simulation;
        let mut sim = Simulation::new(0);
        let t = sim.block_on(async {
            let clock = VirtualClock::new(0.1);
            sleep_virtual(&clock, SimDuration::from_millis(100)).await;
            crate::executor::now()
        });
        assert_eq!(t.as_secs_f64(), 1.0); // 100ms virtual at rate 0.1 = 1s physical
    }
}
