//! A fast, non-cryptographic hasher for hot-path maps.
//!
//! The standard library's default `SipHash` is DoS-resistant but costs
//! tens of nanoseconds per lookup — measurable when the network engine
//! probes a map per packet. Simulation-internal maps are keyed by
//! trusted, simulator-generated integers (transfer ids, node/port pairs),
//! so a multiply-fold hasher in the spirit of `FxHash` is safe and
//! several times cheaper. Not for untrusted input.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-fold hasher (Fx-style): each word is xor-folded into the
/// state and diffused with an odd multiplicative constant.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

/// Knuth's 64-bit multiplicative-hash constant (golden-ratio derived).
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, "x");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&999));
        assert!(!m.contains_key(&1000));
    }

    #[test]
    fn distinct_keys_hash_differently() {
        use std::hash::BuildHasher;
        let bh = FxBuildHasher::default();
        let hash = |v: u64| bh.hash_one(v);
        // Sequential ids (the common key shape) must not collide.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(hash(i)), "collision at {i}");
        }
    }

    #[test]
    fn tuple_and_str_keys_work() {
        let mut m: FxHashMap<(u32, u16), u64> = FxHashMap::default();
        m.insert((7, 80), 1);
        assert_eq!(m.get(&(7, 80)), Some(&1));
        let mut s: FxHashMap<String, u64> = FxHashMap::default();
        s.insert("net.packets".into(), 2);
        assert_eq!(s.get("net.packets"), Some(&2));
    }
}
