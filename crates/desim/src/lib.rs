//! # mgrid-desim — deterministic discrete-event simulation engine
//!
//! The substrate under every MicroGrid-rs component: a single-threaded
//! async executor whose clock is a simulated **physical** timeline, plus the
//! channels, synchronization primitives, deterministic RNG, virtual-clock
//! machinery, and tracing the resource models are built from.
//!
//! ## Model
//!
//! * Tasks are ordinary Rust futures spawned onto a [`Simulation`].
//! * Time advances only between polls, jumping to the earliest registered
//!   timer; ties break by registration order. Runs are therefore
//!   deterministic: one program + one seed = one trace.
//! * [`vclock::VirtualClock`] maps physical time to virtual Grid time at a
//!   configurable simulation rate — the paper's `gettimeofday`
//!   virtualization (§2.3).
//! * Every simulation carries an observability surface ([`obs::Obs`]):
//!   a typed-[`event::Event`] tracer and a [`metrics::Metrics`] registry
//!   that instrumented components write to through the free functions in
//!   [`obs`].
//!
//! ## Example
//!
//! ```
//! use mgrid_desim::{Simulation, sleep, now, time::SimDuration};
//!
//! let mut sim = Simulation::new(7);
//! let answer = sim.block_on(async {
//!     sleep(SimDuration::from_millis(3)).await;
//!     now().as_millis()
//! });
//! assert_eq!(answer, 3);
//! ```

#![warn(missing_docs)]

pub mod channel;
pub mod event;
mod exchange;
pub mod executor;
pub mod fasthash;
pub mod metrics;
pub mod obs;
pub mod perfetto;
pub mod profile;
pub mod rng;
pub mod shard;
pub mod span;
pub mod sync;
pub mod time;
pub mod timeout;
pub mod trace;
pub mod vclock;

pub use event::{Category, Event};
pub use executor::{
    fork_rng, now, sleep, sleep_until, spawn, spawn_daemon, with_rng, yield_now, JoinHandle,
    Simulation, TaskId,
};
pub use fasthash::{FxHashMap, FxHashSet};
pub use metrics::{Counter, HistogramHandle, Metrics, MetricsSnapshot};
pub use obs::Obs;
pub use rng::{SharedRng, SimRng};
pub use span::{FlowEdge, SpanId, SpanRecord, SpanSnapshot, SpanStore, SpanStr};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEvent, Tracer};
