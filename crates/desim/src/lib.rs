//! # mgrid-desim — deterministic discrete-event simulation engine
//!
//! The substrate under every MicroGrid-rs component: a single-threaded
//! async executor whose clock is a simulated **physical** timeline, plus the
//! channels, synchronization primitives, deterministic RNG, virtual-clock
//! machinery, and tracing the resource models are built from.
//!
//! ## Model
//!
//! * Tasks are ordinary Rust futures spawned onto a [`Simulation`].
//! * Time advances only between polls, jumping to the earliest registered
//!   timer; ties break by registration order. Runs are therefore
//!   deterministic: one program + one seed = one trace.
//! * [`vclock::VirtualClock`] maps physical time to virtual Grid time at a
//!   configurable simulation rate — the paper's `gettimeofday`
//!   virtualization (§2.3).
//!
//! ## Example
//!
//! ```
//! use mgrid_desim::{Simulation, sleep, now, time::SimDuration};
//!
//! let mut sim = Simulation::new(7);
//! let answer = sim.block_on(async {
//!     sleep(SimDuration::from_millis(3)).await;
//!     now().as_millis()
//! });
//! assert_eq!(answer, 3);
//! ```

pub mod channel;
pub mod executor;
pub mod rng;
pub mod sync;
pub mod time;
pub mod timeout;
pub mod trace;
pub mod vclock;

pub use executor::{
    fork_rng, now, sleep, sleep_until, spawn, spawn_daemon, with_rng, yield_now, JoinHandle,
    Simulation, TaskId,
};
pub use rng::{SharedRng, SimRng};
pub use time::{SimDuration, SimTime};
