//! Timeout combinator: race a future against the simulation clock.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

use crate::executor::sleep;
use crate::time::SimDuration;

/// Run `fut` with a deadline of `d` from now. Returns `Some(output)` if the
/// future completes first, `None` if the deadline fires first.
///
/// ```
/// use mgrid_desim::{Simulation, timeout::with_timeout, time::SimDuration};
///
/// let mut sim = Simulation::new(0);
/// let out = sim.block_on(async {
///     with_timeout(SimDuration::from_millis(1), async {
///         mgrid_desim::sleep(SimDuration::from_millis(5)).await;
///         42
///     })
///     .await
/// });
/// assert_eq!(out, None);
/// ```
pub async fn with_timeout<F: Future>(d: SimDuration, fut: F) -> Option<F::Output> {
    // Pin on the stack: no per-call heap allocation, which matters on hot
    // paths like the transport's per-window ack wait.
    let mut fut = std::pin::pin!(fut);
    let mut timer = sleep(d);
    std::future::poll_fn(move |cx: &mut Context<'_>| {
        if let Poll::Ready(v) = fut.as_mut().poll(cx) {
            return Poll::Ready(Some(v));
        }
        match Pin::new(&mut timer).poll(cx) {
            Poll::Ready(()) => Poll::Ready(None),
            Poll::Pending => Poll::Pending,
        }
    })
    .await
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::channel;
    use crate::executor::{now, sleep as dsleep, spawn, Simulation};
    use crate::time::SimTime;

    #[test]
    fn completes_before_deadline() {
        let mut sim = Simulation::new(0);
        let out = sim.block_on(async {
            with_timeout(SimDuration::from_millis(10), async {
                dsleep(SimDuration::from_millis(2)).await;
                7
            })
            .await
        });
        assert_eq!(out, Some(7));
    }

    #[test]
    fn deadline_fires_first() {
        let mut sim = Simulation::new(0);
        let (out, t) = sim.block_on(async {
            let r = with_timeout(SimDuration::from_millis(3), async {
                dsleep(SimDuration::from_secs(100)).await;
            })
            .await;
            (r, now())
        });
        assert_eq!(out, None);
        assert_eq!(t, SimTime::from_nanos(3_000_000));
    }

    #[test]
    fn losing_future_is_dropped_cleanly() {
        let mut sim = Simulation::new(0);
        sim.spawn(async {
            let (tx, rx) = channel::<u8>();
            let r = with_timeout(
                SimDuration::from_millis(1),
                async move { rx.recv().await.ok() },
            )
            .await;
            assert_eq!(r, None);
            // The receiver was dropped with the timed-out future.
            dsleep(SimDuration::from_millis(1)).await;
            assert!(tx.is_closed());
        });
        sim.run_to_completion();
    }

    #[test]
    fn timeout_in_loop_retries() {
        let mut sim = Simulation::new(0);
        sim.spawn(async {
            let (tx, rx) = channel::<u8>();
            spawn(async move {
                dsleep(SimDuration::from_millis(25)).await;
                tx.send_now(9).unwrap();
            });
            let mut attempts = 0;
            let v = loop {
                attempts += 1;
                if let Some(v) = with_timeout(SimDuration::from_millis(10), rx.recv()).await {
                    break v.unwrap();
                }
            };
            assert_eq!(v, 9);
            assert_eq!(attempts, 3);
        });
        sim.run_to_completion();
    }
}
