//! Bounded ring buffer of typed trace events, with an optional
//! streaming sink.
//!
//! Model components record [`Event`]s (timestamped on entry) into a
//! shared ring buffer when tracing is enabled. Consumers include tests
//! asserting on event ordering, the `mgrid --trace-out` JSON-lines sink,
//! and the metrics summary, which reports the [`Tracer::dropped`] count
//! so a truncated trace is never silently read as complete.
//!
//! Two consumers see different views of a long run:
//!
//! - the in-memory ring keeps only the newest `capacity` events (with
//!   [`Tracer::dropped`] counting evictions), for tests and the summary;
//! - a [`Tracer::set_sink`] writer receives **every** event as a JSON
//!   line the moment it is recorded, so a `--trace-out` file is the
//!   complete stream even when the ring wrapped. [`Tracer::streamed`]
//!   counts the lines written.
//!
//! Independently of both, [`Tracer::kind_counts`] tallies every recorded
//! event by its [`Event::kind`] name — eviction-proof totals for the
//! metrics summary.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::rc::Rc;

use crate::event::{Category, Event};
use crate::time::SimTime;

/// One timestamped trace record.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Physical instant the event was recorded.
    pub at: SimTime,
    /// The structured event payload.
    pub event: Event,
}

impl TraceEvent {
    /// Category of the contained event.
    pub fn category(&self) -> Category {
        self.event.category()
    }

    /// Encode as one JSON-lines record (no trailing newline).
    pub fn to_json_line(&self) -> String {
        self.event.to_json_line(self.at.as_nanos())
    }
}

struct TraceState {
    enabled: bool,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
    /// Eviction-proof per-kind totals, keyed by [`Event::kind`].
    kinds: BTreeMap<&'static str, u64>,
    /// Optional streaming sink: every recorded event is written as one
    /// JSON line before ring admission, so the sink never truncates.
    sink: Option<Box<dyn Write>>,
    streamed: u64,
    sink_error: Option<String>,
}

/// A shared, bounded trace buffer.
///
/// Cloning shares the buffer. When full, the **oldest** events are
/// evicted and counted in [`Tracer::dropped`].
#[derive(Clone)]
pub struct Tracer {
    state: Rc<RefCell<TraceState>>,
}

impl Tracer {
    /// Create an enabled tracer holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            state: Rc::new(RefCell::new(TraceState {
                enabled: true,
                capacity,
                events: VecDeque::new(),
                dropped: 0,
                kinds: BTreeMap::new(),
                sink: None,
                streamed: 0,
                sink_error: None,
            })),
        }
    }

    /// A tracer that records nothing (the default for a fresh
    /// [`crate::Simulation`]; enable with [`Tracer::set_enabled`] after
    /// giving it capacity via [`Tracer::set_capacity`]).
    pub fn disabled() -> Self {
        let t = Tracer::new(0);
        t.state.borrow_mut().enabled = false;
        t
    }

    /// Whether events are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.state.borrow().enabled
    }

    /// Enable or disable recording.
    pub fn set_enabled(&self, on: bool) {
        self.state.borrow_mut().enabled = on;
    }

    /// Change the buffer capacity. Excess retained events are evicted
    /// oldest-first (and counted as dropped).
    pub fn set_capacity(&self, capacity: usize) {
        let mut s = self.state.borrow_mut();
        s.capacity = capacity;
        while s.events.len() > capacity {
            s.events.pop_front();
            s.dropped += 1;
        }
    }

    /// Record an event (no-op when disabled).
    ///
    /// The event is counted in [`Tracer::kind_counts`], streamed to the
    /// sink if one is set, then admitted to the bounded ring (evicting
    /// the oldest entry when full).
    pub fn record(&self, at: SimTime, event: Event) {
        let mut s = self.state.borrow_mut();
        if !s.enabled {
            return;
        }
        *s.kinds.entry(event.kind()).or_insert(0) += 1;
        if s.sink.is_some() && s.sink_error.is_none() {
            let line = event.to_json_line(at.as_nanos());
            let sink = s.sink.as_mut().expect("checked above");
            match writeln!(sink, "{line}") {
                Ok(()) => s.streamed += 1,
                Err(e) => s.sink_error = Some(e.to_string()),
            }
        }
        if s.events.len() >= s.capacity {
            s.events.pop_front();
            s.dropped += 1;
        }
        if s.capacity > 0 {
            s.events.push_back(TraceEvent { at, event });
        }
    }

    /// Attach a streaming sink. Every subsequently recorded event is
    /// written to it as one JSON line (the `--trace-out` format) at
    /// record time, independent of ring capacity. Replaces any previous
    /// sink without flushing it; call [`Tracer::flush_sink`] first if
    /// that matters.
    pub fn set_sink(&self, sink: Box<dyn Write>) {
        let mut s = self.state.borrow_mut();
        s.sink = Some(sink);
        s.streamed = 0;
        s.sink_error = None;
    }

    /// Flush the streaming sink, if any (errors are latched like write
    /// errors).
    pub fn flush_sink(&self) {
        let mut s = self.state.borrow_mut();
        if s.sink_error.is_some() {
            return;
        }
        if let Some(sink) = s.sink.as_mut() {
            if let Err(e) = sink.flush() {
                s.sink_error = Some(e.to_string());
            }
        }
    }

    /// Detach and return the streaming sink (unflushed writes are the
    /// caller's to flush, e.g. by dropping a `BufWriter`).
    pub fn take_sink(&self) -> Option<Box<dyn Write>> {
        self.state.borrow_mut().sink.take()
    }

    /// Number of events successfully written to the streaming sink.
    pub fn streamed(&self) -> u64 {
        self.state.borrow().streamed
    }

    /// First sink write/flush error, if any. Once set, streaming stops;
    /// the in-memory ring keeps recording.
    pub fn sink_error(&self) -> Option<String> {
        self.state.borrow().sink_error.clone()
    }

    /// Eviction-proof per-kind event totals, sorted by kind name. Counts
    /// every recorded event regardless of ring capacity.
    pub fn kind_counts(&self) -> Vec<(&'static str, u64)> {
        self.state
            .borrow()
            .kinds
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect()
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.state.borrow().events.iter().cloned().collect()
    }

    /// Retained events of one category, oldest first.
    pub fn events_in(&self, category: Category) -> Vec<TraceEvent> {
        self.state
            .borrow()
            .events
            .iter()
            .filter(|e| e.category() == category)
            .cloned()
            .collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.state.borrow().events.len()
    }

    /// True if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.state.borrow().events.is_empty()
    }

    /// Number of events evicted because the buffer was full. A nonzero
    /// value means [`Tracer::events`] is a *suffix* of the true event
    /// stream, not the whole of it.
    pub fn dropped(&self) -> u64 {
        self.state.borrow().dropped
    }

    /// Discard all retained events and reset the dropped count and the
    /// per-kind totals. The streaming sink (and its counters) is
    /// untouched.
    pub fn clear(&self) {
        let mut s = self.state.borrow_mut();
        s.events.clear();
        s.dropped = 0;
        s.kinds.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> Event {
        Event::PacketDequeue { link: 0, bytes: n }
    }

    #[test]
    fn records_in_order() {
        let t = Tracer::new(10);
        t.record(
            SimTime::from_nanos(1),
            Event::QuantumGrant {
                host: "h0".into(),
                job: "j".into(),
            },
        );
        t.record(SimTime::from_nanos(2), ev(9));
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].category(), Category::Sched);
        assert_eq!(evs[1].event, ev(9));
    }

    #[test]
    fn capacity_evicts_oldest_and_counts_drops() {
        let t = Tracer::new(3);
        for i in 0..5u64 {
            t.record(SimTime::from_nanos(i), ev(i));
        }
        let evs = t.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].event, ev(2)); // 0 and 1 were evicted
        assert_eq!(evs[2].event, ev(4));
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let t = Tracer::new(0);
        for i in 0..4u64 {
            t.record(SimTime::ZERO, ev(i));
        }
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 4);
    }

    #[test]
    fn disabled_records_nothing_and_counts_nothing() {
        let t = Tracer::disabled();
        t.record(SimTime::ZERO, ev(1));
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn set_capacity_shrinks_with_drop_accounting() {
        let t = Tracer::new(8);
        for i in 0..6u64 {
            t.record(SimTime::ZERO, ev(i));
        }
        t.set_capacity(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 4);
        assert_eq!(t.events()[0].event, ev(4));
    }

    #[test]
    fn filter_by_category() {
        let t = Tracer::new(10);
        t.record(SimTime::ZERO, ev(1));
        t.record(
            SimTime::ZERO,
            Event::QuantumGrant {
                host: "h".into(),
                job: "j".into(),
            },
        );
        t.record(SimTime::ZERO, ev(2));
        assert_eq!(t.events_in(Category::Net).len(), 2);
        assert_eq!(t.events_in(Category::Sched).len(), 1);
        assert_eq!(t.events_in(Category::Mpi).len(), 0);
    }

    #[test]
    fn kind_counts_survive_eviction() {
        let t = Tracer::new(2);
        for i in 0..5u64 {
            t.record(SimTime::from_nanos(i), ev(i));
        }
        t.record(
            SimTime::from_nanos(9),
            Event::QuantumGrant {
                host: "h".into(),
                job: "j".into(),
            },
        );
        assert_eq!(
            t.kind_counts(),
            vec![("packet_dequeue", 5), ("quantum_grant", 1)]
        );
        assert_eq!(t.len(), 2); // the ring still evicted
    }

    #[test]
    fn sink_streams_every_event_past_ring_capacity() {
        use std::cell::RefCell;
        use std::rc::Rc;

        // A Write impl sharing its buffer so the test can read it back
        // after handing ownership to the tracer.
        #[derive(Clone, Default)]
        struct Shared(Rc<RefCell<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.borrow_mut().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = Shared::default();
        let t = Tracer::new(1); // ring keeps only the newest event
        t.set_sink(Box::new(buf.clone()));
        for i in 0..4u64 {
            t.record(SimTime::from_nanos(i), ev(i));
        }
        assert_eq!(t.streamed(), 4);
        assert_eq!(t.dropped(), 3);
        assert!(t.sink_error().is_none());
        let text = String::from_utf8(buf.0.borrow().clone()).unwrap();
        assert_eq!(text.lines().count(), 4);
        assert!(text.lines().next().unwrap().contains("\"t_ns\":0"));
    }

    #[test]
    fn sink_error_latches_and_stops_streaming() {
        struct Failing;
        impl std::io::Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let t = Tracer::new(4);
        t.set_sink(Box::new(Failing));
        t.record(SimTime::ZERO, ev(1));
        t.record(SimTime::ZERO, ev(2));
        assert_eq!(t.streamed(), 0);
        assert!(t.sink_error().unwrap().contains("disk full"));
        assert_eq!(t.len(), 2); // the ring keeps recording
    }

    #[test]
    fn clear_resets() {
        let t = Tracer::new(2);
        for i in 0..3u64 {
            t.record(SimTime::ZERO, ev(i));
        }
        t.clear();
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }
}
