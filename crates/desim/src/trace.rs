//! Bounded ring buffer of typed trace events.
//!
//! Model components record [`Event`]s (timestamped on entry) into a
//! shared ring buffer when tracing is enabled. Consumers include tests
//! asserting on event ordering, the `mgrid --trace-out` JSON-lines sink,
//! and the metrics summary, which reports the [`Tracer::dropped`] count
//! so a truncated trace is never silently read as complete.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::event::{Category, Event};
use crate::time::SimTime;

/// One timestamped trace record.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Physical instant the event was recorded.
    pub at: SimTime,
    /// The structured event payload.
    pub event: Event,
}

impl TraceEvent {
    /// Category of the contained event.
    pub fn category(&self) -> Category {
        self.event.category()
    }

    /// Encode as one JSON-lines record (no trailing newline).
    pub fn to_json_line(&self) -> String {
        self.event.to_json_line(self.at.as_nanos())
    }
}

struct TraceState {
    enabled: bool,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// A shared, bounded trace buffer.
///
/// Cloning shares the buffer. When full, the **oldest** events are
/// evicted and counted in [`Tracer::dropped`].
#[derive(Clone)]
pub struct Tracer {
    state: Rc<RefCell<TraceState>>,
}

impl Tracer {
    /// Create an enabled tracer holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            state: Rc::new(RefCell::new(TraceState {
                enabled: true,
                capacity,
                events: VecDeque::new(),
                dropped: 0,
            })),
        }
    }

    /// A tracer that records nothing (the default for a fresh
    /// [`crate::Simulation`]; enable with [`Tracer::set_enabled`] after
    /// giving it capacity via [`Tracer::set_capacity`]).
    pub fn disabled() -> Self {
        let t = Tracer::new(0);
        t.state.borrow_mut().enabled = false;
        t
    }

    /// Whether events are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.state.borrow().enabled
    }

    /// Enable or disable recording.
    pub fn set_enabled(&self, on: bool) {
        self.state.borrow_mut().enabled = on;
    }

    /// Change the buffer capacity. Excess retained events are evicted
    /// oldest-first (and counted as dropped).
    pub fn set_capacity(&self, capacity: usize) {
        let mut s = self.state.borrow_mut();
        s.capacity = capacity;
        while s.events.len() > capacity {
            s.events.pop_front();
            s.dropped += 1;
        }
    }

    /// Record an event (no-op when disabled).
    pub fn record(&self, at: SimTime, event: Event) {
        let mut s = self.state.borrow_mut();
        if !s.enabled {
            return;
        }
        if s.events.len() >= s.capacity {
            s.events.pop_front();
            s.dropped += 1;
        }
        if s.capacity > 0 {
            s.events.push_back(TraceEvent { at, event });
        }
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.state.borrow().events.iter().cloned().collect()
    }

    /// Retained events of one category, oldest first.
    pub fn events_in(&self, category: Category) -> Vec<TraceEvent> {
        self.state
            .borrow()
            .events
            .iter()
            .filter(|e| e.category() == category)
            .cloned()
            .collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.state.borrow().events.len()
    }

    /// True if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.state.borrow().events.is_empty()
    }

    /// Number of events evicted because the buffer was full. A nonzero
    /// value means [`Tracer::events`] is a *suffix* of the true event
    /// stream, not the whole of it.
    pub fn dropped(&self) -> u64 {
        self.state.borrow().dropped
    }

    /// Discard all retained events and reset the dropped count.
    pub fn clear(&self) {
        let mut s = self.state.borrow_mut();
        s.events.clear();
        s.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> Event {
        Event::PacketDequeue { link: 0, bytes: n }
    }

    #[test]
    fn records_in_order() {
        let t = Tracer::new(10);
        t.record(
            SimTime::from_nanos(1),
            Event::QuantumGrant {
                host: "h0".into(),
                job: "j".into(),
            },
        );
        t.record(SimTime::from_nanos(2), ev(9));
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].category(), Category::Sched);
        assert_eq!(evs[1].event, ev(9));
    }

    #[test]
    fn capacity_evicts_oldest_and_counts_drops() {
        let t = Tracer::new(3);
        for i in 0..5u64 {
            t.record(SimTime::from_nanos(i), ev(i));
        }
        let evs = t.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].event, ev(2)); // 0 and 1 were evicted
        assert_eq!(evs[2].event, ev(4));
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let t = Tracer::new(0);
        for i in 0..4u64 {
            t.record(SimTime::ZERO, ev(i));
        }
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 4);
    }

    #[test]
    fn disabled_records_nothing_and_counts_nothing() {
        let t = Tracer::disabled();
        t.record(SimTime::ZERO, ev(1));
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn set_capacity_shrinks_with_drop_accounting() {
        let t = Tracer::new(8);
        for i in 0..6u64 {
            t.record(SimTime::ZERO, ev(i));
        }
        t.set_capacity(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 4);
        assert_eq!(t.events()[0].event, ev(4));
    }

    #[test]
    fn filter_by_category() {
        let t = Tracer::new(10);
        t.record(SimTime::ZERO, ev(1));
        t.record(
            SimTime::ZERO,
            Event::QuantumGrant {
                host: "h".into(),
                job: "j".into(),
            },
        );
        t.record(SimTime::ZERO, ev(2));
        assert_eq!(t.events_in(Category::Net).len(), 2);
        assert_eq!(t.events_in(Category::Sched).len(), 1);
        assert_eq!(t.events_in(Category::Mpi).len(), 0);
    }

    #[test]
    fn clear_resets() {
        let t = Tracer::new(2);
        for i in 0..3u64 {
            t.record(SimTime::ZERO, ev(i));
        }
        t.clear();
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }
}
