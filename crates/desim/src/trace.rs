//! Lightweight event tracing.
//!
//! Model components record `(time, category, message)` tuples into a shared
//! ring buffer when tracing is enabled. Used by tests to assert on event
//! ordering and by the `repro` harness to dump simulator internals.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::time::SimTime;

/// One trace record.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Physical instant of the event.
    pub at: SimTime,
    /// Component category, e.g. `"sched"`, `"net"`, `"mpi"`.
    pub category: &'static str,
    /// Human-readable payload.
    pub message: String,
}

struct TraceState {
    enabled: bool,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// A shared, bounded trace buffer.
#[derive(Clone)]
pub struct Tracer {
    state: Rc<RefCell<TraceState>>,
}

impl Tracer {
    /// Create a tracer holding at most `capacity` events (older events are
    /// dropped first).
    pub fn new(capacity: usize) -> Self {
        Tracer {
            state: Rc::new(RefCell::new(TraceState {
                enabled: true,
                capacity,
                events: VecDeque::new(),
                dropped: 0,
            })),
        }
    }

    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        let t = Tracer::new(0);
        t.state.borrow_mut().enabled = false;
        t
    }

    /// Whether events are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.state.borrow().enabled
    }

    /// Enable or disable recording.
    pub fn set_enabled(&self, on: bool) {
        self.state.borrow_mut().enabled = on;
    }

    /// Record an event (no-op when disabled).
    pub fn record(&self, at: SimTime, category: &'static str, message: impl Into<String>) {
        let mut s = self.state.borrow_mut();
        if !s.enabled {
            return;
        }
        if s.events.len() >= s.capacity {
            s.events.pop_front();
            s.dropped += 1;
        }
        if s.capacity > 0 {
            s.events.push_back(TraceEvent {
                at,
                category,
                message: message.into(),
            });
        }
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.state.borrow().events.iter().cloned().collect()
    }

    /// Events matching a category.
    pub fn events_in(&self, category: &str) -> Vec<TraceEvent> {
        self.state
            .borrow()
            .events
            .iter()
            .filter(|e| e.category == category)
            .cloned()
            .collect()
    }

    /// Number of events evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.state.borrow().dropped
    }

    /// Discard all retained events.
    pub fn clear(&self) {
        let mut s = self.state.borrow_mut();
        s.events.clear();
        s.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let t = Tracer::new(10);
        t.record(SimTime::from_nanos(1), "a", "first");
        t.record(SimTime::from_nanos(2), "b", "second");
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].message, "first");
        assert_eq!(evs[1].category, "b");
    }

    #[test]
    fn capacity_evicts_oldest() {
        let t = Tracer::new(3);
        for i in 0..5u64 {
            t.record(SimTime::from_nanos(i), "x", format!("{i}"));
        }
        let evs = t.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].message, "2");
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn disabled_records_nothing() {
        let t = Tracer::disabled();
        t.record(SimTime::ZERO, "x", "ignored");
        assert!(t.events().is_empty());
    }

    #[test]
    fn filter_by_category() {
        let t = Tracer::new(10);
        t.record(SimTime::ZERO, "net", "p1");
        t.record(SimTime::ZERO, "sched", "q1");
        t.record(SimTime::ZERO, "net", "p2");
        assert_eq!(t.events_in("net").len(), 2);
        assert_eq!(t.events_in("sched").len(), 1);
    }

    #[test]
    fn clear_resets() {
        let t = Tracer::new(2);
        t.record(SimTime::ZERO, "x", "a");
        t.record(SimTime::ZERO, "x", "b");
        t.record(SimTime::ZERO, "x", "c");
        t.clear();
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }
}
