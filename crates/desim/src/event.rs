//! Typed simulator events.
//!
//! Every instrumented subsystem reports what happened through one closed
//! [`Event`] enum instead of free-form strings, so consumers (tests, the
//! `--trace-out` JSON-lines sink, the metrics summary) can match on
//! structure instead of parsing messages. Each event belongs to a
//! [`Category`], the unit at which traces are filtered and metrics are
//! summarized.

use std::fmt;

/// The subsystem an [`Event`] originates from.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Category {
    /// MicroGrid CPU scheduler daemon (Fig 4 quantum loop).
    Sched,
    /// Packet network simulator (links, queues, drops).
    Net,
    /// Virtual socket layer (application-visible traffic).
    Vsock,
    /// Virtual host memory manager (allocations and cap denials).
    Mem,
    /// MPI collective operations.
    Mpi,
    /// Scenario-scripted fault injection (link outages, host crashes).
    Fault,
}

impl Category {
    /// All categories, in summary display order.
    pub const ALL: [Category; 6] = [
        Category::Sched,
        Category::Net,
        Category::Vsock,
        Category::Mem,
        Category::Mpi,
        Category::Fault,
    ];

    /// Stable lowercase name used in trace output and metric keys.
    pub const fn name(self) -> &'static str {
        match self {
            Category::Sched => "sched",
            Category::Net => "net",
            Category::Vsock => "vsock",
            Category::Mem => "mem",
            Category::Mpi => "mpi",
            Category::Fault => "fault",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One structured simulator event.
///
/// Byte and duration fields are plain integers (`u64` nanoseconds for
/// spans) so events serialize compactly and compare exactly in tests.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// The scheduler daemon granted a quantum to a job (Fig 4: SIGCONT).
    QuantumGrant {
        /// Virtual host the scheduler runs on.
        host: String,
        /// Process name of the granted job.
        job: String,
    },
    /// The scheduler daemon preempted the running job (Fig 4: SIGSTOP),
    /// charging it the elapsed wall time.
    QuantumPreempt {
        /// Virtual host the scheduler runs on.
        host: String,
        /// Process name of the preempted job.
        job: String,
        /// Wall (simulated physical) nanoseconds charged for the quantum.
        wall_ns: u64,
    },
    /// A packet was accepted into a link's FIFO queue.
    PacketEnqueue {
        /// Directed link index.
        link: usize,
        /// Packet size in bytes.
        bytes: u64,
        /// Queue occupancy in bytes after the enqueue.
        queued_bytes: u64,
    },
    /// A packet left a link's queue and began transmission.
    PacketDequeue {
        /// Directed link index.
        link: usize,
        /// Packet size in bytes.
        bytes: u64,
    },
    /// A packet arrived at a full queue and was dropped.
    PacketDrop {
        /// Directed link index.
        link: usize,
        /// Packet size in bytes.
        bytes: u64,
    },
    /// An application sent a datagram through a virtual socket.
    VsockSend {
        /// Sending virtual host.
        src: String,
        /// Destination virtual host.
        dst: String,
        /// Payload bytes.
        bytes: u64,
    },
    /// An application received a datagram from a virtual socket.
    VsockRecv {
        /// Receiving virtual host.
        host: String,
        /// Payload bytes.
        bytes: u64,
    },
    /// A memory allocation succeeded against a host's cap.
    MemAlloc {
        /// Virtual host owning the memory cap.
        host: String,
        /// Bytes allocated.
        bytes: u64,
        /// Total bytes in use after the allocation.
        in_use: u64,
    },
    /// A memory request exceeded the host cap and was denied (the paper's
    /// Fig 5 boundary).
    MemDeny {
        /// Virtual host owning the memory cap.
        host: String,
        /// Bytes requested.
        requested: u64,
        /// Bytes already in use.
        in_use: u64,
        /// The configured cap.
        limit: u64,
    },
    /// An MPI collective started on the root/calling rank.
    CollectiveStart {
        /// Operation name (`"barrier"`, `"bcast"`, …).
        op: &'static str,
        /// Communicator size.
        ranks: usize,
    },
    /// An MPI collective completed on the root/calling rank.
    CollectiveEnd {
        /// Operation name (`"barrier"`, `"bcast"`, …).
        op: &'static str,
        /// Communicator size.
        ranks: usize,
        /// Virtual-time nanoseconds the collective took.
        elapsed_ns: u64,
    },
    /// A hop-by-hop route walk revisited more nodes than the topology
    /// holds — a routing loop (should be impossible with consistent
    /// first-hop tables; emitted instead of failing silently).
    RouteLoop {
        /// Source node index of the walk.
        src: usize,
        /// Destination node index of the walk.
        dst: usize,
        /// Node index the walk stood at when the loop was detected.
        at: usize,
    },
    /// The fault injector fired one scripted fault.
    FaultInjected {
        /// Stable fault-kind name (`"link_down"`, `"host_crash"`, …).
        fault: &'static str,
        /// Target description (link endpoints, host name, or cut).
        target: String,
    },
    /// An MPI receive or rendezvous wait exceeded its configured timeout,
    /// surfacing a suspected rank failure.
    RankTimeout {
        /// The waiting rank.
        rank: u64,
        /// Nanoseconds waited before giving up.
        waited_ns: u64,
    },
}

impl Event {
    /// The subsystem this event belongs to.
    pub const fn category(&self) -> Category {
        match self {
            Event::QuantumGrant { .. } | Event::QuantumPreempt { .. } => Category::Sched,
            Event::PacketEnqueue { .. }
            | Event::PacketDequeue { .. }
            | Event::PacketDrop { .. }
            | Event::RouteLoop { .. } => Category::Net,
            Event::VsockSend { .. } | Event::VsockRecv { .. } => Category::Vsock,
            Event::MemAlloc { .. } | Event::MemDeny { .. } => Category::Mem,
            Event::CollectiveStart { .. }
            | Event::CollectiveEnd { .. }
            | Event::RankTimeout { .. } => Category::Mpi,
            Event::FaultInjected { .. } => Category::Fault,
        }
    }

    /// Stable snake_case name of the event kind (the `"event"` field of
    /// the JSON-lines encoding).
    pub const fn kind(&self) -> &'static str {
        match self {
            Event::QuantumGrant { .. } => "quantum_grant",
            Event::QuantumPreempt { .. } => "quantum_preempt",
            Event::PacketEnqueue { .. } => "packet_enqueue",
            Event::PacketDequeue { .. } => "packet_dequeue",
            Event::PacketDrop { .. } => "packet_drop",
            Event::RouteLoop { .. } => "route_loop",
            Event::VsockSend { .. } => "vsock_send",
            Event::VsockRecv { .. } => "vsock_recv",
            Event::MemAlloc { .. } => "mem_alloc",
            Event::MemDeny { .. } => "mem_deny",
            Event::CollectiveStart { .. } => "collective_start",
            Event::CollectiveEnd { .. } => "collective_end",
            Event::FaultInjected { .. } => "fault_injected",
            Event::RankTimeout { .. } => "rank_timeout",
        }
    }

    /// Encode as one JSON object (no trailing newline) with the shape
    /// `{"t_ns":…,"cat":"…","event":"…",…fields}`.
    ///
    /// Hand-rolled rather than serde-derived so the encoding is identical
    /// under any serde implementation and needs no derive support for
    /// `&'static str` fields.
    pub fn to_json_line(&self, t_ns: u64) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"t_ns\":");
        out.push_str(&t_ns.to_string());
        out.push_str(",\"cat\":\"");
        out.push_str(self.category().name());
        out.push_str("\",\"event\":\"");
        out.push_str(self.kind());
        out.push('"');
        let mut field_str = |key: &str, val: &str| {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":\"");
            for c in val.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
        };
        // Write string fields through the escaping closure first, then
        // reuse `out` for numeric fields below.
        match self {
            Event::QuantumGrant { host, job } | Event::QuantumPreempt { host, job, .. } => {
                field_str("host", host);
                field_str("job", job);
            }
            Event::VsockSend { src, dst, .. } => {
                field_str("src", src);
                field_str("dst", dst);
            }
            Event::VsockRecv { host, .. } => field_str("host", host),
            Event::MemAlloc { host, .. } | Event::MemDeny { host, .. } => field_str("host", host),
            Event::CollectiveStart { op, .. } | Event::CollectiveEnd { op, .. } => {
                field_str("op", op)
            }
            Event::FaultInjected { fault, target } => {
                field_str("fault", fault);
                field_str("target", target);
            }
            _ => {}
        }
        let mut field_num = |key: &str, val: u64| {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":");
            out.push_str(&val.to_string());
        };
        match self {
            Event::QuantumGrant { .. } => {}
            Event::QuantumPreempt { wall_ns, .. } => field_num("wall_ns", *wall_ns),
            Event::PacketEnqueue {
                link,
                bytes,
                queued_bytes,
            } => {
                field_num("link", *link as u64);
                field_num("bytes", *bytes);
                field_num("queued_bytes", *queued_bytes);
            }
            Event::PacketDequeue { link, bytes } | Event::PacketDrop { link, bytes } => {
                field_num("link", *link as u64);
                field_num("bytes", *bytes);
            }
            Event::VsockSend { bytes, .. } | Event::VsockRecv { bytes, .. } => {
                field_num("bytes", *bytes)
            }
            Event::MemAlloc { bytes, in_use, .. } => {
                field_num("bytes", *bytes);
                field_num("in_use", *in_use);
            }
            Event::MemDeny {
                requested,
                in_use,
                limit,
                ..
            } => {
                field_num("requested", *requested);
                field_num("in_use", *in_use);
                field_num("limit", *limit);
            }
            Event::CollectiveStart { ranks, .. } => field_num("ranks", *ranks as u64),
            Event::CollectiveEnd {
                ranks, elapsed_ns, ..
            } => {
                field_num("ranks", *ranks as u64);
                field_num("elapsed_ns", *elapsed_ns);
            }
            Event::RouteLoop { src, dst, at } => {
                field_num("src", *src as u64);
                field_num("dst", *dst as u64);
                field_num("at", *at as u64);
            }
            Event::FaultInjected { .. } => {}
            Event::RankTimeout { rank, waited_ns } => {
                field_num("rank", *rank);
                field_num("waited_ns", *waited_ns);
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_are_stable() {
        assert_eq!(
            Event::QuantumGrant {
                host: "h".into(),
                job: "j".into()
            }
            .category(),
            Category::Sched
        );
        assert_eq!(
            Event::PacketDrop { link: 0, bytes: 1 }.category(),
            Category::Net
        );
        assert_eq!(
            Event::MemDeny {
                host: "h".into(),
                requested: 1,
                in_use: 0,
                limit: 1
            }
            .category(),
            Category::Mem
        );
        assert_eq!(Category::Mpi.name(), "mpi");
    }

    #[test]
    fn json_line_shape() {
        let line = Event::QuantumPreempt {
            host: "alpha0".into(),
            job: "mg.A".into(),
            wall_ns: 10_000_000,
        }
        .to_json_line(42);
        assert_eq!(
            line,
            "{\"t_ns\":42,\"cat\":\"sched\",\"event\":\"quantum_preempt\",\
             \"host\":\"alpha0\",\"job\":\"mg.A\",\"wall_ns\":10000000}"
        );
    }

    #[test]
    fn json_line_escapes_strings() {
        let line = Event::VsockRecv {
            host: "a\"b\\c".into(),
            bytes: 3,
        }
        .to_json_line(0);
        assert!(line.contains("a\\\"b\\\\c"));
    }
}
