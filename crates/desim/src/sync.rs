//! Synchronization primitives for simulation tasks.
//!
//! FIFO-fair semaphore (and a mutex built on it), a cyclic barrier, and a
//! notification cell. Fairness matters for fidelity: the MicroGrid CPU
//! scheduler is round-robin, and an unfair semaphore would starve processes
//! and distort the quanta distributions of Fig 7.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

struct Waiter {
    need: usize,
    granted: bool,
    waker: Option<Waker>,
}

struct SemState {
    permits: usize,
    waiters: VecDeque<Rc<RefCell<Waiter>>>,
}

impl SemState {
    /// Hand permits to waiters at the queue head while they can be
    /// satisfied (strict FIFO: a large request blocks later small ones).
    fn grant(&mut self) {
        while let Some(front) = self.waiters.front() {
            let mut w = front.borrow_mut();
            if w.granted {
                // Already granted but not yet consumed; nothing more to do.
                return;
            }
            if self.permits >= w.need {
                self.permits -= w.need;
                w.granted = true;
                if let Some(wk) = w.waker.take() {
                    wk.wake();
                }
                drop(w);
                self.waiters.pop_front();
            } else {
                return;
            }
        }
    }
}

/// A counting semaphore with strict FIFO wakeup order.
#[derive(Clone)]
pub struct Semaphore {
    state: Rc<RefCell<SemState>>,
}

impl Semaphore {
    /// Create a semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            state: Rc::new(RefCell::new(SemState {
                permits,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// Available (unclaimed) permits.
    pub fn available(&self) -> usize {
        self.state.borrow().permits
    }

    /// Number of parked acquirers.
    pub fn queue_len(&self) -> usize {
        self.state.borrow().waiters.len()
    }

    /// Acquire one permit.
    pub async fn acquire(&self) {
        self.acquire_n(1).await;
    }

    /// Acquire `n` permits atomically (FIFO with respect to other
    /// acquirers).
    pub async fn acquire_n(&self, n: usize) {
        let waiter = {
            let mut s = self.state.borrow_mut();
            if s.waiters.is_empty() && s.permits >= n {
                s.permits -= n;
                return;
            }
            let w = Rc::new(RefCell::new(Waiter {
                need: n,
                granted: false,
                waker: None,
            }));
            s.waiters.push_back(w.clone());
            w
        };
        AcquireFuture { waiter }.await;
    }

    /// Try to acquire one permit without waiting.
    pub fn try_acquire(&self) -> bool {
        let mut s = self.state.borrow_mut();
        if s.waiters.is_empty() && s.permits >= 1 {
            s.permits -= 1;
            true
        } else {
            false
        }
    }

    /// Return one permit.
    pub fn release(&self) {
        self.release_n(1);
    }

    /// Return `n` permits.
    pub fn release_n(&self, n: usize) {
        let mut s = self.state.borrow_mut();
        s.permits += n;
        s.grant();
    }
}

struct AcquireFuture {
    waiter: Rc<RefCell<Waiter>>,
}

impl Future for AcquireFuture {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut w = self.waiter.borrow_mut();
        if w.granted {
            Poll::Ready(())
        } else {
            w.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// An async mutex with FIFO-fair handoff.
pub struct SimMutex<T> {
    sem: Semaphore,
    value: Rc<RefCell<T>>,
}

impl<T> SimMutex<T> {
    /// Wrap a value in a mutex.
    pub fn new(value: T) -> Self {
        SimMutex {
            sem: Semaphore::new(1),
            value: Rc::new(RefCell::new(value)),
        }
    }

    /// Lock, parking until the mutex is free.
    pub async fn lock(&self) -> SimMutexGuard<'_, T> {
        self.sem.acquire().await;
        SimMutexGuard { mutex: self }
    }
}

impl<T> Clone for SimMutex<T> {
    fn clone(&self) -> Self {
        SimMutex {
            sem: self.sem.clone(),
            value: self.value.clone(),
        }
    }
}

/// RAII guard for [`SimMutex`]; access the value via [`SimMutexGuard::with`].
pub struct SimMutexGuard<'a, T> {
    mutex: &'a SimMutex<T>,
}

impl<T> SimMutexGuard<'_, T> {
    /// Run a closure with mutable access to the protected value.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.mutex.value.borrow_mut())
    }
}

impl<T> Drop for SimMutexGuard<'_, T> {
    fn drop(&mut self) {
        self.mutex.sem.release();
    }
}

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

struct BarrierState {
    n: usize,
    arrived: usize,
    generation: u64,
    wakers: Vec<Waker>,
}

/// A cyclic barrier: `wait` parks until `n` tasks have arrived, then all
/// proceed and the barrier resets for the next round.
#[derive(Clone)]
pub struct Barrier {
    state: Rc<RefCell<BarrierState>>,
}

impl Barrier {
    /// Create a barrier for `n` parties.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier of zero parties");
        Barrier {
            state: Rc::new(RefCell::new(BarrierState {
                n,
                arrived: 0,
                generation: 0,
                wakers: Vec::new(),
            })),
        }
    }

    /// Arrive and wait for the rest. Returns `true` for exactly one task per
    /// round (the "leader", the last to arrive).
    pub async fn wait(&self) -> bool {
        let (gen, leader) = {
            let mut s = self.state.borrow_mut();
            s.arrived += 1;
            if s.arrived == s.n {
                s.arrived = 0;
                s.generation += 1;
                for w in s.wakers.drain(..) {
                    w.wake();
                }
                (s.generation, true)
            } else {
                (s.generation, false)
            }
        };
        if leader {
            return true;
        }
        BarrierWait {
            state: self.state.clone(),
            gen,
        }
        .await;
        false
    }
}

struct BarrierWait {
    state: Rc<RefCell<BarrierState>>,
    gen: u64,
}

impl Future for BarrierWait {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut s = self.state.borrow_mut();
        if s.generation != self.gen {
            Poll::Ready(())
        } else {
            s.wakers.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Notify
// ---------------------------------------------------------------------------

struct NotifyState {
    permit: bool,
    wakers: VecDeque<Waker>,
}

/// A notification cell in the style of `tokio::sync::Notify`.
///
/// `notify_one` stores a single permit if nobody is waiting, so a
/// notification sent just before `notified().await` is not lost.
#[derive(Clone)]
pub struct Notify {
    state: Rc<RefCell<NotifyState>>,
}

impl Default for Notify {
    fn default() -> Self {
        Self::new()
    }
}

impl Notify {
    /// Create a notification cell.
    pub fn new() -> Self {
        Notify {
            state: Rc::new(RefCell::new(NotifyState {
                permit: false,
                wakers: VecDeque::new(),
            })),
        }
    }

    /// Wake one waiter, or bank a permit if none is waiting.
    pub fn notify_one(&self) {
        let mut s = self.state.borrow_mut();
        if let Some(w) = s.wakers.pop_front() {
            w.wake();
        } else {
            s.permit = true;
        }
    }

    /// Wake all current waiters (does not bank a permit).
    pub fn notify_all(&self) {
        let mut s = self.state.borrow_mut();
        for w in s.wakers.drain(..) {
            w.wake();
        }
    }

    /// Wait for a notification (or consume a banked permit).
    pub async fn notified(&self) {
        Notified {
            state: self.state.clone(),
            queued: false,
        }
        .await
    }
}

struct Notified {
    state: Rc<RefCell<NotifyState>>,
    queued: bool,
}

impl Future for Notified {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut s = self.state.borrow_mut();
        if s.permit {
            s.permit = false;
            return Poll::Ready(());
        }
        if self.queued {
            // We were woken by notify_one/notify_all (our waker was drained)
            // or this is a spurious poll. Distinguish by re-queueing: if our
            // waker is gone from the queue we were notified.
            // Simpler correct approach: treat any poll after queuing with an
            // absent waker as notified. We track via the queue containing our
            // waker; since wakers are not comparable, we instead always
            // re-queue and rely on notify draining to wake us exactly once.
            // To avoid double-queuing we use the `queued` flag plus the fact
            // that a drained waker means readiness.
            //
            // Concretely: Notified is only woken by notify_*; when woken we
            // complete.
            return Poll::Ready(());
        }
        s.wakers.push_back(cx.waker().clone());
        drop(s);
        self.queued = true;
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{now, sleep, spawn, Simulation};
    use crate::time::SimDuration;
    use std::cell::Cell;

    #[test]
    fn semaphore_limits_concurrency() {
        let mut sim = Simulation::new(0);
        sim.spawn(async {
            let sem = Semaphore::new(2);
            let active = Rc::new(Cell::new(0u32));
            let peak = Rc::new(Cell::new(0u32));
            let mut handles = Vec::new();
            for _ in 0..6 {
                let sem = sem.clone();
                let active = active.clone();
                let peak = peak.clone();
                handles.push(spawn(async move {
                    sem.acquire().await;
                    active.set(active.get() + 1);
                    peak.set(peak.get().max(active.get()));
                    sleep(SimDuration::from_millis(1)).await;
                    active.set(active.get() - 1);
                    sem.release();
                }));
            }
            for h in handles {
                h.await;
            }
            assert_eq!(peak.get(), 2);
        });
        sim.run_to_completion();
    }

    #[test]
    fn semaphore_fifo_order() {
        let mut sim = Simulation::new(0);
        sim.spawn(async {
            let sem = Semaphore::new(0);
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut handles = Vec::new();
            for i in 0..5 {
                let sem = sem.clone();
                let log = log.clone();
                handles.push(spawn(async move {
                    sem.acquire().await;
                    log.borrow_mut().push(i);
                }));
            }
            sleep(SimDuration::from_micros(1)).await;
            for _ in 0..5 {
                sem.release();
                sleep(SimDuration::from_micros(1)).await;
            }
            for h in handles {
                h.await;
            }
            assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
        });
        sim.run_to_completion();
    }

    #[test]
    fn acquire_n_blocks_smaller_later_requests() {
        let mut sim = Simulation::new(0);
        sim.spawn(async {
            let sem = Semaphore::new(1);
            let log = Rc::new(RefCell::new(Vec::new()));
            let l1 = log.clone();
            let s1 = sem.clone();
            let big = spawn(async move {
                s1.acquire_n(3).await;
                l1.borrow_mut().push("big");
                s1.release_n(3);
            });
            sleep(SimDuration::from_micros(1)).await;
            let l2 = log.clone();
            let s2 = sem.clone();
            let small = spawn(async move {
                s2.acquire().await;
                l2.borrow_mut().push("small");
                s2.release();
            });
            sleep(SimDuration::from_micros(1)).await;
            sem.release_n(2); // now 3 available -> big first, then small
            big.await;
            small.await;
            assert_eq!(*log.borrow(), vec!["big", "small"]);
        });
        sim.run_to_completion();
    }

    #[test]
    fn try_acquire_respects_queue() {
        let mut sim = Simulation::new(0);
        sim.spawn(async {
            let sem = Semaphore::new(1);
            assert!(sem.try_acquire());
            assert!(!sem.try_acquire());
            sem.release();
            assert!(sem.try_acquire());
            sem.release();
        });
        sim.run_to_completion();
    }

    #[test]
    fn mutex_exclusive() {
        let mut sim = Simulation::new(0);
        sim.spawn(async {
            let m = SimMutex::new(0u32);
            let mut handles = Vec::new();
            for _ in 0..10 {
                let m = m.clone();
                handles.push(spawn(async move {
                    let g = m.lock().await;
                    let v = g.with(|x| *x);
                    sleep(SimDuration::from_micros(10)).await;
                    g.with(|x| *x = v + 1);
                }));
            }
            for h in handles {
                h.await;
            }
            let g = m.lock().await;
            assert_eq!(g.with(|x| *x), 10);
        });
        sim.run_to_completion();
    }

    #[test]
    fn barrier_synchronizes_rounds() {
        let mut sim = Simulation::new(0);
        sim.spawn(async {
            let barrier = Barrier::new(3);
            let round_done = Rc::new(Cell::new([0u32; 3]));
            let mut handles = Vec::new();
            for p in 0..3usize {
                let barrier = barrier.clone();
                let rd = round_done.clone();
                handles.push(spawn(async move {
                    for round in 0..3usize {
                        sleep(SimDuration::from_millis((p as u64 + 1) * 2)).await;
                        barrier.wait().await;
                        // Every party observes the same completed-round count.
                        let mut arr = rd.get();
                        arr[round] += 1;
                        rd.set(arr);
                    }
                }));
            }
            for h in handles {
                h.await;
            }
            assert_eq!(round_done.get(), [3, 3, 3]);
        });
        sim.run_to_completion();
    }

    #[test]
    fn barrier_leader_unique() {
        let mut sim = Simulation::new(0);
        sim.spawn(async {
            let barrier = Barrier::new(4);
            let leaders = Rc::new(Cell::new(0u32));
            let mut handles = Vec::new();
            for p in 0..4u64 {
                let barrier = barrier.clone();
                let leaders = leaders.clone();
                handles.push(spawn(async move {
                    sleep(SimDuration::from_micros(p)).await;
                    if barrier.wait().await {
                        leaders.set(leaders.get() + 1);
                    }
                }));
            }
            for h in handles {
                h.await;
            }
            assert_eq!(leaders.get(), 1);
        });
        sim.run_to_completion();
    }

    #[test]
    fn barrier_waits_for_slowest() {
        let mut sim = Simulation::new(0);
        sim.spawn(async {
            let barrier = Barrier::new(2);
            let b = barrier.clone();
            let fast = spawn(async move {
                b.wait().await;
                now()
            });
            let b = barrier.clone();
            let slow = spawn(async move {
                sleep(SimDuration::from_millis(50)).await;
                b.wait().await;
                now()
            });
            assert_eq!(fast.await.as_millis(), 50);
            assert_eq!(slow.await.as_millis(), 50);
        });
        sim.run_to_completion();
    }

    #[test]
    fn notify_banked_permit() {
        let mut sim = Simulation::new(0);
        sim.spawn(async {
            let n = Notify::new();
            n.notify_one();
            n.notified().await; // must not hang
        });
        sim.run_to_completion();
    }

    #[test]
    fn notify_wakes_waiter() {
        let mut sim = Simulation::new(0);
        sim.spawn(async {
            let n = Notify::new();
            let n2 = n.clone();
            let h = spawn(async move {
                n2.notified().await;
                now()
            });
            sleep(SimDuration::from_millis(4)).await;
            n.notify_one();
            assert_eq!(h.await.as_millis(), 4);
        });
        sim.run_to_completion();
    }

    #[test]
    fn notify_all_wakes_everyone() {
        let mut sim = Simulation::new(0);
        sim.spawn(async {
            let n = Notify::new();
            let mut handles = Vec::new();
            for _ in 0..5 {
                let n = n.clone();
                handles.push(spawn(async move {
                    n.notified().await;
                }));
            }
            sleep(SimDuration::from_millis(1)).await;
            n.notify_all();
            for h in handles {
                h.await;
            }
        });
        sim.run_to_completion();
    }
}
