//! Simulation time types.
//!
//! The engine's clock measures **physical** time on the (modeled) emulation
//! host in integer nanoseconds. Virtual Grid time is derived from physical
//! time through a [`crate::vclock::VirtualClock`] at the configured
//! simulation rate, mirroring the MicroGrid's `gettimeofday` virtualization.
//!
//! `SimTime` is an absolute instant (nanoseconds since simulation start);
//! `SimDuration` is a span. Both are thin wrappers over `u64` so they are
//! `Copy`, totally ordered, and hashable — suitable as event-queue keys.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An absolute instant on the simulation's physical clock.
///
/// Instants start at [`SimTime::ZERO`] when the simulation begins.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated physical time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds since the simulation epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since the simulation epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since the simulation epoch (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since the simulation epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the simulation epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Construct from seconds since the simulation epoch.
    ///
    /// # Panics
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time: {secs}");
        SimTime((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Span since an earlier instant, saturating to zero if `earlier` is
    /// actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration (`None` on overflow).
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds.
    ///
    /// # Panics
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale by a non-negative float, rounding to the nearest nanosecond.
    ///
    /// Used for simulation-rate conversions (virtual <-> physical).
    ///
    /// # Panics
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid scale factor: {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Divide by a positive float, rounding to the nearest nanosecond.
    ///
    /// # Panics
    /// Panics if `divisor` is not finite and strictly positive.
    pub fn div_f64(self, divisor: f64) -> SimDuration {
        assert!(
            divisor.is_finite() && divisor > 0.0,
            "invalid divisor: {divisor}"
        );
        SimDuration((self.0 as f64 / divisor).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked addition (`None` on overflow).
    pub fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(other.0).map(SimDuration)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(d.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(d.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(other.0).expect("negative SimDuration"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(other.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(other.0).expect("negative SimDuration"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        *self = *self - other;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(k).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl serde::Serialize for SimTime {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_u64(self.0)
    }
}

impl<'de> serde::Deserialize<'de> for SimTime {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        u64::deserialize(d).map(SimTime)
    }
}

impl serde::Serialize for SimDuration {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_u64(self.0)
    }
}

impl<'de> serde::Deserialize<'de> for SimDuration {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        u64::deserialize(d).map(SimDuration)
    }
}

fn format_ns(ns: u64) -> String {
    if ns >= NANOS_PER_SEC {
        format!("{:.6}s", ns as f64 / NANOS_PER_SEC as f64)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimDuration::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(SimDuration::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_nanos(100) + SimDuration::from_nanos(50);
        assert_eq!(t.as_nanos(), 150);
        assert_eq!((t - SimTime::from_nanos(100)).as_nanos(), 50);
        assert_eq!((t - SimDuration::from_nanos(150)), SimTime::ZERO);
        let d = SimDuration::from_millis(10) * 3;
        assert_eq!(d.as_millis(), 30);
        assert_eq!((d / 3).as_millis(), 10);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(b.saturating_since(a).as_nanos(), 10);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d.div_f64(4.0), SimDuration::from_secs_f64(2.5));
    }

    #[test]
    #[should_panic]
    fn negative_duration_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000000s");
    }
}
