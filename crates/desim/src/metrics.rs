//! Lightweight metrics registry: counters, gauges, and fixed-bucket
//! histograms, with no external dependencies.
//!
//! A [`Metrics`] registry is a cheap clonable handle (`Rc` inside — the
//! simulator is single-threaded) that instrumented subsystems write to
//! through the free functions in [`crate::obs`]. A [`MetricsSnapshot`]
//! freezes the registry into plain sorted vectors, which serialize with
//! serde, render as text, and [`MetricsSnapshot::merge`] across the many
//! simulations one benchmark figure runs.
//!
//! Naming convention: `"<category>.<metric>"`, e.g. `"sched.quanta"`,
//! `"net.drops"`, matching [`crate::event::Category`] names so the
//! per-category summary can group them.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

use serde::{Deserialize, Serialize};

/// Default histogram bucket upper bounds for durations, in nanoseconds:
/// one bucket per decade from 1 µs to 10 s.
pub const TIME_BOUNDS_NS: &[u64] = &[
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// Default histogram bucket upper bounds for sizes, in bytes: one bucket
/// per factor of 4 from 64 B to 1 MiB.
pub const SIZE_BOUNDS_BYTES: &[u64] = &[64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576];

#[derive(Clone, Debug)]
struct Histogram {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` buckets; the last counts values above every bound.
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram {
            bounds: bounds.to_vec(),
            buckets: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }
}

/// A pre-registered counter: a shared cell that adds with no name lookup.
///
/// Obtain one from [`Metrics::counter_handle`] (or
/// [`crate::obs::counter_handle`] inside a simulation) during setup, then
/// call [`Counter::add`] on the hot path. A handle detached from any
/// registry (outside a simulation) still works; its writes are simply
/// never snapshotted.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Rc<Cell<u64>>,
}

impl Counter {
    /// A counter attached to no registry (writes go nowhere observable).
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.set(self.cell.get() + n);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.get()
    }
}

/// A pre-registered histogram: records values with no name lookup.
///
/// Obtain one from [`Metrics::histogram_handle`] (or
/// [`crate::obs::histogram_handle`] inside a simulation) during setup.
/// Detached handles (outside a simulation) record into private storage
/// that is never snapshotted.
#[derive(Clone)]
pub struct HistogramHandle {
    hist: Rc<RefCell<Histogram>>,
}

impl HistogramHandle {
    /// A histogram attached to no registry.
    pub fn detached(bounds: &[u64]) -> Self {
        HistogramHandle {
            hist: Rc::new(RefCell::new(Histogram::new(bounds))),
        }
    }

    /// Record one value.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.hist.borrow_mut().observe(value);
    }
}

#[derive(Default)]
struct MetricsInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Rc<RefCell<Histogram>>>,
}

/// A registry of named counters, gauges, and histograms.
///
/// Cloning shares the underlying storage; a simulation and its
/// instrumented components all write to one registry.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Rc<RefCell<MetricsInner>>,
}

impl Metrics {
    /// Create an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Add `n` to the counter `name` (creating it at zero).
    pub fn count(&self, name: &str, n: u64) {
        let mut inner = self.inner.borrow_mut();
        match inner.counters.get(name) {
            Some(c) => c.add(n),
            None => {
                let c = Counter::default();
                c.add(n);
                inner.counters.insert(name.to_string(), c);
            }
        }
    }

    /// A shared handle to the counter `name` (creating it at zero). The
    /// handle adds directly to the counter's cell, skipping the per-call
    /// name lookup — use it from per-event hot paths.
    pub fn counter_handle(&self, name: &str) -> Counter {
        let mut inner = self.inner.borrow_mut();
        match inner.counters.get(name) {
            Some(c) => c.clone(),
            None => {
                let c = Counter::default();
                inner.counters.insert(name.to_string(), c.clone());
                c
            }
        }
    }

    /// Current value of counter `name` (zero if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .borrow()
            .counters
            .get(name)
            .map(Counter::get)
            .unwrap_or(0)
    }

    /// Set gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.inner
            .borrow_mut()
            .gauges
            .insert(name.to_string(), value);
    }

    /// Raise gauge `name` to `value` if `value` is larger (high-water mark).
    pub fn gauge_max(&self, name: &str, value: f64) {
        let mut inner = self.inner.borrow_mut();
        match inner.gauges.get_mut(name) {
            Some(g) => *g = g.max(value),
            None => {
                inner.gauges.insert(name.to_string(), value);
            }
        }
    }

    /// Current value of gauge `name` (`None` if never written).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.borrow().gauges.get(name).copied()
    }

    /// Record `value` into histogram `name`, creating it with `bounds` on
    /// first use (later calls ignore `bounds`).
    pub fn observe_with(&self, name: &str, value: u64, bounds: &[u64]) {
        let mut inner = self.inner.borrow_mut();
        match inner.histograms.get(name) {
            Some(h) => h.borrow_mut().observe(value),
            None => {
                let mut h = Histogram::new(bounds);
                h.observe(value);
                inner
                    .histograms
                    .insert(name.to_string(), Rc::new(RefCell::new(h)));
            }
        }
    }

    /// A shared handle to histogram `name`, creating it with `bounds` on
    /// first use (later calls ignore `bounds`). The handle records
    /// directly, skipping the per-call name lookup.
    pub fn histogram_handle(&self, name: &str, bounds: &[u64]) -> HistogramHandle {
        let mut inner = self.inner.borrow_mut();
        let hist = match inner.histograms.get(name) {
            Some(h) => h.clone(),
            None => {
                let h = Rc::new(RefCell::new(Histogram::new(bounds)));
                inner.histograms.insert(name.to_string(), h.clone());
                h
            }
        };
        HistogramHandle { hist }
    }

    /// Record a duration-like `value` (nanoseconds) into histogram `name`
    /// with the default decade bounds [`TIME_BOUNDS_NS`].
    pub fn observe(&self, name: &str, value: u64) {
        self.observe_with(name, value, TIME_BOUNDS_NS);
    }

    /// Drop every metric.
    pub fn clear(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.counters.clear();
        inner.gauges.clear();
        inner.histograms.clear();
    }

    /// Freeze the registry into a serializable snapshot. Entries are
    /// sorted by name, so equal registries produce identical snapshots.
    /// Counters and histograms that were registered (e.g. through a
    /// handle) but never written are omitted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.borrow();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .filter(|(_, v)| v.get() > 0)
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: inner
                .histograms
                .iter()
                .filter(|(_, h)| h.borrow().count > 0)
                .map(|(k, h)| {
                    let h = h.borrow();
                    HistogramSnapshot {
                        name: k.clone(),
                        bounds: h.bounds.clone(),
                        buckets: h.buckets.clone(),
                        count: h.count,
                        sum: h.sum,
                        min: if h.count == 0 { 0 } else { h.min },
                        max: h.max,
                    }
                })
                .collect(),
        }
    }
}

/// Frozen, serializable state of one histogram.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Ascending bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one more entry than `bounds`, the last being
    /// values above every bound.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Frozen, serializable state of a whole [`Metrics`] registry.
///
/// All entries are sorted by name (inherited from the registry's ordered
/// storage), making snapshots deterministic across runs.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Counter value by name (zero if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Fold `other` into `self`: counters add, gauges keep the maximum,
    /// histograms with identical bounds merge bucket-wise (mismatched
    /// bounds keep `self`'s buckets and only fold the scalar stats).
    ///
    /// Used by the bench runner to combine the registries of the several
    /// simulations that make up one figure.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            match self.counters.iter_mut().find(|(k, _)| k == name) {
                Some((_, mine)) => *mine += v,
                None => self.counters.push((name.clone(), *v)),
            }
        }
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, v) in &other.gauges {
            match self.gauges.iter_mut().find(|(k, _)| k == name) {
                Some((_, mine)) => *mine = mine.max(*v),
                None => self.gauges.push((name.clone(), *v)),
            }
        }
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        for h in &other.histograms {
            match self.histograms.iter_mut().find(|m| m.name == h.name) {
                Some(mine) => {
                    if mine.bounds == h.bounds {
                        for (b, o) in mine.buckets.iter_mut().zip(&h.buckets) {
                            *b += o;
                        }
                    }
                    if h.count > 0 {
                        mine.min = if mine.count == 0 {
                            h.min
                        } else {
                            mine.min.min(h.min)
                        };
                        mine.max = mine.max.max(h.max);
                    }
                    mine.count += h.count;
                    mine.sum = mine.sum.saturating_add(h.sum);
                }
                None => self.histograms.push(h.clone()),
            }
        }
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Render as an indented, human-readable text block, grouped by the
    /// `"<category>."` prefix of each metric name. Used by the `mgrid`
    /// CLI and appended to report tables.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("  (no metrics recorded)\n");
            return out;
        }
        let mut last_prefix = String::new();
        let prefix_of = |name: &str| name.split('.').next().unwrap_or("").to_string();
        for (name, v) in &self.counters {
            let p = prefix_of(name);
            if p != last_prefix {
                let _ = writeln!(out, "  [{p}]");
                last_prefix = p;
            }
            let _ = writeln!(out, "    {name:<32} {v}");
        }
        for (name, v) in &self.gauges {
            let p = prefix_of(name);
            if p != last_prefix {
                let _ = writeln!(out, "  [{p}]");
                last_prefix = p;
            }
            let _ = writeln!(out, "    {name:<32} {v:.3}");
        }
        for h in &self.histograms {
            let p = prefix_of(&h.name);
            if p != last_prefix {
                let _ = writeln!(out, "  [{p}]");
                last_prefix = p.clone();
            }
            let _ = writeln!(
                out,
                "    {:<32} count={} mean={:.1} min={} max={}",
                h.name,
                h.count,
                h.mean(),
                h.min,
                h.max
            );
            let mut cumulative = String::from("      buckets:");
            for (i, c) in h.buckets.iter().enumerate() {
                let label = if i < h.bounds.len() {
                    format!("<={}", h.bounds[i])
                } else {
                    "inf".to_string()
                };
                let _ = write!(cumulative, " {label}:{c}");
            }
            let _ = writeln!(out, "{cumulative}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.count("net.drops", 1);
        m.count("net.drops", 2);
        assert_eq!(m.counter("net.drops"), 3);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn gauges_set_and_max() {
        let m = Metrics::new();
        m.gauge_set("net.rate", 2.5);
        m.gauge_set("net.rate", 1.5);
        assert_eq!(m.gauge("net.rate"), Some(1.5));
        m.gauge_max("net.peak", 10.0);
        m.gauge_max("net.peak", 4.0);
        assert_eq!(m.gauge("net.peak"), Some(10.0));
        assert_eq!(m.gauge("absent"), None);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let m = Metrics::new();
        for v in [500, 5_000, 5_000_000, u64::MAX / 2] {
            m.observe("sched.quantum_ns", v);
        }
        let snap = m.snapshot();
        let h = &snap.histograms[0];
        assert_eq!(h.name, "sched.quantum_ns");
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 500);
        assert_eq!(h.buckets[0], 1); // 500 <= 1_000
        assert_eq!(h.buckets[1], 1); // 5_000 <= 10_000
        assert_eq!(h.buckets[4], 1); // 5_000_000 <= 10_000_000
        assert_eq!(*h.buckets.last().unwrap(), 1); // overflow bucket
    }

    #[test]
    fn snapshot_ordering_is_deterministic() {
        let a = Metrics::new();
        a.count("z.last", 1);
        a.count("a.first", 1);
        a.observe("m.mid", 5);
        let b = Metrics::new();
        b.observe("m.mid", 5);
        b.count("a.first", 1);
        b.count("z.last", 1);
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.snapshot().counters[0].0, "a.first");
    }

    #[test]
    fn merge_adds_and_maxes() {
        let a = Metrics::new();
        a.count("net.drops", 2);
        a.gauge_max("net.peak", 5.0);
        a.observe_with("h", 10, &[100]);
        let b = Metrics::new();
        b.count("net.drops", 3);
        b.count("sched.quanta", 7);
        b.gauge_max("net.peak", 9.0);
        b.observe_with("h", 1_000, &[100]);

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("net.drops"), 5);
        assert_eq!(merged.counter("sched.quanta"), 7);
        assert_eq!(merged.gauges[0].1, 9.0);
        let h = &merged.histograms[0];
        assert_eq!(h.count, 2);
        assert_eq!(h.buckets, vec![1, 1]);
        assert_eq!((h.min, h.max), (10, 1_000));
    }

    #[test]
    fn snapshot_serializes() {
        let m = Metrics::new();
        m.count("mem.denials", 1);
        m.observe_with("net.queue", 42, &[64, 256]);
        let snap = m.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn table_groups_by_prefix() {
        let m = Metrics::new();
        m.count("net.drops", 1);
        m.count("sched.quanta", 2);
        let t = m.snapshot().to_table();
        assert!(t.contains("[net]"));
        assert!(t.contains("[sched]"));
        assert!(t.contains("net.drops"));
    }
}
