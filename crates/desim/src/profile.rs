//! Virtual-time profiler and critical-path analyzer over span
//! snapshots.
//!
//! Both consumers are pure functions of a [`SpanSnapshot`]: run them on
//! the same snapshot and the rendered tables are byte-identical, which
//! is what the CI determinism lanes diff. All arithmetic is integer
//! nanoseconds — no floats are formatted anywhere.
//!
//! - [`Profile`] answers *where did the virtual seconds go*: completed
//!   span time bucketed per `(track, lane)` into virtual CPU
//!   ([`Category::Sched`]), network wait ([`Category::Net`] /
//!   [`Category::Vsock`]), collective wait ([`Category::Mpi`]), and
//!   other; plus a top-down per-operation attribution table in the
//!   style of an HPC profiler.
//! - [`CriticalPath`] answers *which chain made the run late*: the
//!   longest dependency chain through the span/flow DAG, where a span
//!   depends on its lane predecessor (program order), on flow producers
//!   (message send → receive, collective rendezvous), and on its parent.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::Category;
use crate::span::{SpanId, SpanSnapshot};

/// Format integer nanoseconds as milliseconds with microsecond
/// precision (`"12.345"`), byte-stable by construction.
pub fn fmt_ms(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000_000, (ns / 1_000) % 1_000)
}

/// Per-`(track, lane)` virtual-time buckets, in nanoseconds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LaneRow {
    /// Virtual host row.
    pub track: String,
    /// Process/daemon row within the track.
    pub lane: String,
    /// Virtual CPU time ([`Category::Sched`] spans).
    pub cpu_ns: u64,
    /// Network wait ([`Category::Net`] and [`Category::Vsock`] spans).
    pub net_ns: u64,
    /// Collective/barrier wait ([`Category::Mpi`] spans).
    pub coll_ns: u64,
    /// Everything else.
    pub other_ns: u64,
}

impl LaneRow {
    /// Sum of all buckets.
    pub fn total_ns(&self) -> u64 {
        self.cpu_ns + self.net_ns + self.coll_ns + self.other_ns
    }
}

/// Per-operation attribution row (grouped by category + span name).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpRow {
    /// Span category.
    pub cat: Category,
    /// Span name.
    pub name: &'static str,
    /// Number of completed spans.
    pub count: u64,
    /// Total virtual time across them, nanoseconds.
    pub total_ns: u64,
}

/// Deterministic virtual-time attribution over one span snapshot.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Profile {
    /// Per-lane bucket rows, sorted by `(track, lane)`.
    pub lanes: Vec<LaneRow>,
    /// Per-operation rows, sorted by total time descending (ties by
    /// category then name).
    pub ops: Vec<OpRow>,
    /// Grand total of completed span time, nanoseconds.
    pub total_ns: u64,
}

impl Profile {
    /// Build the attribution tables from a snapshot. Open spans (no
    /// `end`) contribute nothing.
    pub fn from_snapshot(snap: &SpanSnapshot) -> Profile {
        let mut lanes: BTreeMap<(String, String), LaneRow> = BTreeMap::new();
        let mut ops: BTreeMap<(Category, &'static str), OpRow> = BTreeMap::new();
        let mut total = 0u64;
        for s in &snap.spans {
            if s.end.is_none() {
                continue;
            }
            let d = s.dur_ns();
            total += d;
            let row = lanes
                .entry((s.track.to_string(), s.lane.to_string()))
                .or_insert_with(|| LaneRow {
                    track: s.track.to_string(),
                    lane: s.lane.to_string(),
                    ..LaneRow::default()
                });
            match s.cat {
                Category::Sched => row.cpu_ns += d,
                Category::Net | Category::Vsock => row.net_ns += d,
                Category::Mpi => row.coll_ns += d,
                Category::Mem | Category::Fault => row.other_ns += d,
            }
            let op = ops.entry((s.cat, s.name)).or_insert_with(|| OpRow {
                cat: s.cat,
                name: s.name,
                count: 0,
                total_ns: 0,
            });
            op.count += 1;
            op.total_ns += d;
        }
        let mut ops: Vec<OpRow> = ops.into_values().collect();
        ops.sort_by(|a, b| {
            b.total_ns
                .cmp(&a.total_ns)
                .then(a.cat.cmp(&b.cat))
                .then(a.name.cmp(b.name))
        });
        Profile {
            lanes: lanes.into_values().collect(),
            ops,
            total_ns: total,
        }
    }

    /// Render both tables as an indented text block (byte-stable).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        if self.total_ns == 0 {
            out.push_str("  (no completed spans)\n");
            return out;
        }
        let _ = writeln!(
            out,
            "  {:<28} {:>12} {:>12} {:>12} {:>12}",
            "track/lane", "cpu(ms)", "net(ms)", "coll(ms)", "total(ms)"
        );
        for r in &self.lanes {
            let _ = writeln!(
                out,
                "  {:<28} {:>12} {:>12} {:>12} {:>12}",
                format!("{}/{}", r.track, r.lane),
                fmt_ms(r.cpu_ns),
                fmt_ms(r.net_ns),
                fmt_ms(r.coll_ns),
                fmt_ms(r.total_ns()),
            );
        }
        let _ = writeln!(
            out,
            "  {:<28} {:>8} {:>12} {:>7}",
            "operation", "count", "total(ms)", "share"
        );
        for op in &self.ops {
            // Integer permille of the grand total, rendered as "42.7%".
            let p = (op.total_ns as u128 * 1000 / self.total_ns as u128) as u64;
            let _ = writeln!(
                out,
                "  {:<28} {:>8} {:>12} {:>6}.{}%",
                format!("{}.{}", op.cat.name(), op.name),
                op.count,
                fmt_ms(op.total_ns),
                p / 10,
                p % 10,
            );
        }
        out
    }
}

/// One hop on the critical path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hop {
    /// The span at this hop.
    pub id: SpanId,
    /// Virtual host row.
    pub track: String,
    /// Process/daemon row.
    pub lane: String,
    /// Span name.
    pub name: &'static str,
    /// Span detail.
    pub detail: String,
    /// Span begin, nanoseconds.
    pub begin_ns: u64,
    /// This hop's contribution to the path total, nanoseconds. Hop
    /// contributions always sum to [`CriticalPath::total_ns`]; a send
    /// span entered mid-flight (its ack tail is off the causal path)
    /// can contribute less than its own duration.
    pub contrib_ns: u64,
    /// How this hop depends on the previous one: `"start"` for the
    /// first hop, then `"flow"`, `"lane"`, or `"parent"`.
    pub via: &'static str,
    /// Number of consecutive same-operation spans coalesced into this
    /// hop. A saturated lane (say, back-to-back scheduler quanta on the
    /// busiest host) collapses to one row with the repeat count instead
    /// of hundreds of identical rows; `id`, `begin_ns`, and `detail`
    /// are the first span's, `contrib_ns` is the group total.
    pub count: u64,
}

/// The longest dependency chain through a span/flow DAG.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CriticalPath {
    /// Hops, chain start first.
    pub hops: Vec<Hop>,
    /// Sum of hop durations, nanoseconds.
    pub total_ns: u64,
}

/// Compute the critical path of a snapshot.
///
/// Only completed spans participate, and [`Category::Sched`] spans are
/// left out of the DAG entirely: scheduler quanta are the rate
/// controller's wall slices, granted whether or not the process makes
/// progress, so a quantum lane is saturated end-to-end by construction
/// and would mask the application-level dependency chain (quanta still
/// count in [`Profile`] and render in the Perfetto export). The
/// analyzer builds a DAG over the remaining span *boundary points* —
/// two nodes per span, its begin and its end — with four edge kinds:
///
/// - **work** `begin(s) → end(s)`, weight `dur(s)`: the span's own
///   elapsed virtual time — except for spans that consume a resolved
///   flow (a receive, a root collective), whose weight is 0: their
///   completion is *caused* by the producer's message, so a blocked
///   receiver's wait must ride the flow edge, not masquerade as local
///   progress (otherwise a rank that waits its whole life forms a
///   saturated lane chain that drowns out the real cross-host path);
/// - **lane** `end(p) → begin(s)`, weight 0, where `p` is the latest
///   span on `s`'s `(track, lane)` ending at or before `s` begins
///   (program order; the idle gap between them is slack, not cost);
/// - **parent** `begin(p) → begin(s)`, weight 0, for `s`'s parent link;
/// - **flow** `begin(a) → end(s)`, weight `end(s) − begin(a)`, for a
///   resolved [`crate::span::FlowEdge`] `a → s`: the transfer occupies
///   the wall interval from the producer *starting* to the consumer
///   *unblocking*. Anchoring at the producer's begin keeps the graph
///   acyclic even though a send span's ack tail outlives the receive.
///
/// The longest path to any end node is the critical path. All
/// tie-breaks are deterministic: higher cost first, then edge kind
/// (flow, work, lane, parent), then smaller span id.
pub fn critical_path(snap: &SpanSnapshot) -> CriticalPath {
    // Completed non-scheduler spans, indexed into `snap.spans`.
    let comp: Vec<usize> = (0..snap.spans.len())
        .filter(|&i| snap.spans[i].end.is_some() && snap.spans[i].cat != Category::Sched)
        .collect();
    if comp.is_empty() {
        return CriticalPath::default();
    }
    let n = comp.len();
    // Map a span id to its `comp` index.
    let mut comp_of: BTreeMap<SpanId, usize> = BTreeMap::new();
    for (c, &i) in comp.iter().enumerate() {
        comp_of.insert(snap.spans[i].id, c);
    }
    let begin_ns = |c: usize| snap.spans[comp[c]].begin.as_nanos();
    let end_ns = |c: usize| snap.spans[comp[c]].end.unwrap().as_nanos();
    let span_id = |c: usize| snap.spans[comp[c]].id;

    // Lane predecessor per comp index: latest span on the same
    // (track, lane) with end <= begin; an equal-instant predecessor
    // must have the smaller id (same-instant causality follows
    // creation order, which also keeps the node graph acyclic).
    let mut by_lane: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (c, &ci) in comp.iter().enumerate() {
        let s = &snap.spans[ci];
        by_lane
            .entry((s.track.as_ref(), s.lane.as_ref()))
            .or_default()
            .push(c);
    }
    for lane in by_lane.values_mut() {
        lane.sort_by_key(|&c| (end_ns(c), span_id(c)));
    }
    let mut lane_pred: Vec<Option<usize>> = vec![None; n];
    for c in 0..n {
        let s = &snap.spans[comp[c]];
        let lane = &by_lane[&(s.track.as_ref(), s.lane.as_ref())];
        let cut = lane.partition_point(|&p| end_ns(p) <= begin_ns(c));
        for &p in lane[..cut].iter().rev() {
            let ok = p != c && (end_ns(p) < begin_ns(c) || span_id(p) < span_id(c));
            if ok {
                lane_pred[c] = Some(p);
                break;
            }
        }
    }
    // Flow producers per consumer comp index.
    let mut flows_to: Vec<Vec<usize>> = vec![Vec::new(); n];
    for f in &snap.flows {
        if let (Some(&a), Some(&b)) = (comp_of.get(&f.from), comp_of.get(&f.to)) {
            if begin_ns(a) < end_ns(b) || (begin_ns(a) == end_ns(b) && span_id(a) < span_id(b)) {
                flows_to[b].push(a);
            }
        }
    }

    // Node c*2 is span c's begin, c*2+1 its end. Topological order:
    // (time, span id, begin-before-end); every edge above respects it.
    let node_time = |v: usize| {
        if v.is_multiple_of(2) {
            begin_ns(v / 2)
        } else {
            end_ns(v / 2)
        }
    };
    let mut order: Vec<usize> = (0..2 * n).collect();
    order.sort_by_key(|&v| (node_time(v), span_id(v / 2), v % 2));
    let mut pos: Vec<usize> = vec![0; 2 * n];
    for (p, &v) in order.iter().enumerate() {
        pos[v] = p;
    }

    // Longest-path DP. `via` is the kind of the chosen in-edge.
    let mut cost: Vec<u64> = vec![0; 2 * n];
    let mut pred: Vec<Option<usize>> = vec![None; 2 * n];
    let mut via: Vec<&'static str> = vec!["start"; 2 * n];
    const PRIO: [&str; 4] = ["flow", "work", "lane", "parent"];
    let prio = |k: &str| PRIO.iter().position(|p| *p == k).unwrap() as u8;
    for &v in &order {
        let c = v / 2;
        // (candidate pred node, kind, weight)
        let mut cands: Vec<(usize, &'static str, u64)> = Vec::new();
        if v % 2 == 0 {
            if let Some(p) = lane_pred[c] {
                cands.push((p * 2 + 1, "lane", 0));
            }
            if let Some(pid) = snap.spans[comp[c]].parent {
                if let Some(&p) = comp_of.get(&pid) {
                    cands.push((p * 2, "parent", 0));
                }
            }
        } else {
            // A flow consumer's end is caused by the message, not by
            // local elapsed time: zero-weight work edge (see above).
            let work_w = if flows_to[c].is_empty() {
                end_ns(c) - begin_ns(c)
            } else {
                0
            };
            cands.push((v - 1, "work", work_w));
            for &a in &flows_to[c] {
                cands.push((a * 2, "flow", end_ns(c) - begin_ns(a)));
            }
        }
        for (u, kind, w) in cands {
            if pos[u] >= pos[v] {
                continue; // defensive: ignore any order-violating edge
            }
            let cand_cost = cost[u] + w;
            // Max cost, then edge-kind priority, then smaller span id.
            let better = match pred[v] {
                None => true,
                Some(p) => {
                    let cur = (
                        cost[v],
                        std::cmp::Reverse(prio(via[v])),
                        std::cmp::Reverse(span_id(p / 2)),
                    );
                    (
                        cand_cost,
                        std::cmp::Reverse(prio(kind)),
                        std::cmp::Reverse(span_id(u / 2)),
                    ) > cur
                }
            };
            if better {
                cost[v] = cand_cost;
                pred[v] = Some(u);
                via[v] = kind;
            }
        }
    }

    // Terminus: the costliest end node, ties to the smaller span id.
    let mut term = 1usize;
    for c in 0..n {
        let v = c * 2 + 1;
        if cost[v] > cost[term] || (cost[v] == cost[term] && span_id(c) < span_id(term / 2)) {
            term = v;
        }
    }
    let total = cost[term];

    // Walk back, then group consecutive nodes of one span into a hop.
    let mut nodes = Vec::new();
    let mut cur = Some(term);
    while let Some(v) = cur {
        nodes.push(v);
        cur = pred[v];
    }
    nodes.reverse();
    let mut hops: Vec<Hop> = Vec::new();
    let mut entry_cost = 0u64;
    let mut entry_via: &'static str = "start";
    for (k, &v) in nodes.iter().enumerate() {
        let c = v / 2;
        let first_of_span = k == 0 || nodes[k - 1] / 2 != c;
        if first_of_span {
            entry_via = via[v];
            entry_cost = pred[v].map_or(0, |u| cost[u]);
        }
        let last_of_span = k + 1 == nodes.len() || nodes[k + 1] / 2 != c;
        if last_of_span {
            let s = &snap.spans[comp[c]];
            let via = if hops.is_empty() { "start" } else { entry_via };
            let contrib = cost[v] - entry_cost;
            // Coalesce a lane-chained run of the same operation into one
            // hop with a repeat count.
            match hops.last_mut() {
                Some(prev)
                    if via == "lane"
                        && prev.track == *s.track
                        && prev.lane == *s.lane
                        && prev.name == s.name =>
                {
                    prev.contrib_ns += contrib;
                    prev.count += 1;
                }
                _ => hops.push(Hop {
                    id: s.id,
                    track: s.track.to_string(),
                    lane: s.lane.to_string(),
                    name: s.name,
                    detail: s.detail.to_string(),
                    begin_ns: s.begin.as_nanos(),
                    contrib_ns: contrib,
                    via,
                    count: 1,
                }),
            }
        }
    }
    CriticalPath {
        hops,
        total_ns: total,
    }
}

impl CriticalPath {
    /// Render the chain as an indented text block (byte-stable).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        if self.hops.is_empty() {
            out.push_str("  (no completed spans)\n");
            return out;
        }
        let _ = writeln!(
            out,
            "  {} hops, {} ms on the path",
            self.hops.len(),
            fmt_ms(self.total_ns)
        );
        let _ = writeln!(
            out,
            "  {:>4} {:>12} {:>12} {:<7} span",
            "#", "begin(ms)", "contrib(ms)", "via"
        );
        for (i, h) in self.hops.iter().enumerate() {
            let mut where_ = format!("{}/{} {}", h.track, h.lane, h.name);
            if h.count > 1 {
                let _ = write!(where_, " x{}", h.count);
            } else if !h.detail.is_empty() {
                let _ = write!(where_, " [{}]", h.detail);
            }
            let _ = writeln!(
                out,
                "  {:>4} {:>12} {:>12} {:<7} {}",
                i + 1,
                fmt_ms(h.begin_ns),
                fmt_ms(h.contrib_ns),
                h.via,
                where_,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanStore;
    use crate::time::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    /// Two hosts: h0 computes (0..100), sends a message (100..120)
    /// received by h1 (wait 80..120), which then computes (120..300).
    fn two_host_snapshot() -> SpanSnapshot {
        let st = SpanStore::new();
        st.set_enabled(true);
        let c0 = st.begin(
            t(0),
            None,
            Category::Sched,
            "quantum",
            "h0",
            "p0",
            String::new(),
        );
        st.end(t(100), c0);
        let rx = st.begin(
            t(80),
            None,
            Category::Vsock,
            "vsock_recv",
            "h1",
            "p1",
            String::new(),
        );
        let tx = st.begin(
            t(100),
            None,
            Category::Vsock,
            "vsock_send",
            "h0",
            "p0",
            String::new(),
        );
        st.end(t(120), tx);
        st.flow_out("msg", "h0", "h1", tx);
        st.flow_in("msg", "h0", "h1", rx);
        st.end(t(120), rx);
        let c1 = st.begin(
            t(120),
            None,
            Category::Sched,
            "quantum",
            "h1",
            "p1",
            String::new(),
        );
        st.end(t(300), c1);
        st.snapshot()
    }

    #[test]
    fn profile_buckets_by_category_and_sorts_ops() {
        let p = Profile::from_snapshot(&two_host_snapshot());
        assert_eq!(p.lanes.len(), 2);
        assert_eq!(p.lanes[0].track, "h0");
        assert_eq!(p.lanes[0].cpu_ns, 100);
        assert_eq!(p.lanes[0].net_ns, 20);
        assert_eq!(p.lanes[1].cpu_ns, 180);
        assert_eq!(p.lanes[1].net_ns, 40);
        assert_eq!(p.total_ns, 340);
        assert_eq!(p.ops[0].name, "quantum"); // 280 ns dominates
        assert_eq!(p.ops[0].count, 2);
        // Rendering twice is byte-identical.
        assert_eq!(
            p.to_table(),
            Profile::from_snapshot(&two_host_snapshot()).to_table()
        );
    }

    #[test]
    fn critical_path_crosses_the_flow_edge() {
        let cp = critical_path(&two_host_snapshot());
        let hops: Vec<_> = cp
            .hops
            .iter()
            .map(|h| (h.name, h.via, h.contrib_ns))
            .collect();
        // Scheduler quanta stay out of the DAG; the path is the message
        // dependency: the send starts the transfer, the flow edge covers
        // send begin → recv end (the receiver's wait rides the flow, not
        // its own zero-weight work edge).
        assert_eq!(
            hops,
            vec![("vsock_send", "start", 0), ("vsock_recv", "flow", 20)]
        );
        assert_eq!(cp.total_ns, 20);
        assert_eq!(
            cp.hops.iter().map(|h| h.contrib_ns).sum::<u64>(),
            cp.total_ns
        );
        assert_eq!(
            cp.to_table(),
            critical_path(&two_host_snapshot()).to_table()
        );
    }

    #[test]
    fn critical_path_without_flows_is_the_longest_lane_chain() {
        let st = SpanStore::new();
        st.set_enabled(true);
        // Lane A: 10 + 10 with an idle gap; lane B: one 25-ns span.
        // B wins — the gap is slack, not cost.
        for (b, e) in [(0u64, 10u64), (20, 30)] {
            let id = st.begin(
                t(b),
                None,
                Category::Vsock,
                "vsock_send",
                "a",
                "p",
                String::new(),
            );
            st.end(t(e), id);
        }
        let id = st.begin(
            t(5),
            None,
            Category::Vsock,
            "vsock_send",
            "b",
            "p",
            String::new(),
        );
        st.end(t(30), id);
        let cp = critical_path(&st.snapshot());
        assert_eq!(cp.total_ns, 25);
        assert_eq!(cp.hops.len(), 1);
        assert_eq!(cp.hops[0].track, "b");
        assert_eq!(cp.hops[0].count, 1);
    }

    #[test]
    fn consecutive_lane_hops_coalesce_with_a_count() {
        let st = SpanStore::new();
        st.set_enabled(true);
        for (b, e) in [(0u64, 10u64), (10, 20), (20, 35)] {
            let id = st.begin(
                t(b),
                None,
                Category::Vsock,
                "vsock_send",
                "a",
                "p",
                String::new(),
            );
            st.end(t(e), id);
        }
        let cp = critical_path(&st.snapshot());
        assert_eq!(cp.total_ns, 35);
        assert_eq!(cp.hops.len(), 1);
        assert_eq!(cp.hops[0].count, 3);
        assert_eq!(cp.hops[0].contrib_ns, 35);
        assert!(cp.to_table().contains("vsock_send x3"));
    }

    #[test]
    fn empty_snapshot_yields_empty_outputs() {
        let snap = SpanSnapshot::default();
        assert_eq!(Profile::from_snapshot(&snap).total_ns, 0);
        assert!(critical_path(&snap).hops.is_empty());
        assert!(Profile::from_snapshot(&snap)
            .to_table()
            .contains("no completed spans"));
    }
}
