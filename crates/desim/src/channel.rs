//! Message channels between simulation tasks.
//!
//! All channels are single-threaded (the whole simulation runs on one
//! thread) but fully async: receivers park until a message or disconnect
//! arrives, senders on a bounded channel park until capacity frees up.
//! Delivery is FIFO per channel.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// Error returned when sending on a channel with no live receiver.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned when receiving on an empty channel with no live senders.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "channel closed")
    }
}

impl std::error::Error for RecvError {}

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiver dropped")
    }
}

struct ChannelState<T> {
    queue: VecDeque<T>,
    capacity: Option<usize>,
    senders: usize,
    receiver_alive: bool,
    recv_wakers: VecDeque<Waker>,
    send_wakers: VecDeque<Waker>,
}

impl<T> ChannelState<T> {
    fn wake_one_receiver(&mut self) {
        if let Some(w) = self.recv_wakers.pop_front() {
            w.wake();
        }
    }
    fn wake_one_sender(&mut self) {
        if let Some(w) = self.send_wakers.pop_front() {
            w.wake();
        }
    }
    fn wake_all(&mut self) {
        for w in self.recv_wakers.drain(..) {
            w.wake();
        }
        for w in self.send_wakers.drain(..) {
            w.wake();
        }
    }
}

/// Create an unbounded FIFO channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    make_channel(None)
}

/// Create a bounded FIFO channel; `send` parks when `capacity` messages are
/// queued.
///
/// # Panics
/// Panics if `capacity == 0`.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "bounded channel capacity must be > 0");
    make_channel(Some(capacity))
}

fn make_channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let state = Rc::new(RefCell::new(ChannelState {
        queue: VecDeque::new(),
        capacity,
        senders: 1,
        receiver_alive: true,
        recv_wakers: VecDeque::new(),
        send_wakers: VecDeque::new(),
    }));
    (
        Sender {
            state: state.clone(),
        },
        Receiver { state },
    )
}

/// Sending half of a channel. Cloneable (multi-producer).
pub struct Sender<T> {
    state: Rc<RefCell<ChannelState<T>>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.state.borrow_mut().senders += 1;
        Sender {
            state: self.state.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut s = self.state.borrow_mut();
        s.senders -= 1;
        if s.senders == 0 {
            s.wake_all();
        }
    }
}

impl<T> Sender<T> {
    /// Send without waiting. On a full bounded channel this enqueues anyway
    /// (use [`Sender::send`] to respect backpressure).
    pub fn send_now(&self, value: T) -> Result<(), SendError<T>> {
        let mut s = self.state.borrow_mut();
        if !s.receiver_alive {
            return Err(SendError(value));
        }
        s.queue.push_back(value);
        s.wake_one_receiver();
        Ok(())
    }

    /// Send, parking until the channel has capacity.
    pub async fn send(&self, value: T) -> Result<(), SendError<T>> {
        SendFuture {
            state: &self.state,
            value: Some(value),
        }
        .await
    }

    /// True if the receiving half has been dropped.
    pub fn is_closed(&self) -> bool {
        !self.state.borrow().receiver_alive
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.state.borrow().queue.len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct SendFuture<'a, T> {
    state: &'a Rc<RefCell<ChannelState<T>>>,
    value: Option<T>,
}

impl<T> Unpin for SendFuture<'_, T> {}

impl<T> Future for SendFuture<'_, T> {
    type Output = Result<(), SendError<T>>;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut s = self.state.borrow_mut();
        if !s.receiver_alive {
            let v = self.value.take().expect("polled after completion");
            return Poll::Ready(Err(SendError(v)));
        }
        let full = s.capacity.is_some_and(|c| s.queue.len() >= c);
        if full {
            s.send_wakers.push_back(cx.waker().clone());
            Poll::Pending
        } else {
            let v = self.value.take().expect("polled after completion");
            s.queue.push_back(v);
            s.wake_one_receiver();
            Poll::Ready(Ok(()))
        }
    }
}

/// Receiving half of a channel.
pub struct Receiver<T> {
    state: Rc<RefCell<ChannelState<T>>>,
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut s = self.state.borrow_mut();
        s.receiver_alive = false;
        s.queue.clear();
        s.wake_all();
    }
}

impl<T> Receiver<T> {
    /// Receive the next message, parking until one arrives. Errors when the
    /// channel is empty and every sender has been dropped.
    pub async fn recv(&self) -> Result<T, RecvError> {
        RecvFuture { state: &self.state }.await
    }

    /// Receive without waiting; `None` if the queue is empty.
    pub fn try_recv(&self) -> Option<T> {
        let mut s = self.state.borrow_mut();
        let v = s.queue.pop_front();
        if v.is_some() {
            s.wake_one_sender();
        }
        v
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.state.borrow().queue.len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct RecvFuture<'a, T> {
    state: &'a Rc<RefCell<ChannelState<T>>>,
}

impl<T> Future for RecvFuture<'_, T> {
    type Output = Result<T, RecvError>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut s = self.state.borrow_mut();
        if let Some(v) = s.queue.pop_front() {
            s.wake_one_sender();
            return Poll::Ready(Ok(v));
        }
        if s.senders == 0 {
            return Poll::Ready(Err(RecvError));
        }
        s.recv_wakers.push_back(cx.waker().clone());
        Poll::Pending
    }
}

// ---------------------------------------------------------------------------
// Oneshot
// ---------------------------------------------------------------------------

struct OneshotState<T> {
    value: Option<T>,
    sender_alive: bool,
    waker: Option<Waker>,
}

/// Create a oneshot channel: a single value handed from one task to another.
pub fn oneshot<T>() -> (OneshotSender<T>, OneshotReceiver<T>) {
    let state = Rc::new(RefCell::new(OneshotState {
        value: None,
        sender_alive: true,
        waker: None,
    }));
    (
        OneshotSender {
            state: state.clone(),
        },
        OneshotReceiver { state },
    )
}

/// Sending half of a oneshot channel.
pub struct OneshotSender<T> {
    state: Rc<RefCell<OneshotState<T>>>,
}

impl<T> OneshotSender<T> {
    /// Deliver the value, waking the receiver.
    pub fn send(self, value: T) {
        let mut s = self.state.borrow_mut();
        s.value = Some(value);
        if let Some(w) = s.waker.take() {
            w.wake();
        }
        // Keep sender_alive true: a value is present, so recv will succeed.
    }
}

impl<T> Drop for OneshotSender<T> {
    fn drop(&mut self) {
        let mut s = self.state.borrow_mut();
        s.sender_alive = false;
        if let Some(w) = s.waker.take() {
            w.wake();
        }
    }
}

/// Receiving half of a oneshot channel.
pub struct OneshotReceiver<T> {
    state: Rc<RefCell<OneshotState<T>>>,
}

impl<T> OneshotReceiver<T> {
    /// Wait for the value. Errors if the sender is dropped without sending.
    pub async fn recv(self) -> Result<T, RecvError> {
        OneshotRecvFuture { state: self.state }.await
    }
}

struct OneshotRecvFuture<T> {
    state: Rc<RefCell<OneshotState<T>>>,
}

impl<T> Future for OneshotRecvFuture<T> {
    type Output = Result<T, RecvError>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut s = self.state.borrow_mut();
        if let Some(v) = s.value.take() {
            return Poll::Ready(Ok(v));
        }
        if !s.sender_alive {
            return Poll::Ready(Err(RecvError));
        }
        s.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{sleep, spawn, Simulation};
    use crate::time::SimDuration;

    #[test]
    fn fifo_order_preserved() {
        let mut sim = Simulation::new(0);
        sim.spawn(async {
            let (tx, rx) = channel();
            spawn(async move {
                for i in 0..10 {
                    tx.send(i).await.unwrap();
                    sleep(SimDuration::from_micros(1)).await;
                }
            });
            for i in 0..10 {
                assert_eq!(rx.recv().await.unwrap(), i);
            }
        });
        sim.run_to_completion();
    }

    #[test]
    fn recv_parks_until_send() {
        let mut sim = Simulation::new(0);
        let t = sim.block_on(async {
            let (tx, rx) = channel();
            spawn(async move {
                sleep(SimDuration::from_millis(3)).await;
                tx.send(7u32).await.unwrap();
            });
            let v = rx.recv().await.unwrap();
            assert_eq!(v, 7);
            crate::executor::now()
        });
        assert_eq!(t.as_millis(), 3);
    }

    #[test]
    fn bounded_backpressure() {
        let mut sim = Simulation::new(0);
        sim.spawn(async {
            let (tx, rx) = bounded(2);
            let producer = spawn(async move {
                for i in 0..5u32 {
                    tx.send(i).await.unwrap();
                }
                crate::executor::now()
            });
            // Drain slowly: producer must stall on capacity.
            sleep(SimDuration::from_millis(10)).await;
            for _ in 0..5 {
                rx.recv().await.unwrap();
                sleep(SimDuration::from_millis(1)).await;
            }
            let done_at = producer.await;
            assert!(done_at.as_millis() >= 10, "producer finished too early");
        });
        sim.run_to_completion();
    }

    #[test]
    fn recv_errors_when_senders_gone() {
        let mut sim = Simulation::new(0);
        sim.spawn(async {
            let (tx, rx) = channel::<u8>();
            tx.send_now(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv().await.unwrap(), 1);
            assert_eq!(rx.recv().await, Err(RecvError));
        });
        sim.run_to_completion();
    }

    #[test]
    fn send_errors_when_receiver_gone() {
        let mut sim = Simulation::new(0);
        sim.spawn(async {
            let (tx, rx) = channel::<u8>();
            drop(rx);
            assert!(tx.send(1).await.is_err());
            assert!(tx.is_closed());
        });
        sim.run_to_completion();
    }

    #[test]
    fn multi_producer_counts() {
        let mut sim = Simulation::new(0);
        sim.spawn(async {
            let (tx, rx) = channel();
            for p in 0..4u32 {
                let tx = tx.clone();
                spawn(async move {
                    for i in 0..25u32 {
                        tx.send(p * 100 + i).await.unwrap();
                    }
                });
            }
            drop(tx);
            let mut n = 0;
            while rx.recv().await.is_ok() {
                n += 1;
            }
            assert_eq!(n, 100);
        });
        sim.run_to_completion();
    }

    #[test]
    fn oneshot_delivers() {
        let mut sim = Simulation::new(0);
        sim.spawn(async {
            let (tx, rx) = oneshot();
            spawn(async move {
                sleep(SimDuration::from_micros(50)).await;
                tx.send("value");
            });
            assert_eq!(rx.recv().await.unwrap(), "value");
        });
        sim.run_to_completion();
    }

    #[test]
    fn oneshot_dropped_sender_errors() {
        let mut sim = Simulation::new(0);
        sim.spawn(async {
            let (tx, rx) = oneshot::<u8>();
            drop(tx);
            assert_eq!(rx.recv().await, Err(RecvError));
        });
        sim.run_to_completion();
    }

    #[test]
    fn try_recv_nonblocking() {
        let mut sim = Simulation::new(0);
        sim.spawn(async {
            let (tx, rx) = channel();
            assert_eq!(rx.try_recv(), None);
            tx.send_now(9).unwrap();
            assert_eq!(rx.try_recv(), Some(9));
            assert_eq!(rx.try_recv(), None);
        });
        sim.run_to_completion();
    }
}
