//! Causal spans and cross-process flow edges.
//!
//! The flat [`crate::trace::Tracer`] answers *what happened*; spans
//! answer *what caused what* and *what dominated*. A span is a named
//! interval of virtual time on a `(track, lane)` pair — track is a
//! virtual host (a Perfetto "process" row), lane is a process or daemon
//! within it (a Perfetto "thread" row). Spans may carry an explicit
//! parent link, and **flow edges** connect a span on one track to a
//! span on another (message send → receive, MPI collective rendezvous),
//! turning the per-lane interval lists into a causal DAG.
//!
//! ## Flow matching
//!
//! Flows are recorded as *half-points*: the producing side calls
//! [`SpanStore::flow_out`] and the consuming side calls
//! [`SpanStore::flow_in`], each with the same `(class, src, dst)` key.
//! Neither side needs to tag payloads — both sides keep an independent
//! FIFO sequence counter per key, and [`SpanStore::snapshot`] joins the
//! k-th `flow_out` on a key with the k-th `flow_in` on the same key.
//! This is exact whenever the transport preserves per-key order (vsock
//! messages on one `(src, dst:port)` channel; SPMD-ordered collectives)
//! and degrades to a crossed arrow — never nondeterminism — when
//! concurrent transfers on one key overtake each other.
//!
//! Everything here is deterministic: span ids are a per-simulation
//! counter, all iteration orders are record order, and the snapshot is a
//! pure function of the recorded half-points.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use crate::event::Category;
use crate::fasthash::FxHashMap;
use crate::time::SimTime;

/// Shared immutable attribute string (track, lane, detail).
///
/// `Arc<str>` rather than `String` so hot instrumentation sites can
/// precompute their attributes once and hand out reference bumps per
/// span instead of fresh heap allocations, and so snapshots stay `Send`
/// for the sharded engine.
pub type SpanStr = Arc<str>;

/// Identifier of one recorded span, unique within a simulation.
///
/// The reserved value [`SpanId::NONE`] is returned when span recording
/// is disabled (or no simulation is running) so call sites can thread
/// ids through unconditionally; every operation on it is a no-op.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(u64);

impl SpanId {
    /// The null span: recording was disabled when the span began.
    pub const NONE: SpanId = SpanId(0);

    /// True for the [`SpanId::NONE`] sentinel.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Raw id value (1-based; 0 is the sentinel).
    pub fn get(self) -> u64 {
        self.0
    }
}

/// One recorded span: a named virtual-time interval on a track/lane.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// This span's id (1-based, in begin order).
    pub id: SpanId,
    /// Enclosing span, if the caller linked one.
    pub parent: Option<SpanId>,
    /// Subsystem category (reused from the flat event stream).
    pub cat: Category,
    /// Stable operation name (`"quantum"`, `"vsock_send"`, …).
    pub name: &'static str,
    /// Top-level grouping row — the virtual host or node.
    pub track: SpanStr,
    /// Row within the track — the process, rank, or daemon.
    pub lane: SpanStr,
    /// Free-form detail (job name, destination, collective op …).
    pub detail: SpanStr,
    /// Virtual instant the span began.
    pub begin: SimTime,
    /// Virtual instant the span ended; `None` if never closed.
    pub end: Option<SimTime>,
}

impl SpanRecord {
    /// Duration in nanoseconds (zero while the span is open).
    pub fn dur_ns(&self) -> u64 {
        self.end
            .map(|e| e.as_nanos().saturating_sub(self.begin.as_nanos()))
            .unwrap_or(0)
    }
}

/// A resolved causal edge between two spans on (usually) different
/// tracks, produced by joining `flow_out`/`flow_in` half-points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowEdge {
    /// Flow class (`"msg"` for vsock messages, `"coll"` for MPI
    /// collectives).
    pub class: &'static str,
    /// Producing span.
    pub from: SpanId,
    /// Consuming span.
    pub to: SpanId,
}

/// Immutable copy of a [`SpanStore`]'s contents with flows resolved.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanSnapshot {
    /// All recorded spans, in begin order (`id` ascending).
    pub spans: Vec<SpanRecord>,
    /// Resolved flow edges, in `flow_in` record order.
    pub flows: Vec<FlowEdge>,
    /// Spans discarded because the store hit its capacity.
    pub dropped: u64,
}

impl SpanSnapshot {
    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.flows.is_empty()
    }

    /// Look up a span by id (`None` for the sentinel or a dropped span).
    pub fn span(&self, id: SpanId) -> Option<&SpanRecord> {
        if id.is_none() {
            return None;
        }
        let idx = (id.0 - 1) as usize;
        self.spans.get(idx).filter(|s| s.id == id)
    }
}

/// Key of one flow half-point stream: `(class, src, dst)`.
type FlowKey = (&'static str, String, String);

struct SpanInner {
    enabled: bool,
    capacity: usize,
    dropped: u64,
    spans: Vec<SpanRecord>,
    /// Send-side half-points in per-key emit order (the vector index is
    /// the FIFO sequence number).
    out_points: FxHashMap<FlowKey, Vec<SpanId>>,
    /// Receive-side FIFO counters; half-points kept in record order.
    in_seq: FxHashMap<FlowKey, u64>,
    in_points: Vec<(FlowKey, u64, SpanId)>,
}

/// Shared per-simulation span store (cloning shares the store).
///
/// Disabled by default — [`SpanStore::set_enabled`] turns it on, and
/// while disabled every operation is a cheap no-op returning
/// [`SpanId::NONE`]. Unlike the bounded event ring, spans are kept in
/// full (the critical-path analyzer needs the whole DAG); `capacity` is
/// a large backstop against runaway instrumentation, counted in
/// [`SpanStore::dropped`] when hit.
#[derive(Clone)]
pub struct SpanStore {
    inner: Rc<RefCell<SpanInner>>,
}

impl Default for SpanStore {
    fn default() -> Self {
        SpanStore::new()
    }
}

impl SpanStore {
    /// Default backstop on retained spans.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// A fresh, disabled store with the default capacity.
    pub fn new() -> Self {
        SpanStore {
            inner: Rc::new(RefCell::new(SpanInner {
                enabled: false,
                capacity: Self::DEFAULT_CAPACITY,
                dropped: 0,
                spans: Vec::new(),
                out_points: FxHashMap::default(),
                in_seq: FxHashMap::default(),
                in_points: Vec::new(),
            })),
        }
    }

    /// Whether spans are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.borrow().enabled
    }

    /// Enable or disable recording. Open spans survive a disable and can
    /// still be closed.
    pub fn set_enabled(&self, on: bool) {
        self.inner.borrow_mut().enabled = on;
    }

    /// Change the retained-span backstop (existing spans are kept).
    pub fn set_capacity(&self, capacity: usize) {
        self.inner.borrow_mut().capacity = capacity;
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.inner.borrow().spans.len()
    }

    /// True if no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().spans.is_empty()
    }

    /// Spans discarded because the capacity backstop was hit.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Open a span at `at`. Returns [`SpanId::NONE`] (recording nothing)
    /// while disabled or once the capacity backstop is hit.
    #[allow(clippy::too_many_arguments)]
    pub fn begin(
        &self,
        at: SimTime,
        parent: Option<SpanId>,
        cat: Category,
        name: &'static str,
        track: impl Into<SpanStr>,
        lane: impl Into<SpanStr>,
        detail: impl Into<SpanStr>,
    ) -> SpanId {
        let mut s = self.inner.borrow_mut();
        if !s.enabled {
            return SpanId::NONE;
        }
        if s.spans.len() >= s.capacity {
            s.dropped += 1;
            return SpanId::NONE;
        }
        let id = SpanId(s.spans.len() as u64 + 1);
        s.spans.push(SpanRecord {
            id,
            parent: parent.filter(|p| !p.is_none()),
            cat,
            name,
            track: track.into(),
            lane: lane.into(),
            detail: detail.into(),
            begin: at,
            end: None,
        });
        id
    }

    /// Close a span at `at`. No-op for the sentinel or an already-closed
    /// span (the first close wins, keeping replays byte-stable).
    pub fn end(&self, at: SimTime, id: SpanId) {
        if id.is_none() {
            return;
        }
        let mut s = self.inner.borrow_mut();
        let idx = (id.0 - 1) as usize;
        if let Some(rec) = s.spans.get_mut(idx) {
            if rec.end.is_none() {
                rec.end = Some(at);
            }
        }
    }

    /// Record the producing half of a flow on key `(class, src, dst)`,
    /// anchored to `span`. No-op for the sentinel span.
    pub fn flow_out(&self, class: &'static str, src: &str, dst: &str, span: SpanId) {
        if span.is_none() {
            return;
        }
        let mut s = self.inner.borrow_mut();
        if !s.enabled {
            return;
        }
        let key: FlowKey = (class, src.to_string(), dst.to_string());
        s.out_points.entry(key).or_default().push(span);
    }

    /// Record the consuming half of a flow on key `(class, src, dst)`,
    /// anchored to `span`. No-op for the sentinel span.
    pub fn flow_in(&self, class: &'static str, src: &str, dst: &str, span: SpanId) {
        if span.is_none() {
            return;
        }
        let mut s = self.inner.borrow_mut();
        if !s.enabled {
            return;
        }
        let key: FlowKey = (class, src.to_string(), dst.to_string());
        let seq = match s.in_seq.get_mut(&key) {
            Some(v) => {
                *v += 1;
                *v
            }
            None => {
                s.in_seq.insert(key.clone(), 0);
                0
            }
        };
        s.in_points.push((key, seq, span));
    }

    /// Snapshot spans and resolve flow half-points into [`FlowEdge`]s.
    ///
    /// Edges appear in `flow_in` record order; an in-point whose matching
    /// out-point was never recorded (e.g. the sender ran with spans
    /// disabled) is silently skipped.
    pub fn snapshot(&self) -> SpanSnapshot {
        let s = self.inner.borrow();
        let mut flows = Vec::new();
        for (key, seq, to) in &s.in_points {
            let from = s
                .out_points
                .get(key)
                .and_then(|outs| outs.get(*seq as usize));
            if let Some(from) = from {
                flows.push(FlowEdge {
                    class: key.0,
                    from: *from,
                    to: *to,
                });
            }
        }
        SpanSnapshot {
            spans: s.spans.clone(),
            flows,
            dropped: s.dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn store() -> SpanStore {
        let s = SpanStore::new();
        s.set_enabled(true);
        s
    }

    #[test]
    fn disabled_store_returns_sentinel() {
        let s = SpanStore::new();
        let id = s.begin(
            t(1),
            None,
            Category::Sched,
            "quantum",
            "h0",
            "job",
            String::new(),
        );
        assert!(id.is_none());
        s.end(t(2), id); // must not panic
        s.flow_out("msg", "a", "b", id);
        assert!(s.snapshot().is_empty());
    }

    #[test]
    fn ids_are_sequential_and_ends_stick() {
        let s = store();
        let a = s.begin(t(1), None, Category::Net, "send", "h0", "p", String::new());
        let b = s.begin(
            t(2),
            Some(a),
            Category::Net,
            "xfer",
            "h0",
            "p",
            String::new(),
        );
        assert_eq!(a.get(), 1);
        assert_eq!(b.get(), 2);
        s.end(t(5), b);
        s.end(t(9), b); // second close ignored
        let snap = s.snapshot();
        assert_eq!(snap.span(b).unwrap().end, Some(t(5)));
        assert_eq!(snap.span(b).unwrap().parent, Some(a));
        assert_eq!(snap.span(a).unwrap().end, None);
        assert_eq!(snap.span(b).unwrap().dur_ns(), 3);
    }

    #[test]
    fn flows_join_fifo_per_key() {
        let s = store();
        let mk = |st: &SpanStore, n| {
            st.begin(t(n), None, Category::Vsock, "send", "x", "p", String::new())
        };
        let s1 = mk(&s, 1);
        let s2 = mk(&s, 2);
        let r1 = mk(&s, 3);
        let r2 = mk(&s, 4);
        // Two sends then two receives on the same key: 1st↔1st, 2nd↔2nd.
        s.flow_out("msg", "a", "b", s1);
        s.flow_out("msg", "a", "b", s2);
        s.flow_in("msg", "a", "b", r1);
        s.flow_in("msg", "a", "b", r2);
        // A receive with no matching send on another key is skipped.
        s.flow_in("msg", "ghost", "b", r1);
        let snap = s.snapshot();
        assert_eq!(
            snap.flows,
            vec![
                FlowEdge {
                    class: "msg",
                    from: s1,
                    to: r1
                },
                FlowEdge {
                    class: "msg",
                    from: s2,
                    to: r2
                },
            ]
        );
    }

    #[test]
    fn capacity_backstop_counts_drops() {
        let s = store();
        s.set_capacity(1);
        let a = s.begin(
            t(1),
            None,
            Category::Mpi,
            "barrier",
            "h",
            "r0",
            String::new(),
        );
        let b = s.begin(
            t(2),
            None,
            Category::Mpi,
            "barrier",
            "h",
            "r1",
            String::new(),
        );
        assert!(!a.is_none());
        assert!(b.is_none());
        assert_eq!(s.dropped(), 1);
        assert_eq!(s.len(), 1);
    }
}
