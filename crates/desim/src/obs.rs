//! Observability handle and in-simulation instrumentation functions.
//!
//! Every [`crate::Simulation`] owns an [`Obs`]: a typed-event [`Tracer`]
//! (disabled by default) plus an always-on [`Metrics`] registry.
//! Instrumented code anywhere in the workspace calls the free functions
//! in this module — [`emit`], [`count`], [`observe`], [`gauge_max`] —
//! which resolve the current simulation through the executor's
//! thread-local context.
//!
//! Two properties make these safe on hot paths:
//!
//! - **No-op outside a simulation.** Code like the memory manager is
//!   also used from plain unit tests with no executor running; the free
//!   functions silently do nothing there instead of panicking.
//! - **Lazy event construction.** [`emit`] takes a closure, so the
//!   `String` fields of an [`Event`] are never built unless the tracer
//!   is actually enabled.

use crate::event::{Category, Event};
use crate::executor::try_with_current;
use crate::metrics::{Counter, HistogramHandle, Metrics};
use crate::span::{SpanId, SpanStore, SpanStr};
use crate::trace::Tracer;

/// The observability surface of one simulation: a shared typed-event
/// tracer, a causal span store, and a shared metrics registry.
#[derive(Clone)]
pub struct Obs {
    tracer: Tracer,
    spans: SpanStore,
    metrics: Metrics,
}

impl Obs {
    /// A fresh handle: tracing and spans disabled, metrics empty.
    pub fn new() -> Self {
        Obs {
            tracer: Tracer::disabled(),
            spans: SpanStore::new(),
            metrics: Metrics::new(),
        }
    }

    /// The event tracer (disabled until given capacity and enabled).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The causal span store (disabled until [`Obs::enable_spans`]).
    pub fn spans(&self) -> &SpanStore {
        &self.spans
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Convenience: give the tracer `capacity` and enable it.
    pub fn enable_tracing(&self, capacity: usize) {
        self.tracer.set_capacity(capacity);
        self.tracer.set_enabled(true);
    }

    /// Turn on causal span recording.
    pub fn enable_spans(&self) {
        self.spans.set_enabled(true);
    }

    /// Freeze the tracer and span store in place.
    ///
    /// Called at the instant a run's root workload completes, so any
    /// trailing daemon activity (the sharded engine may run a shard a
    /// little past root completion, to its epoch horizon) records
    /// nothing and sequential vs sharded output stays byte-identical.
    pub fn seal(&self) {
        self.tracer.set_enabled(false);
        self.tracer.flush_sink();
        self.spans.set_enabled(false);
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

/// Record a typed event in the current simulation's tracer.
///
/// The closure runs only if a simulation context exists *and* its tracer
/// is enabled, so disabled tracing costs one thread-local read.
pub fn emit(event: impl FnOnce() -> Event) {
    try_with_current(|s| {
        let obs = s.obs();
        if obs.tracer.is_enabled() {
            obs.tracer.record(s.now(), event());
        }
    });
}

/// Add `n` to a counter in the current simulation's metrics registry.
/// No-op outside a simulation.
pub fn count(name: &str, n: u64) {
    try_with_current(|s| s.obs().metrics.count(name, n));
}

/// Record a duration-like value (nanoseconds) into a histogram with the
/// default decade bounds. No-op outside a simulation.
pub fn observe(name: &str, value: u64) {
    try_with_current(|s| s.obs().metrics.observe(name, value));
}

/// Record a value into a histogram created with explicit bucket bounds.
/// No-op outside a simulation.
pub fn observe_with(name: &str, value: u64, bounds: &[u64]) {
    try_with_current(|s| s.obs().metrics.observe_with(name, value, bounds));
}

/// A [`Counter`] handle bound to the current simulation's registry, for
/// per-event hot paths: resolve the name once at setup, then add without
/// any lookup. Outside a simulation the handle is detached (writes are
/// kept but never snapshotted), preserving the no-op-outside-sim rule.
pub fn counter_handle(name: &str) -> Counter {
    try_with_current(|s| s.obs().metrics.counter_handle(name)).unwrap_or_default()
}

/// A [`HistogramHandle`] bound to the current simulation's registry (see
/// [`counter_handle`] for the rationale and the outside-simulation rule).
pub fn histogram_handle(name: &str, bounds: &[u64]) -> HistogramHandle {
    try_with_current(|s| s.obs().metrics.histogram_handle(name, bounds))
        .unwrap_or_else(|| HistogramHandle::detached(bounds))
}

/// Raise a high-water-mark gauge. No-op outside a simulation.
pub fn gauge_max(name: &str, value: f64) {
    try_with_current(|s| s.obs().metrics.gauge_max(name, value));
}

/// Set a gauge. No-op outside a simulation.
pub fn gauge_set(name: &str, value: f64) {
    try_with_current(|s| s.obs().metrics.gauge_set(name, value));
}

/// Open a causal span in the current simulation's span store.
///
/// `f` returns `(track, lane, detail)` — the virtual host row, the
/// process/daemon row within it, and free-form detail — as
/// [`SpanStr`]s, so hot call sites can precompute the triple once and
/// clone reference bumps per span. Like [`emit`], the closure runs only
/// when spans are actually recorded, so disabled spans never allocate.
/// Returns [`SpanId::NONE`] (a universal no-op id) when disabled or
/// outside a simulation.
pub fn span_begin(
    cat: Category,
    name: &'static str,
    f: impl FnOnce() -> (SpanStr, SpanStr, SpanStr),
) -> SpanId {
    span_child(SpanId::NONE, cat, name, f)
}

/// Open a causal span with an explicit parent link (see [`span_begin`]).
/// Pass [`SpanId::NONE`] for a root span.
pub fn span_child(
    parent: SpanId,
    cat: Category,
    name: &'static str,
    f: impl FnOnce() -> (SpanStr, SpanStr, SpanStr),
) -> SpanId {
    try_with_current(|s| {
        let obs = s.obs();
        if !obs.spans.is_enabled() {
            return SpanId::NONE;
        }
        let (track, lane, detail) = f();
        let parent = if parent.is_none() { None } else { Some(parent) };
        obs.spans
            .begin(s.now(), parent, cat, name, track, lane, detail)
    })
    .unwrap_or(SpanId::NONE)
}

/// Close a causal span. No-op for [`SpanId::NONE`] or outside a
/// simulation.
pub fn span_end(id: SpanId) {
    if id.is_none() {
        return;
    }
    try_with_current(|s| s.obs().spans.end(s.now(), id));
}

/// Record the producing half of a cross-track flow, anchored to `span`
/// (see [`crate::span::SpanStore::flow_out`]). No-op for
/// [`SpanId::NONE`].
pub fn flow_out(class: &'static str, src: &str, dst: &str, span: SpanId) {
    if span.is_none() {
        return;
    }
    try_with_current(|s| s.obs().spans.flow_out(class, src, dst, span));
}

/// Record the consuming half of a cross-track flow, anchored to `span`
/// (see [`crate::span::SpanStore::flow_in`]). No-op for
/// [`SpanId::NONE`].
pub fn flow_in(class: &'static str, src: &str, dst: &str, span: SpanId) {
    if span.is_none() {
        return;
    }
    try_with_current(|s| s.obs().spans.flow_in(class, src, dst, span));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Category;
    use crate::executor::Simulation;

    #[test]
    fn noop_outside_simulation() {
        // None of these may panic without a running executor.
        emit(|| Event::PacketDrop { link: 1, bytes: 2 });
        count("net.drops", 1);
        observe("sched.quantum_ns", 5);
        gauge_max("net.peak", 1.0);
        gauge_set("net.rate", 2.0);
    }

    #[test]
    fn records_into_current_simulation() {
        let mut sim = Simulation::new(1);
        sim.obs().enable_tracing(16);
        let obs = sim.obs().clone();
        sim.block_on(async {
            emit(|| Event::PacketDrop { link: 3, bytes: 99 });
            count("net.drops", 1);
            count("net.drops", 1);
            observe("net.queue_ns", 123);
        });
        assert_eq!(obs.tracer().events_in(Category::Net).len(), 1);
        assert_eq!(obs.metrics().counter("net.drops"), 2);
        assert_eq!(obs.metrics().snapshot().histograms.len(), 1);
    }

    #[test]
    fn spans_record_with_virtual_timestamps() {
        use crate::time::SimDuration;
        let mut sim = Simulation::new(1);
        sim.obs().enable_spans();
        let obs = sim.obs().clone();
        sim.block_on(async {
            let id = span_begin(Category::Sched, "quantum", || {
                ("h0".into(), "job".into(), "".into())
            });
            crate::executor::sleep(SimDuration::from_nanos(50)).await;
            span_end(id);
        });
        let snap = obs.spans().snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].dur_ns(), 50);
        assert_eq!(&*snap.spans[0].track, "h0");
    }

    #[test]
    fn disabled_spans_skip_arg_construction() {
        let mut sim = Simulation::new(1);
        let obs = sim.obs().clone();
        sim.block_on(async {
            let id = span_begin(Category::Net, "send", || {
                panic!("span closure must not run while spans are disabled")
            });
            assert!(id.is_none());
            span_end(id);
            flow_out("msg", "a", "b", id);
            flow_in("msg", "a", "b", id);
        });
        assert!(obs.spans().is_empty());
    }

    #[test]
    fn disabled_tracer_skips_event_construction() {
        let mut sim = Simulation::new(1);
        let obs = sim.obs().clone();
        sim.block_on(async {
            emit(|| panic!("event closure must not run while tracing is disabled"));
        });
        assert!(obs.tracer().is_empty());
    }
}
