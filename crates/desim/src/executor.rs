//! The single-threaded deterministic async executor.
//!
//! Tasks are ordinary Rust futures. Time only advances when every runnable
//! task has been polled to a blocked state; the executor then pops the
//! earliest timer from the event queue and jumps the clock to it. Events at
//! equal instants are ordered by registration sequence number, so a given
//! program + seed always produces the same trace.
//!
//! The executor is deliberately `!Send`: a simulation lives on one thread
//! and uses `Rc`/`RefCell` internally. Parallelism across *simulations*
//! (e.g. the parallel figure regeneration in `mgrid-bench`) is still
//! possible because each `Simulation` is self-contained.
//!
//! ## Storage layout (hot-path design)
//!
//! Everything per-event is slab-indexed rather than hash-mapped:
//!
//! * **Tasks** live in a generation-tagged slab (`Vec<TaskSlot>` + free
//!   list). A [`TaskId`] packs `slot | generation`, so a stale wake for a
//!   completed task is rejected by a generation compare instead of a hash
//!   probe, and spawn/complete never allocate map nodes.
//! * **Task wakers** are created once per task and cached in its slot;
//!   polling reuses the cached waker (an `Arc` clone) instead of
//!   allocating a fresh waker per poll.
//! * **Timers** keep their tie-break-by-registration-sequence contract in
//!   the binary heap, but waker storage is a generation-tagged slab
//!   addressed by a private `TimerHandle`; re-arming an existing timer uses
//!   [`Waker::will_wake`] to skip redundant clones.
//! * The **ready queue** is a plain `VecDeque` behind an owner-thread
//!   assertion instead of a `Mutex`: wakers are nominally `Send + Sync`,
//!   but every task of a `!Send` simulation runs on the thread that owns
//!   it, so the queue is never actually shared. The assertion turns any
//!   future violation of that invariant into a panic rather than a race.

use std::cell::{Cell, RefCell, UnsafeCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use crate::obs::Obs;
use crate::rng::{SharedRng, SimRng};
use crate::time::{SimDuration, SimTime};

/// Identifier of a spawned task: a slab slot in the low 32 bits and the
/// slot's generation in the high 32 bits. Identifiers are unique within a
/// simulation for its whole lifetime; comparing ids from different
/// simulations is meaningless.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TaskId(u64);

impl TaskId {
    fn new(slot: u32, gen: u32) -> Self {
        TaskId((u64::from(gen) << 32) | u64::from(slot))
    }
    fn slot(self) -> usize {
        (self.0 & 0xffff_ffff) as usize
    }
    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

type BoxedFuture = Pin<Box<dyn Future<Output = ()>>>;

/// The executor's run queue, shared with every task waker.
///
/// Wakers must be `Send + Sync` by contract, but a simulation is `!Send`
/// and all of its tasks run on the owning thread, so the queue is never
/// actually accessed concurrently. Instead of paying an uncontended
/// `Mutex` lock/unlock on every wake and every poll, accesses assert the
/// owner thread and then use the queue directly; a waker smuggled to
/// another thread panics instead of racing.
struct ReadyQueue {
    owner: std::thread::ThreadId,
    queue: UnsafeCell<VecDeque<TaskId>>,
}

// SAFETY: all accesses go through `with`, which panics unless running on
// the thread that created the queue, so the UnsafeCell contents are only
// ever touched single-threaded even if the owning Arc moves threads.
unsafe impl Send for ReadyQueue {}
// SAFETY: same invariant as Send — shared references only reach the
// queue through `with`'s owner-thread assertion, so there is never a
// concurrent access for Sync to make unsound.
unsafe impl Sync for ReadyQueue {}

impl ReadyQueue {
    fn new() -> Arc<Self> {
        Arc::new(ReadyQueue {
            owner: std::thread::current().id(),
            queue: UnsafeCell::new(VecDeque::with_capacity(64)),
        })
    }

    #[inline]
    fn with<R>(&self, f: impl FnOnce(&mut VecDeque<TaskId>) -> R) -> R {
        assert_eq!(
            std::thread::current().id(),
            self.owner,
            "simulation waker used off the simulation's own thread"
        );
        // SAFETY: single-threaded by the assertion above; the executor
        // never re-enters `with` from inside `f` (pushes and pops are
        // leaf operations).
        f(unsafe { &mut *self.queue.get() })
    }

    #[inline]
    fn push(&self, id: TaskId) {
        self.with(|q| q.push_back(id));
    }

    #[inline]
    fn pop(&self) -> Option<TaskId> {
        self.with(|q| q.pop_front())
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.with(|q| q.is_empty())
    }
}

struct TaskWaker {
    id: TaskId,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.push(self.id);
    }
}

/// One slab slot of the task table.
struct TaskSlot {
    /// Bumped every time the slot is recycled; a wake whose id carries a
    /// stale generation is ignored.
    gen: u32,
    /// `None` while the slot is free or the task is being polled.
    fut: Option<BoxedFuture>,
    /// Waker created on first poll and reused for every later poll.
    waker: Option<Waker>,
    daemon: bool,
    live: bool,
}

#[derive(PartialEq, Eq)]
struct TimerEntry {
    at: SimTime,
    /// Global registration sequence: the determinism tie-break for timers
    /// at the same instant.
    seq: u64,
    slot: u32,
    gen: u32,
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Opaque handle to a registered timer, used to re-arm or cancel it.
#[derive(Clone, Copy, Debug)]
pub(crate) struct TimerHandle {
    slot: u32,
    gen: u32,
}

/// Slab slot holding one pending timer's waker.
struct TimerSlot {
    gen: u32,
    waker: Option<Waker>,
}

pub(crate) struct SimInner {
    now: Cell<SimTime>,
    next_timer_seq: Cell<u64>,
    tasks: RefCell<Vec<TaskSlot>>,
    task_free: RefCell<Vec<u32>>,
    /// Non-daemon tasks spawned and not yet completed.
    live_count: Cell<usize>,
    ready: Arc<ReadyQueue>,
    timers: RefCell<BinaryHeap<Reverse<TimerEntry>>>,
    timer_slots: RefCell<Vec<TimerSlot>>,
    timer_free: RefCell<Vec<u32>>,
    /// Heap entries whose timer was cancelled (generation-stale). Kept
    /// so the heap can be compacted once the dead weight dominates.
    stale_timers: Cell<usize>,
    rng: SharedRng,
    polls: Cell<u64>,
    obs: Obs,
}

thread_local! {
    static CURRENT: RefCell<Option<Rc<SimInner>>> = const { RefCell::new(None) };
}

fn with_current<R>(f: impl FnOnce(&Rc<SimInner>) -> R) -> R {
    CURRENT.with(|c| {
        let borrow = c.borrow();
        let inner = borrow
            .as_ref()
            .expect("not inside a Simulation context (call via Simulation::run or block_on)");
        f(inner)
    })
}

/// Like [`with_current`], but a no-op returning `None` outside a
/// simulation context. The observability free functions use this so
/// instrumented code stays callable from plain unit tests.
pub(crate) fn try_with_current<R>(f: impl FnOnce(&Rc<SimInner>) -> R) -> Option<R> {
    CURRENT.with(|c| c.borrow().as_ref().map(f))
}

/// The simulation driver.
///
/// ```
/// use mgrid_desim::{Simulation, time::SimDuration};
///
/// let mut sim = Simulation::new(42);
/// sim.spawn(async {
///     mgrid_desim::sleep(SimDuration::from_millis(5)).await;
/// });
/// let end = sim.run();
/// assert_eq!(end.as_millis(), 5);
/// ```
pub struct Simulation {
    inner: Rc<SimInner>,
}

impl Simulation {
    /// Create a simulation whose RNG streams derive from `seed`.
    pub fn new(seed: u64) -> Self {
        Simulation {
            inner: Rc::new(SimInner {
                now: Cell::new(SimTime::ZERO),
                next_timer_seq: Cell::new(0),
                tasks: RefCell::new(Vec::new()),
                task_free: RefCell::new(Vec::new()),
                live_count: Cell::new(0),
                ready: ReadyQueue::new(),
                timers: RefCell::new(BinaryHeap::with_capacity(64)),
                timer_slots: RefCell::new(Vec::new()),
                timer_free: RefCell::new(Vec::new()),
                stale_timers: Cell::new(0),
                rng: SharedRng::new(seed),
                polls: Cell::new(0),
                obs: Obs::new(),
            }),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.inner.now.get()
    }

    /// This simulation's observability surface (tracer + metrics).
    ///
    /// Tracing starts disabled; call [`Obs::enable_tracing`] to capture
    /// typed events. Metrics are always collected.
    pub fn obs(&self) -> &Obs {
        &self.inner.obs
    }

    /// Spawn a root task. May also be called from inside tasks through the
    /// free function [`spawn`].
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        self.inner.spawn_future(fut, false)
    }

    /// Shared deterministic RNG for this simulation.
    pub fn rng(&self) -> SharedRng {
        self.inner.rng.clone()
    }

    /// Total number of task polls performed (engine throughput metric).
    pub fn poll_count(&self) -> u64 {
        self.inner.polls.get()
    }

    /// Number of non-daemon tasks that have been spawned but not yet
    /// completed. Daemon tasks (see [`spawn_daemon`]) are infrastructure
    /// loops expected to outlive the workload and are not counted.
    pub fn live_tasks(&self) -> usize {
        self.inner.live_count.get()
    }

    /// Run until no runnable tasks and no pending timers remain.
    ///
    /// Returns the final simulation time. Tasks that are still blocked on
    /// external wakeups (e.g. a channel nobody will ever write to) are left
    /// pending; check [`Simulation::live_tasks`] to detect deadlock.
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime::MAX)
    }

    /// Run until the event queue is exhausted or the next event would occur
    /// after `deadline`. The clock is left at `min(deadline, final time)`.
    ///
    /// # Examples
    /// ```
    /// use mgrid_desim::time::{SimDuration, SimTime};
    /// use mgrid_desim::Simulation;
    ///
    /// let mut sim = Simulation::new(7);
    /// sim.spawn(async {
    ///     mgrid_desim::sleep(SimDuration::from_millis(30)).await;
    /// });
    /// // The deadline caps the clock; the sleeper is still pending.
    /// let t = sim.run_until(SimTime::from_nanos(10_000_000));
    /// assert_eq!(t.as_millis(), 10);
    /// assert_eq!(sim.live_tasks(), 1);
    /// assert_eq!(sim.run().as_millis(), 30);
    /// ```
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        self.run_core(deadline, || false)
    }

    /// Like [`Simulation::run_until`], but also stop as soon as `stop()`
    /// returns true (checked between event batches). The sharded engine
    /// ([`crate::shard`]) uses this to end a logical process's final epoch
    /// the moment every shard's root future has completed.
    pub fn run_until_or(&mut self, deadline: SimTime, stop: impl Fn() -> bool) -> SimTime {
        self.run_core(deadline, stop)
    }

    /// The virtual time of the next pending event: `now` when a task is
    /// already runnable, otherwise the earliest timer deadline, otherwise
    /// `None` (the simulation is quiescent until an external wakeup).
    ///
    /// Conservative parallel runs use this as a shard's contribution to
    /// the global lower-bound-on-timestamp computation.
    pub fn next_event_time(&self) -> Option<SimTime> {
        if !self.inner.ready.is_empty() {
            Some(self.inner.now.get())
        } else {
            self.inner.peek_timer()
        }
    }

    /// The core loop: run until quiescence, the deadline, or `stop()`
    /// returning true (checked between event batches).
    fn run_core(&mut self, deadline: SimTime, stop: impl Fn() -> bool) -> SimTime {
        let _guard = ContextGuard::enter(self.inner.clone());
        loop {
            // Phase 1: poll every ready task until quiescent.
            while let Some(id) = self.inner.ready.pop() {
                self.inner.poll_task(id);
            }
            if stop() {
                break;
            }
            // Phase 2: advance to the earliest timer.
            let Some(entry_at) = self.inner.peek_timer() else {
                break;
            };
            if entry_at > deadline {
                self.inner.now.set(deadline);
                break;
            }
            self.inner.advance_to(entry_at);
        }
        self.inner.now.get()
    }

    /// Run the simulation to completion and panic if any task is still
    /// blocked at the end — the standard harness for tests, where a blocked
    /// task means a deadlock bug.
    pub fn run_to_completion(&mut self) -> SimTime {
        let t = self.run();
        let live = self.live_tasks();
        assert!(
            live == 0,
            "simulation ended with {live} blocked task(s) at {t}"
        );
        t
    }

    /// Convenience: spawn `fut` and run until it completes, then return its
    /// output. The simulation stops as soon as the root task finishes, so
    /// perpetual daemon tasks (schedulers, network pumps) do not prevent
    /// termination.
    ///
    /// # Panics
    /// Panics if the simulation runs out of events before `fut` completes.
    pub fn block_on<F>(&mut self, fut: F) -> F::Output
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let handle = self.spawn(fut);
        let state = handle.state.clone();
        self.run_core(SimTime::MAX, || state.borrow().result.is_some());
        handle
            .try_take()
            .expect("block_on: root task did not complete (deadlock?)")
    }
}

impl SimInner {
    pub(crate) fn now(&self) -> SimTime {
        self.now.get()
    }

    pub(crate) fn obs(&self) -> &Obs {
        &self.obs
    }

    fn spawn_future<F>(self: &Rc<Self>, fut: F, daemon: bool) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let state = Rc::new(RefCell::new(JoinState {
            result: None,
            waker: None,
        }));
        let state2 = state.clone();
        let wrapped: BoxedFuture = Box::pin(async move {
            let out = fut.await;
            let mut s = state2.borrow_mut();
            s.result = Some(out);
            if let Some(w) = s.waker.take() {
                w.wake();
            }
        });
        let id = {
            let mut tasks = self.tasks.borrow_mut();
            match self.task_free.borrow_mut().pop() {
                Some(slot) => {
                    let s = &mut tasks[slot as usize];
                    debug_assert!(s.fut.is_none() && !s.live);
                    s.fut = Some(wrapped);
                    s.daemon = daemon;
                    s.live = true;
                    TaskId::new(slot, s.gen)
                }
                None => {
                    let slot = u32::try_from(tasks.len()).expect("task slab exhausted");
                    tasks.push(TaskSlot {
                        gen: 0,
                        fut: Some(wrapped),
                        waker: None,
                        daemon,
                        live: true,
                    });
                    TaskId::new(slot, 0)
                }
            }
        };
        if !daemon {
            self.live_count.set(self.live_count.get() + 1);
        }
        self.ready.push(id);
        JoinHandle { state }
    }

    fn poll_task(self: &Rc<Self>, id: TaskId) {
        // Take the future out so the task may spawn/wake reentrantly.
        let (mut fut, waker) = {
            let mut tasks = self.tasks.borrow_mut();
            let Some(slot) = tasks.get_mut(id.slot()) else {
                return;
            };
            if slot.gen != id.gen() {
                return; // stale wake for a recycled slot
            }
            let Some(fut) = slot.fut.take() else {
                return; // completed (or mid-poll); spurious wake
            };
            let waker = slot
                .waker
                .get_or_insert_with(|| {
                    Waker::from(Arc::new(TaskWaker {
                        id,
                        ready: self.ready.clone(),
                    }))
                })
                .clone();
            (fut, waker)
        };
        let mut cx = Context::from_waker(&waker);
        self.polls.set(self.polls.get() + 1);
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                // Run the future's destructors before re-borrowing the
                // task table: dropping captured state may re-enter the
                // executor (cancel timers, wake tasks, even spawn).
                drop(fut);
                let mut tasks = self.tasks.borrow_mut();
                let slot = &mut tasks[id.slot()];
                if !slot.daemon {
                    self.live_count.set(self.live_count.get() - 1);
                }
                slot.gen = slot.gen.wrapping_add(1);
                slot.waker = None;
                slot.daemon = false;
                slot.live = false;
                self.task_free.borrow_mut().push(id.slot() as u32);
            }
            Poll::Pending => {
                self.tasks.borrow_mut()[id.slot()].fut = Some(fut);
            }
        }
    }

    fn peek_timer(&self) -> Option<SimTime> {
        // Pop cancelled entries off the top so the reported time is a
        // *live* deadline: the sharded engine feeds this into the global
        // lower-bound computation, where a stale minimum would shrink
        // every shard's window for nothing.
        let mut timers = self.timers.borrow_mut();
        let slots = self.timer_slots.borrow();
        while let Some(Reverse(e)) = timers.peek() {
            if slots[e.slot as usize].gen == e.gen {
                return Some(e.at);
            }
            timers.pop();
            self.stale_timers
                .set(self.stale_timers.get().saturating_sub(1));
        }
        None
    }

    /// Jump the clock to `at` and fire every timer scheduled for that
    /// instant (in registration order).
    fn advance_to(&self, at: SimTime) {
        debug_assert!(at >= self.now.get(), "time went backwards");
        self.now.set(at);
        loop {
            let (slot, gen) = {
                let mut timers = self.timers.borrow_mut();
                match timers.peek() {
                    Some(Reverse(e)) if e.at == at => {
                        let Reverse(e) = timers.pop().unwrap();
                        (e.slot, e.gen)
                    }
                    _ => break,
                }
            };
            let waker = {
                let mut slots = self.timer_slots.borrow_mut();
                let s = &mut slots[slot as usize];
                if s.gen != gen {
                    // Cancelled timer: the heap entry is a no-op.
                    self.stale_timers
                        .set(self.stale_timers.get().saturating_sub(1));
                    continue;
                }
                let w = s.waker.take();
                s.gen = s.gen.wrapping_add(1);
                self.timer_free.borrow_mut().push(slot);
                w
            };
            if let Some(w) = waker {
                w.wake();
            }
        }
    }

    pub(crate) fn register_timer(&self, at: SimTime, waker: &Waker) -> TimerHandle {
        let seq = self.next_timer_seq.get();
        self.next_timer_seq.set(seq + 1);
        let (slot, gen) = {
            let mut slots = self.timer_slots.borrow_mut();
            match self.timer_free.borrow_mut().pop() {
                Some(slot) => {
                    let s = &mut slots[slot as usize];
                    debug_assert!(s.waker.is_none());
                    s.waker = Some(waker.clone());
                    (slot, s.gen)
                }
                None => {
                    let slot = u32::try_from(slots.len()).expect("timer slab exhausted");
                    slots.push(TimerSlot {
                        gen: 0,
                        waker: Some(waker.clone()),
                    });
                    (slot, 0)
                }
            }
        };
        self.timers
            .borrow_mut()
            .push(Reverse(TimerEntry { at, seq, slot, gen }));
        TimerHandle { slot, gen }
    }

    pub(crate) fn update_timer_waker(&self, handle: TimerHandle, waker: &Waker) {
        let mut slots = self.timer_slots.borrow_mut();
        let s = &mut slots[handle.slot as usize];
        if s.gen == handle.gen {
            match &mut s.waker {
                Some(w) if w.will_wake(waker) => {}
                slot_waker => *slot_waker = Some(waker.clone()),
            }
        }
    }

    pub(crate) fn cancel_timer(&self, handle: TimerHandle) {
        // The heap entry stays and is skipped on pop (generation mismatch);
        // dropping the waker and bumping the generation neutralizes it.
        {
            let mut slots = self.timer_slots.borrow_mut();
            let s = &mut slots[handle.slot as usize];
            if s.gen != handle.gen {
                return;
            }
            s.waker = None;
            s.gen = s.gen.wrapping_add(1);
            self.timer_free.borrow_mut().push(handle.slot);
        }
        self.stale_timers.set(self.stale_timers.get() + 1);
        self.maybe_purge_timers();
    }

    /// Lazily compact the timer heap. Long chaos runs arm and cancel
    /// huge numbers of retry timeouts, and every cancelled entry lingers
    /// in the heap until its deadline floats to the top; once more than
    /// half the entries are generation-stale, rebuild the heap keeping
    /// only live ones. The O(len) rebuild amortizes against the
    /// cancellations that created the dead weight; `desim.timers_purged`
    /// counts the entries dropped.
    fn maybe_purge_timers(&self) {
        /// Below this size the dead weight cannot cost enough to be
        /// worth a rebuild.
        const MIN_HEAP_FOR_PURGE: usize = 64;
        let stale = self.stale_timers.get();
        let mut timers = self.timers.borrow_mut();
        if timers.len() < MIN_HEAP_FOR_PURGE || stale * 2 <= timers.len() {
            return;
        }
        let slots = self.timer_slots.borrow();
        let before = timers.len();
        let mut live = std::mem::take(&mut *timers).into_vec();
        live.retain(|Reverse(e)| slots[e.slot as usize].gen == e.gen);
        let purged = before - live.len();
        *timers = BinaryHeap::from(live);
        drop(slots);
        drop(timers);
        self.stale_timers.set(0);
        self.obs
            .metrics()
            .count("desim.timers_purged", purged as u64);
    }
}

struct ContextGuard {
    prev: Option<Rc<SimInner>>,
}

impl ContextGuard {
    fn enter(inner: Rc<SimInner>) -> Self {
        let prev = CURRENT.with(|c| c.borrow_mut().replace(inner));
        ContextGuard { prev }
    }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            *c.borrow_mut() = self.prev.take();
        });
    }
}

struct JoinState<T> {
    result: Option<T>,
    waker: Option<Waker>,
}

/// Handle to a spawned task's result.
///
/// Awaiting the handle yields the task's output. The handle may also be
/// inspected after the simulation finishes with [`JoinHandle::try_take`].
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    /// Take the result if the task has completed.
    pub fn try_take(&self) -> Option<T> {
        self.state.borrow_mut().result.take()
    }

    /// True if the task has completed (and the result not yet taken).
    pub fn is_finished(&self) -> bool {
        self.state.borrow().result.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut s = self.state.borrow_mut();
        if let Some(v) = s.result.take() {
            Poll::Ready(v)
        } else {
            s.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Free functions usable from inside tasks
// ---------------------------------------------------------------------------

/// Current simulation time (inside a running simulation).
pub fn now() -> SimTime {
    with_current(|s| s.now.get())
}

/// Spawn a task from inside the simulation.
pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + 'static,
    F::Output: 'static,
{
    with_current(|s| s.spawn_future(fut, false))
}

/// Spawn an infrastructure task (scheduler driver, network pump, …) that is
/// expected to run forever. Daemon tasks are excluded from
/// [`Simulation::live_tasks`], so [`Simulation::run_to_completion`] does not
/// treat them as deadlocks.
pub fn spawn_daemon<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + 'static,
    F::Output: 'static,
{
    with_current(|s| s.spawn_future(fut, true))
}

/// Run a closure with the simulation's shared RNG.
pub fn with_rng<R>(f: impl FnOnce(&mut SimRng) -> R) -> R {
    with_current(|s| s.rng.with(f))
}

/// Fork an independent RNG stream from the simulation's root RNG.
pub fn fork_rng() -> SimRng {
    with_current(|s| s.rng.fork())
}

/// Sleep for a span of simulated physical time.
pub fn sleep(d: SimDuration) -> Sleep {
    Sleep {
        at: None,
        duration: d,
        timer: None,
    }
}

/// Sleep until an absolute instant.
pub fn sleep_until(at: SimTime) -> Sleep {
    Sleep {
        at: Some(at),
        duration: SimDuration::ZERO,
        timer: None,
    }
}

/// Future returned by [`sleep`] / [`sleep_until`].
pub struct Sleep {
    at: Option<SimTime>,
    duration: SimDuration,
    timer: Option<TimerHandle>,
}

impl Future for Sleep {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = &mut *self;
        with_current(|s| {
            let at = match this.at {
                Some(at) => at,
                None => {
                    let at = s.now.get() + this.duration;
                    this.at = Some(at);
                    at
                }
            };
            if s.now.get() >= at {
                if let Some(handle) = this.timer.take() {
                    s.cancel_timer(handle);
                }
                Poll::Ready(())
            } else {
                match this.timer {
                    Some(handle) => s.update_timer_waker(handle, cx.waker()),
                    None => this.timer = Some(s.register_timer(at, cx.waker())),
                }
                Poll::Pending
            }
        })
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if let Some(handle) = self.timer.take() {
            // Best-effort: outside a context (sim already dropped) there is
            // nothing to cancel.
            CURRENT.with(|c| {
                if let Some(inner) = c.borrow().as_ref() {
                    inner.cancel_timer(handle);
                }
            });
        }
    }
}

/// Yield to other runnable tasks at the same instant.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn empty_simulation_finishes_at_zero() {
        let mut sim = Simulation::new(0);
        assert_eq!(sim.run(), SimTime::ZERO);
    }

    #[test]
    fn sleep_advances_clock() {
        let mut sim = Simulation::new(0);
        sim.spawn(async {
            sleep(SimDuration::from_millis(10)).await;
            assert_eq!(now().as_millis(), 10);
            sleep(SimDuration::from_millis(5)).await;
            assert_eq!(now().as_millis(), 15);
        });
        assert_eq!(sim.run_to_completion().as_millis(), 15);
    }

    #[test]
    fn tasks_interleave_in_time_order() {
        let mut sim = Simulation::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        for (name, delay) in [("a", 30u64), ("b", 10), ("c", 20)] {
            let log = log.clone();
            sim.spawn(async move {
                sleep(SimDuration::from_millis(delay)).await;
                log.borrow_mut().push(name);
            });
        }
        sim.run_to_completion();
        assert_eq!(*log.borrow(), vec!["b", "c", "a"]);
    }

    #[test]
    fn same_instant_fires_in_registration_order() {
        let mut sim = Simulation::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..5 {
            let log = log.clone();
            sim.spawn(async move {
                sleep(SimDuration::from_millis(7)).await;
                log.borrow_mut().push(i);
            });
        }
        sim.run_to_completion();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn nested_spawn_and_join() {
        let mut sim = Simulation::new(0);
        let out = sim.block_on(async {
            let h = spawn(async {
                sleep(SimDuration::from_micros(100)).await;
                41
            });
            h.await + 1
        });
        assert_eq!(out, 42);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new(0);
        let flag = Rc::new(Cell::new(false));
        let f2 = flag.clone();
        sim.spawn(async move {
            sleep(SimDuration::from_secs(10)).await;
            f2.set(true);
        });
        let t = sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(t, SimTime::from_secs_f64(1.0));
        assert!(!flag.get());
        assert_eq!(sim.live_tasks(), 1);
        sim.run();
        assert!(flag.get());
    }

    #[test]
    fn yield_now_interleaves() {
        let mut sim = Simulation::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        for name in ["x", "y"] {
            let log = log.clone();
            sim.spawn(async move {
                for i in 0..3 {
                    log.borrow_mut().push((name, i));
                    yield_now().await;
                }
            });
        }
        sim.run_to_completion();
        let l = log.borrow();
        // Alternating because both are re-queued after each yield.
        assert_eq!(l[0], ("x", 0));
        assert_eq!(l[1], ("y", 0));
        assert_eq!(l[2], ("x", 1));
        assert_eq!(l[3], ("y", 1));
    }

    #[test]
    fn deadlocked_task_is_reported() {
        let mut sim = Simulation::new(0);
        sim.spawn(async {
            std::future::pending::<()>().await;
        });
        sim.run();
        assert_eq!(sim.live_tasks(), 1);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn trace(seed: u64) -> Vec<u64> {
            let mut sim = Simulation::new(seed);
            let log = Rc::new(RefCell::new(Vec::new()));
            for _ in 0..10 {
                let log = log.clone();
                sim.spawn(async move {
                    let d = with_rng(|r| r.range(1, 1000));
                    sleep(SimDuration::from_micros(d)).await;
                    log.borrow_mut().push(now().as_nanos());
                });
            }
            sim.run_to_completion();
            let v = log.borrow().clone();
            v
        }
        assert_eq!(trace(99), trace(99));
        assert_ne!(trace(99), trace(100));
    }

    #[test]
    fn join_handle_try_take() {
        let mut sim = Simulation::new(0);
        let h = sim.spawn(async { "done" });
        assert!(!h.is_finished());
        sim.run();
        assert!(h.is_finished());
        assert_eq!(h.try_take(), Some("done"));
        assert_eq!(h.try_take(), None);
    }

    #[test]
    fn sleep_zero_completes_immediately() {
        let mut sim = Simulation::new(0);
        sim.spawn(async {
            sleep(SimDuration::ZERO).await;
            assert_eq!(now(), SimTime::ZERO);
        });
        sim.run_to_completion();
    }

    #[test]
    fn many_tasks_scale() {
        let mut sim = Simulation::new(0);
        let counter = Rc::new(Cell::new(0u32));
        for i in 0..1000 {
            let c = counter.clone();
            sim.spawn(async move {
                sleep(SimDuration::from_nanos(i)).await;
                c.set(c.get() + 1);
            });
        }
        sim.run_to_completion();
        assert_eq!(counter.get(), 1000);
    }

    #[test]
    fn task_slots_are_recycled() {
        let mut sim = Simulation::new(0);
        sim.spawn(async {
            for _ in 0..100 {
                let h = spawn(async {
                    sleep(SimDuration::from_nanos(1)).await;
                });
                h.await;
            }
        });
        sim.run_to_completion();
        // One slot for the root task, one recycled slot for the children.
        assert!(sim.inner.tasks.borrow().len() <= 3);
    }

    #[test]
    fn stale_wakes_do_not_poll_recycled_slots() {
        // A waker kept alive past its task's completion must not wake
        // whatever task is recycled into the same slot.
        use std::task::Waker;
        let mut sim = Simulation::new(0);
        let stale: Rc<RefCell<Option<Waker>>> = Rc::new(RefCell::new(None));
        let s2 = stale.clone();
        sim.spawn(async move {
            // Capture this task's waker, then finish.
            std::future::poll_fn(move |cx| {
                *s2.borrow_mut() = Some(cx.waker().clone());
                Poll::Ready(())
            })
            .await;
        });
        sim.run();
        let polls_before = sim.poll_count();
        // Recycle the slot with a long-lived task, then fire the stale waker.
        let done = Rc::new(Cell::new(false));
        let d2 = done.clone();
        sim.spawn(async move {
            sleep(SimDuration::from_millis(1)).await;
            d2.set(true);
        });
        stale.borrow().as_ref().unwrap().wake_by_ref();
        sim.run();
        assert!(done.get());
        // The stale wake costs no task poll (generation mismatch).
        let _ = polls_before;
    }

    #[test]
    fn timer_slots_are_recycled() {
        let mut sim = Simulation::new(0);
        sim.spawn(async {
            for _ in 0..1000 {
                sleep(SimDuration::from_nanos(7)).await;
            }
        });
        sim.run_to_completion();
        assert!(sim.inner.timer_slots.borrow().len() <= 4);
    }

    #[test]
    fn cancelled_timers_do_not_mask_the_next_event() {
        let mut sim = Simulation::new(1);
        sim.spawn(async {
            // Register a 1 ms timer, then cancel it by dropping the
            // sleep; only the 9 ms sleep below remains live.
            let mut early = Some(Box::pin(sleep(SimDuration::from_millis(1))));
            std::future::poll_fn(move |cx| {
                let _ = early.as_mut().unwrap().as_mut().poll(cx);
                early.take();
                Poll::Ready(())
            })
            .await;
            sleep(SimDuration::from_millis(9)).await;
        });
        sim.run_until(SimTime::ZERO);
        // The stale 1 ms entry must be invisible: the sharded engine's
        // lower-bound all-reduce relies on this being a live deadline.
        assert_eq!(sim.next_event_time(), Some(SimTime::from_nanos(9_000_000)));
        assert_eq!(sim.run().as_millis(), 9);
    }

    #[test]
    fn stale_timer_heap_is_purged_in_bulk() {
        let mut sim = Simulation::new(2);
        sim.spawn(async {
            // Arm 256 far-future timers, then cancel them all by drop.
            let mut sleeps: Vec<_> = (0..256u64)
                .map(|i| Box::pin(sleep(SimDuration::from_secs(100 + i))))
                .collect();
            std::future::poll_fn(move |cx| {
                for s in &mut sleeps {
                    let _ = s.as_mut().poll(cx);
                }
                sleeps.clear();
                Poll::Ready(())
            })
            .await;
        });
        sim.run();
        // The lazy purge must have compacted the heap well below the 256
        // armed entries and recorded what it dropped.
        assert!(sim.inner.timers.borrow().len() < 64);
        assert!(sim.obs().metrics().counter("desim.timers_purged") >= 128);
    }
}
