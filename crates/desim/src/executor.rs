//! The single-threaded deterministic async executor.
//!
//! Tasks are ordinary Rust futures. Time only advances when every runnable
//! task has been polled to a blocked state; the executor then pops the
//! earliest timer from the event queue and jumps the clock to it. Events at
//! equal instants are ordered by registration sequence number, so a given
//! program + seed always produces the same trace.
//!
//! The executor is deliberately `!Send`: a simulation lives on one thread
//! and uses `Rc`/`RefCell` internally. Parallelism across *simulations*
//! (e.g. Criterion benches sweeping parameters) is still possible because
//! each `Simulation` is self-contained.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use crate::obs::Obs;
use crate::rng::{SharedRng, SimRng};
use crate::time::{SimDuration, SimTime};

/// Identifier of a spawned task.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TaskId(u64);

type BoxedFuture = Pin<Box<dyn Future<Output = ()>>>;

/// Wakers must be `Send + Sync`, so the ready queue they push into is the
/// one `Arc<Mutex<..>>` in the engine. It is never actually contended: the
/// executor and all tasks run on one thread.
struct ReadyQueue {
    queue: Mutex<VecDeque<TaskId>>,
}

struct TaskWaker {
    id: TaskId,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.queue.lock().unwrap().push_back(self.id);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.queue.lock().unwrap().push_back(self.id);
    }
}

#[derive(PartialEq, Eq)]
struct TimerEntry {
    at: SimTime,
    seq: u64,
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

pub(crate) struct SimInner {
    now: Cell<SimTime>,
    next_task_id: Cell<u64>,
    next_timer_seq: Cell<u64>,
    tasks: RefCell<HashMap<TaskId, BoxedFuture>>,
    /// Tasks spawned while the executor is mid-poll; folded in between polls.
    incoming: RefCell<Vec<(TaskId, BoxedFuture)>>,
    ready: Arc<ReadyQueue>,
    timers: RefCell<BinaryHeap<Reverse<TimerEntry>>>,
    timer_wakers: RefCell<HashMap<u64, Waker>>,
    rng: SharedRng,
    polls: Cell<u64>,
    daemons: RefCell<std::collections::HashSet<TaskId>>,
    obs: Obs,
}

thread_local! {
    static CURRENT: RefCell<Option<Rc<SimInner>>> = const { RefCell::new(None) };
}

fn with_current<R>(f: impl FnOnce(&Rc<SimInner>) -> R) -> R {
    CURRENT.with(|c| {
        let borrow = c.borrow();
        let inner = borrow
            .as_ref()
            .expect("not inside a Simulation context (call via Simulation::run or block_on)");
        f(inner)
    })
}

/// Like [`with_current`], but a no-op returning `None` outside a
/// simulation context. The observability free functions use this so
/// instrumented code stays callable from plain unit tests.
pub(crate) fn try_with_current<R>(f: impl FnOnce(&Rc<SimInner>) -> R) -> Option<R> {
    CURRENT.with(|c| c.borrow().as_ref().map(f))
}

/// The simulation driver.
///
/// ```
/// use mgrid_desim::{Simulation, time::SimDuration};
///
/// let mut sim = Simulation::new(42);
/// sim.spawn(async {
///     mgrid_desim::sleep(SimDuration::from_millis(5)).await;
/// });
/// let end = sim.run();
/// assert_eq!(end.as_millis(), 5);
/// ```
pub struct Simulation {
    inner: Rc<SimInner>,
}

impl Simulation {
    /// Create a simulation whose RNG streams derive from `seed`.
    pub fn new(seed: u64) -> Self {
        Simulation {
            inner: Rc::new(SimInner {
                now: Cell::new(SimTime::ZERO),
                next_task_id: Cell::new(0),
                next_timer_seq: Cell::new(0),
                tasks: RefCell::new(HashMap::new()),
                incoming: RefCell::new(Vec::new()),
                ready: Arc::new(ReadyQueue {
                    queue: Mutex::new(VecDeque::new()),
                }),
                timers: RefCell::new(BinaryHeap::new()),
                timer_wakers: RefCell::new(HashMap::new()),
                rng: SharedRng::new(seed),
                polls: Cell::new(0),
                daemons: RefCell::new(std::collections::HashSet::new()),
                obs: Obs::new(),
            }),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.inner.now.get()
    }

    /// This simulation's observability surface (tracer + metrics).
    ///
    /// Tracing starts disabled; call [`Obs::enable_tracing`] to capture
    /// typed events. Metrics are always collected.
    pub fn obs(&self) -> &Obs {
        &self.inner.obs
    }

    /// Spawn a root task. May also be called from inside tasks through the
    /// free function [`spawn`].
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        self.inner.spawn_future(fut)
    }

    /// Shared deterministic RNG for this simulation.
    pub fn rng(&self) -> SharedRng {
        self.inner.rng.clone()
    }

    /// Total number of task polls performed (engine throughput metric).
    pub fn poll_count(&self) -> u64 {
        self.inner.polls.get()
    }

    /// Number of non-daemon tasks that have been spawned but not yet
    /// completed. Daemon tasks (see [`spawn_daemon`]) are infrastructure
    /// loops expected to outlive the workload and are not counted.
    pub fn live_tasks(&self) -> usize {
        let daemons = self.inner.daemons.borrow();
        self.inner
            .tasks
            .borrow()
            .keys()
            .chain(self.inner.incoming.borrow().iter().map(|(id, _)| id))
            .filter(|id| !daemons.contains(id))
            .count()
    }

    /// Run until no runnable tasks and no pending timers remain.
    ///
    /// Returns the final simulation time. Tasks that are still blocked on
    /// external wakeups (e.g. a channel nobody will ever write to) are left
    /// pending; check [`Simulation::live_tasks`] to detect deadlock.
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime::MAX)
    }

    /// Run until the event queue is exhausted or the next event would occur
    /// after `deadline`. The clock is left at `min(deadline, final time)`.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        self.run_core(deadline, || false)
    }

    /// The core loop: run until quiescence, the deadline, or `stop()`
    /// returning true (checked between event batches).
    fn run_core(&mut self, deadline: SimTime, stop: impl Fn() -> bool) -> SimTime {
        let _guard = ContextGuard::enter(self.inner.clone());
        loop {
            self.inner.fold_incoming();
            // Phase 1: poll every ready task until quiescent.
            loop {
                let next = self.inner.ready.queue.lock().unwrap().pop_front();
                let Some(id) = next else { break };
                self.inner.poll_task(id);
                self.inner.fold_incoming();
            }
            if stop() {
                break;
            }
            // Phase 2: advance to the earliest timer.
            let Some(entry_at) = self.inner.peek_timer() else {
                break;
            };
            if entry_at > deadline {
                self.inner.now.set(deadline);
                break;
            }
            self.inner.advance_to(entry_at);
        }
        self.inner.now.get()
    }

    /// Run the simulation to completion and panic if any task is still
    /// blocked at the end — the standard harness for tests, where a blocked
    /// task means a deadlock bug.
    pub fn run_to_completion(&mut self) -> SimTime {
        let t = self.run();
        let live = self.live_tasks();
        assert!(
            live == 0,
            "simulation ended with {live} blocked task(s) at {t}"
        );
        t
    }

    /// Convenience: spawn `fut` and run until it completes, then return its
    /// output. The simulation stops as soon as the root task finishes, so
    /// perpetual daemon tasks (schedulers, network pumps) do not prevent
    /// termination.
    ///
    /// # Panics
    /// Panics if the simulation runs out of events before `fut` completes.
    pub fn block_on<F>(&mut self, fut: F) -> F::Output
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let handle = self.spawn(fut);
        let state = handle.state.clone();
        self.run_core(SimTime::MAX, || state.borrow().result.is_some());
        handle
            .try_take()
            .expect("block_on: root task did not complete (deadlock?)")
    }
}

impl SimInner {
    pub(crate) fn now(&self) -> SimTime {
        self.now.get()
    }

    pub(crate) fn obs(&self) -> &Obs {
        &self.obs
    }

    fn spawn_future<F>(self: &Rc<Self>, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let id = TaskId(self.next_task_id.get());
        self.next_task_id.set(id.0 + 1);
        let state = Rc::new(RefCell::new(JoinState {
            result: None,
            waker: None,
        }));
        let state2 = state.clone();
        let wrapped: BoxedFuture = Box::pin(async move {
            let out = fut.await;
            let mut s = state2.borrow_mut();
            s.result = Some(out);
            if let Some(w) = s.waker.take() {
                w.wake();
            }
        });
        self.incoming.borrow_mut().push((id, wrapped));
        self.ready.queue.lock().unwrap().push_back(id);
        JoinHandle { state }
    }

    fn fold_incoming(&self) {
        let mut incoming = self.incoming.borrow_mut();
        if incoming.is_empty() {
            return;
        }
        let mut tasks = self.tasks.borrow_mut();
        for (id, fut) in incoming.drain(..) {
            tasks.insert(id, fut);
        }
    }

    fn poll_task(self: &Rc<Self>, id: TaskId) {
        // Take the future out so the task may spawn/wake reentrantly.
        let Some(mut fut) = self.tasks.borrow_mut().remove(&id) else {
            return; // already completed; spurious wake
        };
        let waker = Waker::from(Arc::new(TaskWaker {
            id,
            ready: self.ready.clone(),
        }));
        let mut cx = Context::from_waker(&waker);
        self.polls.set(self.polls.get() + 1);
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {}
            Poll::Pending => {
                self.tasks.borrow_mut().insert(id, fut);
            }
        }
    }

    fn peek_timer(&self) -> Option<SimTime> {
        self.timers.borrow().peek().map(|Reverse(e)| e.at)
    }

    /// Jump the clock to `at` and fire every timer scheduled for that
    /// instant (in registration order).
    fn advance_to(&self, at: SimTime) {
        debug_assert!(at >= self.now.get(), "time went backwards");
        self.now.set(at);
        loop {
            let seq = {
                let mut timers = self.timers.borrow_mut();
                match timers.peek() {
                    Some(Reverse(e)) if e.at == at => {
                        let Reverse(e) = timers.pop().unwrap();
                        e.seq
                    }
                    _ => break,
                }
            };
            if let Some(w) = self.timer_wakers.borrow_mut().remove(&seq) {
                w.wake();
            }
        }
    }

    pub(crate) fn register_timer(&self, at: SimTime, waker: Waker) -> u64 {
        let seq = self.next_timer_seq.get();
        self.next_timer_seq.set(seq + 1);
        self.timers
            .borrow_mut()
            .push(Reverse(TimerEntry { at, seq }));
        self.timer_wakers.borrow_mut().insert(seq, waker);
        seq
    }

    pub(crate) fn update_timer_waker(&self, seq: u64, waker: Waker) {
        if let Some(slot) = self.timer_wakers.borrow_mut().get_mut(&seq) {
            *slot = waker;
        }
    }

    pub(crate) fn cancel_timer(&self, seq: u64) {
        // The heap entry stays and fires as a no-op; dropping the waker is
        // enough to neutralize it.
        self.timer_wakers.borrow_mut().remove(&seq);
    }
}

struct ContextGuard {
    prev: Option<Rc<SimInner>>,
}

impl ContextGuard {
    fn enter(inner: Rc<SimInner>) -> Self {
        let prev = CURRENT.with(|c| c.borrow_mut().replace(inner));
        ContextGuard { prev }
    }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            *c.borrow_mut() = self.prev.take();
        });
    }
}

struct JoinState<T> {
    result: Option<T>,
    waker: Option<Waker>,
}

/// Handle to a spawned task's result.
///
/// Awaiting the handle yields the task's output. The handle may also be
/// inspected after the simulation finishes with [`JoinHandle::try_take`].
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    /// Take the result if the task has completed.
    pub fn try_take(&self) -> Option<T> {
        self.state.borrow_mut().result.take()
    }

    /// True if the task has completed (and the result not yet taken).
    pub fn is_finished(&self) -> bool {
        self.state.borrow().result.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut s = self.state.borrow_mut();
        if let Some(v) = s.result.take() {
            Poll::Ready(v)
        } else {
            s.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Free functions usable from inside tasks
// ---------------------------------------------------------------------------

/// Current simulation time (inside a running simulation).
pub fn now() -> SimTime {
    with_current(|s| s.now.get())
}

/// Spawn a task from inside the simulation.
pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + 'static,
    F::Output: 'static,
{
    with_current(|s| s.spawn_future(fut))
}

/// Spawn an infrastructure task (scheduler driver, network pump, …) that is
/// expected to run forever. Daemon tasks are excluded from
/// [`Simulation::live_tasks`], so [`Simulation::run_to_completion`] does not
/// treat them as deadlocks.
pub fn spawn_daemon<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + 'static,
    F::Output: 'static,
{
    with_current(|s| {
        let handle = s.spawn_future(fut);
        let id = TaskId(s.next_task_id.get() - 1);
        s.daemons.borrow_mut().insert(id);
        handle
    })
}

/// Run a closure with the simulation's shared RNG.
pub fn with_rng<R>(f: impl FnOnce(&mut SimRng) -> R) -> R {
    with_current(|s| s.rng.with(f))
}

/// Fork an independent RNG stream from the simulation's root RNG.
pub fn fork_rng() -> SimRng {
    with_current(|s| s.rng.fork())
}

/// Sleep for a span of simulated physical time.
pub fn sleep(d: SimDuration) -> Sleep {
    Sleep {
        at: None,
        duration: d,
        timer_seq: None,
    }
}

/// Sleep until an absolute instant.
pub fn sleep_until(at: SimTime) -> Sleep {
    Sleep {
        at: Some(at),
        duration: SimDuration::ZERO,
        timer_seq: None,
    }
}

/// Future returned by [`sleep`] / [`sleep_until`].
pub struct Sleep {
    at: Option<SimTime>,
    duration: SimDuration,
    timer_seq: Option<u64>,
}

impl Future for Sleep {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let at = match self.at {
            Some(at) => at,
            None => {
                let at = now() + self.duration;
                self.at = Some(at);
                at
            }
        };
        with_current(|s| {
            if s.now.get() >= at {
                if let Some(seq) = self.timer_seq.take() {
                    s.cancel_timer(seq);
                }
                Poll::Ready(())
            } else {
                match self.timer_seq {
                    Some(seq) => s.update_timer_waker(seq, cx.waker().clone()),
                    None => self.timer_seq = Some(s.register_timer(at, cx.waker().clone())),
                }
                Poll::Pending
            }
        })
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if let Some(seq) = self.timer_seq.take() {
            // Best-effort: outside a context (sim already dropped) there is
            // nothing to cancel.
            CURRENT.with(|c| {
                if let Some(inner) = c.borrow().as_ref() {
                    inner.cancel_timer(seq);
                }
            });
        }
    }
}

/// Yield to other runnable tasks at the same instant.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn empty_simulation_finishes_at_zero() {
        let mut sim = Simulation::new(0);
        assert_eq!(sim.run(), SimTime::ZERO);
    }

    #[test]
    fn sleep_advances_clock() {
        let mut sim = Simulation::new(0);
        sim.spawn(async {
            sleep(SimDuration::from_millis(10)).await;
            assert_eq!(now().as_millis(), 10);
            sleep(SimDuration::from_millis(5)).await;
            assert_eq!(now().as_millis(), 15);
        });
        assert_eq!(sim.run_to_completion().as_millis(), 15);
    }

    #[test]
    fn tasks_interleave_in_time_order() {
        let mut sim = Simulation::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        for (name, delay) in [("a", 30u64), ("b", 10), ("c", 20)] {
            let log = log.clone();
            sim.spawn(async move {
                sleep(SimDuration::from_millis(delay)).await;
                log.borrow_mut().push(name);
            });
        }
        sim.run_to_completion();
        assert_eq!(*log.borrow(), vec!["b", "c", "a"]);
    }

    #[test]
    fn same_instant_fires_in_registration_order() {
        let mut sim = Simulation::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..5 {
            let log = log.clone();
            sim.spawn(async move {
                sleep(SimDuration::from_millis(7)).await;
                log.borrow_mut().push(i);
            });
        }
        sim.run_to_completion();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn nested_spawn_and_join() {
        let mut sim = Simulation::new(0);
        let out = sim.block_on(async {
            let h = spawn(async {
                sleep(SimDuration::from_micros(100)).await;
                41
            });
            h.await + 1
        });
        assert_eq!(out, 42);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new(0);
        let flag = Rc::new(Cell::new(false));
        let f2 = flag.clone();
        sim.spawn(async move {
            sleep(SimDuration::from_secs(10)).await;
            f2.set(true);
        });
        let t = sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(t, SimTime::from_secs_f64(1.0));
        assert!(!flag.get());
        assert_eq!(sim.live_tasks(), 1);
        sim.run();
        assert!(flag.get());
    }

    #[test]
    fn yield_now_interleaves() {
        let mut sim = Simulation::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        for name in ["x", "y"] {
            let log = log.clone();
            sim.spawn(async move {
                for i in 0..3 {
                    log.borrow_mut().push((name, i));
                    yield_now().await;
                }
            });
        }
        sim.run_to_completion();
        let l = log.borrow();
        // Alternating because both are re-queued after each yield.
        assert_eq!(l[0], ("x", 0));
        assert_eq!(l[1], ("y", 0));
        assert_eq!(l[2], ("x", 1));
        assert_eq!(l[3], ("y", 1));
    }

    #[test]
    fn deadlocked_task_is_reported() {
        let mut sim = Simulation::new(0);
        sim.spawn(async {
            std::future::pending::<()>().await;
        });
        sim.run();
        assert_eq!(sim.live_tasks(), 1);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn trace(seed: u64) -> Vec<u64> {
            let mut sim = Simulation::new(seed);
            let log = Rc::new(RefCell::new(Vec::new()));
            for _ in 0..10 {
                let log = log.clone();
                sim.spawn(async move {
                    let d = with_rng(|r| r.range(1, 1000));
                    sleep(SimDuration::from_micros(d)).await;
                    log.borrow_mut().push(now().as_nanos());
                });
            }
            sim.run_to_completion();
            let v = log.borrow().clone();
            v
        }
        assert_eq!(trace(99), trace(99));
        assert_ne!(trace(99), trace(100));
    }

    #[test]
    fn join_handle_try_take() {
        let mut sim = Simulation::new(0);
        let h = sim.spawn(async { "done" });
        assert!(!h.is_finished());
        sim.run();
        assert!(h.is_finished());
        assert_eq!(h.try_take(), Some("done"));
        assert_eq!(h.try_take(), None);
    }

    #[test]
    fn sleep_zero_completes_immediately() {
        let mut sim = Simulation::new(0);
        sim.spawn(async {
            sleep(SimDuration::ZERO).await;
            assert_eq!(now(), SimTime::ZERO);
        });
        sim.run_to_completion();
    }

    #[test]
    fn many_tasks_scale() {
        let mut sim = Simulation::new(0);
        let counter = Rc::new(Cell::new(0u32));
        for i in 0..1000 {
            let c = counter.clone();
            sim.spawn(async move {
                sleep(SimDuration::from_nanos(i)).await;
                c.set(c.get() + 1);
            });
        }
        sim.run_to_completion();
        assert_eq!(counter.get(), 1000);
    }
}
