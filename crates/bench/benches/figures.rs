//! One Criterion bench per paper table/figure family: each times a
//! shrunken regeneration of that experiment, so `cargo bench` both
//! exercises every reproduction path and tracks the simulator's speed on
//! it. The full-size regenerations are produced by the `repro` binary.

use criterion::{criterion_group, criterion_main, Criterion};

use mgrid_bench::experiments::{micro, network, npb};
use mgrid_bench::runner::{run_npb, run_wavetoy, Mode};
use microgrid::apps::npb::{NpbBenchmark, NpbClass};
use microgrid::apps::WaveToyConfig;
use microgrid::desim::time::SimDuration;
use microgrid::presets;

fn fig5_memory(c: &mut Criterion) {
    c.bench_function("fig5_memory_probe", |b| {
        b.iter(micro::fig5_memory);
    });
}

fn fig6_cpu(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_cpu_fraction");
    g.sample_size(10);
    g.bench_function("delivered_50pct_cpu_competition", |b| {
        b.iter(|| {
            micro::delivered_fraction(0.5, micro::Competition::Cpu, SimDuration::from_secs(2))
        });
    });
    g.finish();
}

fn fig7_quanta(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_quanta_distribution");
    g.sample_size(10);
    g.bench_function("300_grants_no_competition", |b| {
        b.iter(|| micro::quanta_distribution(micro::Competition::None, 300));
    });
    g.finish();
}

fn fig8_pingpong(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_network");
    g.sample_size(10);
    for size in [4u64, 65536] {
        g.bench_function(format!("pingpong_{size}B"), |b| {
            b.iter(|| network::ping_pong(Mode::Physical, size, 4));
        });
    }
    g.finish();
}

fn fig10_npb_class_s(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_npb");
    g.sample_size(10);
    for bench in [NpbBenchmark::MG, NpbBenchmark::IS] {
        g.bench_function(format!("{}_S_microgrid", bench.name()), |b| {
            b.iter(|| {
                run_npb(
                    presets::alpha_cluster(),
                    Mode::MicroGrid,
                    bench,
                    NpbClass::S,
                )
            });
        });
    }
    g.finish();
}

fn fig11_quantum(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_quantum");
    g.sample_size(10);
    g.bench_function("MG_S_shared_30ms_quantum", |b| {
        b.iter(|| {
            let mut config = presets::alpha_cluster_shared();
            config.quantum = SimDuration::from_millis(30);
            run_npb(config, Mode::MicroGrid, NpbBenchmark::MG, NpbClass::S)
        });
    });
    g.finish();
}

fn fig12_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_cpu_scaling");
    g.sample_size(10);
    g.bench_function("EP_S_4x_cpu", |b| {
        b.iter(|| {
            run_npb(
                presets::cpu_scaled_cluster(4.0),
                Mode::MicroGrid,
                NpbBenchmark::EP,
                NpbClass::S,
            )
        });
    });
    g.finish();
}

fn fig14_vbns(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14_vbns");
    g.sample_size(10);
    g.bench_function("MG_S_155mbps", |b| {
        b.iter(|| {
            run_npb(
                presets::vbns_grid(155e6),
                Mode::MicroGrid,
                NpbBenchmark::MG,
                NpbClass::S,
            )
        });
    });
    g.finish();
}

fn fig15_rates(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15_emulation_rate");
    g.sample_size(10);
    g.bench_function("MG_S_4x_system", |b| {
        b.iter(|| {
            run_npb(
                presets::emulation_rate_cluster(4.0),
                Mode::MicroGrid,
                NpbBenchmark::MG,
                NpbClass::S,
            )
        });
    });
    g.finish();
}

fn fig16_wavetoy(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig16_wavetoy");
    g.sample_size(10);
    g.bench_function("grid50_microgrid", |b| {
        b.iter(|| {
            run_wavetoy(
                presets::alpha_cluster(),
                Mode::MicroGrid,
                WaveToyConfig::small(),
            )
        });
    });
    g.finish();
}

fn fig17_sensors(c: &mut Criterion) {
    use mgrid_bench::runner::run_npb_with_sensors;
    let mut g = c.benchmark_group("fig17_autopilot");
    g.sample_size(10);
    g.bench_function("EP_S_traced_4pct", |b| {
        b.iter(|| {
            run_npb_with_sensors(
                presets::fig17_cluster(),
                Mode::MicroGrid,
                NpbBenchmark::EP,
                NpbClass::S,
                SimDuration::from_secs(60),
            )
        });
    });
    g.finish();
}

fn fig9_and_tables(c: &mut Criterion) {
    c.bench_function("fig9_config_table", |b| {
        b.iter(npb::fig9_configs);
    });
}

criterion_group!(
    benches,
    fig5_memory,
    fig6_cpu,
    fig7_quanta,
    fig8_pingpong,
    fig9_and_tables,
    fig10_npb_class_s,
    fig11_quantum,
    fig12_scaling,
    fig14_vbns,
    fig15_rates,
    fig16_wavetoy,
    fig17_sensors
);
criterion_main!(benches);
