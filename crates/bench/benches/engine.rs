//! Engine throughput benchmarks: the simulator's own performance, which
//! bounds how large a virtual Grid can be modeled (the paper's scalability
//! concern in §2.4.2 and §5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use microgrid::desim::time::SimDuration;
use microgrid::desim::{sleep, spawn, Simulation};

fn timer_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("desim_timer_events");
    for n in [1_000u64, 10_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = Simulation::new(1);
                sim.spawn(async move {
                    for i in 0..n {
                        sleep(SimDuration::from_nanos(i % 97 + 1)).await;
                    }
                });
                sim.run()
            });
        });
    }
    g.finish();
}

fn channel_messages(c: &mut Criterion) {
    let mut g = c.benchmark_group("desim_channel_messages");
    let n = 10_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("mpsc_10k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(1);
            sim.spawn(async move {
                let (tx, rx) = microgrid::desim::channel::channel();
                spawn(async move {
                    for i in 0..n {
                        tx.send(i).await.unwrap();
                    }
                });
                let mut sum = 0u64;
                while let Ok(v) = rx.recv().await {
                    sum += v;
                }
                assert_eq!(sum, n * (n - 1) / 2);
            });
            sim.run()
        });
    });
    g.finish();
}

fn kernel_slices(c: &mut Criterion) {
    use microgrid::desim::SimRng;
    use microgrid::hostsim::{OsKernel, OsParams};
    let mut g = c.benchmark_group("hostsim_kernel");
    g.bench_function("4_procs_1s_timeshared", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(2);
            sim.spawn(async {
                let k = OsKernel::new(OsParams::default(), SimRng::new(3));
                let mut handles = Vec::new();
                for i in 0..4 {
                    let p = k.spawn_process(format!("p{i}"));
                    handles.push(spawn(async move {
                        p.run_cpu(SimDuration::from_millis(250)).await;
                    }));
                }
                for h in handles {
                    h.await;
                }
            });
            sim.run()
        });
    });
    g.finish();
}

fn network_packets(c: &mut Criterion) {
    use microgrid::desim::vclock::VirtualClock;
    use microgrid::netsim::{LinkSpec, NetParams, Network, Payload, TopologyBuilder};
    let mut g = c.benchmark_group("netsim_transfer");
    let bytes = 1_000_000u64;
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("1MB_over_ethernet", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(3);
            sim.block_on(async move {
                let mut tb = TopologyBuilder::new();
                let a = tb.host("a");
                let z = tb.host("z");
                tb.link(a, z, LinkSpec::fast_ethernet());
                let net = Network::new(tb.build(), VirtualClock::identity(), NetParams::default());
                let rx = net.endpoint(z).bind(1);
                spawn({
                    let ep = net.endpoint(a);
                    async move {
                        ep.send(z, 1, 1, bytes, Payload::empty()).await.unwrap();
                    }
                });
                rx.recv().await.unwrap().size_bytes
            })
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    timer_events,
    channel_messages,
    kernel_slices,
    network_packets
);
criterion_main!(benches);
