//! Shared drivers for the figure regenerators.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;

use microgrid::apps::npb::{self, NpbBenchmark, NpbClass, NpbResult, NpbSensors};
use microgrid::apps::{Autopilot, WaveToyConfig, WaveToyResult};
use microgrid::desim::time::SimDuration;
use microgrid::desim::{MetricsSnapshot, Simulation};
use microgrid::mpi::MpiParams;
use microgrid::{GridConfig, VirtualGrid};

thread_local! {
    /// Metrics accumulated across every simulation this thread has driven
    /// since the last [`take_metrics`] call.
    static ACCUM: RefCell<MetricsSnapshot> = RefCell::new(MetricsSnapshot::default());
    /// Scenarios submitted through [`run_scenarios`] since the last
    /// [`take_scenario_count`] call — the perf harness records this per
    /// figure so `BENCH_core.json` shows how much within-figure
    /// parallelism each `par` entry actually had to work with.
    static SCENARIOS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Fold one finished simulation's metrics into the thread accumulator.
fn note_run(sim: &Simulation) {
    let snap = sim.obs().metrics().snapshot();
    if !snap.is_empty() {
        ACCUM.with(|a| a.borrow_mut().merge(&snap));
    }
}

/// Take (and reset) the metrics accumulated over all runs since the last
/// call — one figure's worth when called once per figure.
pub fn take_metrics() -> MetricsSnapshot {
    ACCUM.with(|a| std::mem::take(&mut *a.borrow_mut()))
}

/// Which side of a comparison to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// "Physical grid": direct hosts, identity clock.
    Physical,
    /// The MicroGrid: paced hosts, rate-scaled clock.
    MicroGrid,
}

impl Mode {
    /// Both sides, physical first.
    pub fn both() -> [Mode; 2] {
        [Mode::Physical, Mode::MicroGrid]
    }
}

fn build(config: GridConfig, mode: Mode) -> VirtualGrid {
    match mode {
        Mode::Physical => VirtualGrid::build_baseline(config).expect("valid config"),
        Mode::MicroGrid => VirtualGrid::build(config).expect("valid config"),
    }
}

/// Run one NPB benchmark on `config` in `mode`; returns rank 0's result.
pub fn run_npb(config: GridConfig, mode: Mode, bench: NpbBenchmark, class: NpbClass) -> NpbResult {
    run_npb_on_hosts(config, mode, bench, class, None)
}

/// As [`run_npb`], with an explicit host subset (e.g. the 2+2 vBNS
/// placement uses all four hosts, but callers may restrict).
pub fn run_npb_on_hosts(
    config: GridConfig,
    mode: Mode,
    bench: NpbBenchmark,
    class: NpbClass,
    hosts: Option<Vec<String>>,
) -> NpbResult {
    let mut sim = Simulation::new(config.seed ^ 0x5eed);
    apply_profile(&sim);
    let results = sim.block_on(async move {
        let grid = build(config, mode);
        let hosts = hosts.unwrap_or_else(|| grid.host_names());
        grid.mpirun(&hosts, MpiParams::default(), move |comm| {
            Box::pin(npb::run(bench, comm, class, None)) as Pin<Box<dyn Future<Output = NpbResult>>>
        })
        .await
    });
    note_run(&sim);
    results.into_iter().next().expect("rank 0 result")
}

/// Run an NPB benchmark with Autopilot sensors attached to rank 0 and a
/// 1-virtual-second sampling period; returns (result, counter trace).
pub fn run_npb_with_sensors(
    config: GridConfig,
    mode: Mode,
    bench: NpbBenchmark,
    class: NpbClass,
    trace_horizon: SimDuration,
) -> (NpbResult, Vec<(f64, f64)>) {
    let mut sim = Simulation::new(config.seed ^ 0xaa);
    apply_profile(&sim);
    let out = sim.block_on(async move {
        let grid = build(config, mode);
        let ap = Autopilot::new();
        let counter = ap.sensor("counter");
        ap.start_sampling(grid.clock(), SimDuration::from_secs(1), trace_horizon);
        let hosts = grid.host_names();
        let results = grid
            .mpirun(&hosts, MpiParams::default(), move |comm| {
                let sensors = if comm.rank() == 0 {
                    Some(NpbSensors {
                        counter: counter.clone(),
                    })
                } else {
                    None
                };
                Box::pin(npb::run(bench, comm, class, sensors))
                    as Pin<Box<dyn Future<Output = NpbResult>>>
            })
            .await;
        let result = results.into_iter().next().expect("rank 0 result");
        (result, ap.trace("counter"))
    });
    note_run(&sim);
    out
}

/// Run CACTUS WaveToy; returns rank 0's result.
pub fn run_wavetoy(config: GridConfig, mode: Mode, wt: WaveToyConfig) -> WaveToyResult {
    let mut sim = Simulation::new(config.seed ^ 0xcac);
    apply_profile(&sim);
    let results = sim.block_on(async move {
        let grid = build(config, mode);
        let hosts = grid.host_names();
        grid.mpirun(&hosts, MpiParams::default(), move |comm| {
            Box::pin(microgrid::apps::wavetoy::run(comm, wt, None))
                as Pin<Box<dyn Future<Output = WaveToyResult>>>
        })
        .await
    });
    note_run(&sim);
    results.into_iter().next().expect("rank 0 result")
}

/// Fast mode shrinks long experiments (set `MGRID_FAST=1`).
pub fn fast_mode() -> bool {
    std::env::var("MGRID_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Profile mode (`MGRID_PROFILE=1`): every simulation driven by this
/// module records causal spans. The results are unchanged — spans are
/// pure observation — so the perf harness uses this to measure the
/// tracing-on vs tracing-off overhead of the span layer.
pub fn profile_mode() -> bool {
    std::env::var("MGRID_PROFILE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Apply [`profile_mode`] to a fresh simulation.
fn apply_profile(sim: &Simulation) {
    if profile_mode() {
        sim.obs().enable_spans();
    }
}

/// Worker threads for parallel figure regeneration: `MGRID_REPRO_THREADS`
/// if set (minimum 1), otherwise the machine's available parallelism.
pub fn repro_threads() -> usize {
    if let Ok(v) = std::env::var("MGRID_REPRO_THREADS") {
        return v.parse::<usize>().ok().filter(|&n| n >= 1).unwrap_or(1);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Scenario-shard count for within-figure parallelism: `MGRID_SHARDS`
/// if set (minimum 1), otherwise 1 — the sequential engine. See
/// `docs/PARALLEL.md` for tuning guidance.
pub fn shard_count() -> usize {
    std::env::var("MGRID_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// A type-erased independent scenario of one figure.
pub type Scenario<R> = Box<dyn FnOnce() -> R + Send>;

/// Run one figure's independent scenarios on the sharded engine's job
/// pool ([`mgrid_desim::shard::run_jobs`] via the `microgrid` re-export),
/// honouring [`shard_count`].
///
/// Results come back in submission order and each scenario is a
/// self-contained deterministic simulation, so the figure is
/// byte-identical at every shard count. Per-scenario metrics are captured
/// on the worker that ran the scenario and folded into this thread's
/// accumulator; [`MetricsSnapshot::merge`] is commutative and
/// associative, so the merged figure snapshot is also shard-invariant.
pub fn run_scenarios<R: Send + 'static>(jobs: Vec<Scenario<R>>) -> Vec<R> {
    SCENARIOS.with(|c| c.set(c.get() + jobs.len()));
    let shards = shard_count();
    if shards <= 1 || jobs.len() <= 1 {
        // Sequential path: exactly the historical loop, metrics flow
        // straight into this thread's accumulator via `note_run`.
        return jobs.into_iter().map(|j| j()).collect();
    }
    let wrapped: Vec<_> = jobs
        .into_iter()
        .map(|j| {
            Box::new(move || {
                let r = j();
                (r, take_metrics())
            }) as Box<dyn FnOnce() -> (R, MetricsSnapshot) + Send>
        })
        .collect();
    let mut out = Vec::with_capacity(wrapped.len());
    for (r, snap) in microgrid::desim::shard::run_jobs(shards, wrapped) {
        if !snap.is_empty() {
            ACCUM.with(|a| a.borrow_mut().merge(&snap));
        }
        out.push(r);
    }
    out
}

/// Take (and reset) the number of scenarios submitted through
/// [`run_scenarios`] on this thread since the last call.
pub fn take_scenario_count() -> usize {
    SCENARIOS.with(|c| c.replace(0))
}

/// Class A normally, class S in fast mode.
pub fn class_for_run() -> NpbClass {
    if fast_mode() {
        NpbClass::S
    } else {
        NpbClass::A
    }
}

/// Mean and standard deviation of a sample.
pub fn mean_stddev(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_stddev_basic() {
        let (m, s) = mean_stddev(&[1.0, 2.0, 3.0, 4.0]);
        assert!((m - 2.5).abs() < 1e-12);
        assert!((s - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(mean_stddev(&[]), (0.0, 0.0));
    }

    #[test]
    fn npb_runner_runs_both_modes() {
        for mode in Mode::both() {
            let r = run_npb(
                microgrid::presets::alpha_cluster(),
                mode,
                NpbBenchmark::IS,
                NpbClass::S,
            );
            assert!(r.verified, "{mode:?}: {r:?}");
        }
    }
}
