//! Chaos scenarios: the paper's what-if promise under *adverse*
//! conditions. Two tracked experiments exercise the fault-injection
//! engine end to end:
//!
//! 1. **lossy-wan** — NPB IS over the vBNS distributed cluster while the
//!    scripted scenario degrades the Los Angeles–Chicago long-haul link
//!    (packet loss, then a hard outage that later heals). The reliable
//!    transport retransmits through all of it; the figure reports the
//!    healthy-vs-faulty slowdown and the recovery counters.
//! 2. **host-crash** — an EP-style master/worker run on the Alpha
//!    cluster where one host crashes mid-compute. The resilient launcher
//!    and MPI receive timeouts drop exactly the dead rank; the figure
//!    reports surviving-rank throughput and the dropped-job accounting.
//!
//! Both scenarios are deterministic: one config + one seed = one fault
//! timeline = one set of numbers (asserted byte-for-byte by
//! `tests/chaos.rs` and the `chaos` binary's double-run check).

use std::future::Future;
use std::pin::Pin;

use microgrid::apps::npb::{self, NpbBenchmark, NpbClass, NpbResult};
use microgrid::desim::time::SimDuration;
use microgrid::desim::Simulation;
use microgrid::faults::{FaultKind, FaultPlan};
use microgrid::mpi::{Comm, MpiData, MpiParams};
use microgrid::{presets, Report, Series, VirtualGrid};

/// The scripted WAN impairment for scenario 1: 5% loss on the vBNS
/// long-haul from the start, plus a 150 ms hard outage that heals.
fn wan_plan() -> FaultPlan {
    FaultPlan::new()
        .at(
            SimDuration::ZERO,
            FaultKind::LinkLoss {
                a: "vbns-la".into(),
                b: "vbns-chi".into(),
                per_mille: 50,
            },
        )
        .at(
            SimDuration::from_millis(250),
            FaultKind::LinkDown {
                a: "vbns-la".into(),
                b: "vbns-chi".into(),
            },
        )
        .at(
            SimDuration::from_millis(400),
            FaultKind::LinkUp {
                a: "vbns-la".into(),
                b: "vbns-chi".into(),
            },
        )
}

fn run_is_vbns(faults: Option<FaultPlan>, seed: u64) -> (NpbResult, MetricsTriple) {
    let mut sim = Simulation::new(seed);
    let (result, retransmits) = sim.block_on(async move {
        let mut config = presets::vbns_grid(155e6);
        config.seed = seed;
        config.faults = faults;
        let grid = VirtualGrid::build(config).expect("build");
        let results = grid
            .mpirun_all(MpiParams::default(), |comm| {
                Box::pin(npb::run(NpbBenchmark::IS, comm, NpbClass::S, None))
                    as Pin<Box<dyn Future<Output = NpbResult>>>
            })
            .await;
        let retransmits = grid.network().stats().retransmit_rounds;
        (
            results.into_iter().next().expect("rank 0 result"),
            retransmits,
        )
    });
    let m = sim.obs().metrics();
    let snap = m.snapshot();
    let recovery_ms = snap
        .histograms
        .iter()
        .find(|h| h.name == "net.recovery_latency_ns")
        .map(|h| h.sum as f64 / 1e6)
        .unwrap_or(0.0);
    let triple = MetricsTriple {
        retransmits,
        stalls: m.counter("net.stalls"),
        recovery_ms,
    };
    (result, triple)
}

struct MetricsTriple {
    retransmits: u64,
    stalls: u64,
    recovery_ms: f64,
}

/// Scenario 1: NPB IS over the lossy/outaged vBNS WAN vs the healthy WAN.
pub fn chaos_wan() -> Report {
    let mut rep = Report::new(
        "chaos-wan",
        "NPB IS over the vBNS WAN under scripted loss and a healed outage (class S)",
    );
    let (healthy, _) = run_is_vbns(None, 4242);
    let (faulty, m) = run_is_vbns(Some(wan_plan()), 4242);
    assert!(healthy.verified, "healthy run failed: {healthy:?}");
    assert!(faulty.verified, "faulty run must still verify: {faulty:?}");
    rep.series.push(Series {
        label: "virtual seconds".into(),
        points: vec![
            ("healthy".into(), healthy.virtual_seconds),
            ("faulty".into(), faulty.virtual_seconds),
        ],
    });
    rep.series.push(Series {
        label: "recovery".into(),
        points: vec![
            ("retransmits".into(), m.retransmits as f64),
            ("stalls".into(), m.stalls as f64),
            ("recovery_ms_total".into(), m.recovery_ms),
        ],
    });
    rep.notes.push(format!(
        "transport retransmitted through 5% loss plus a 150 ms outage; \
         slowdown {:.2}x",
        faulty.virtual_seconds / healthy.virtual_seconds.max(1e-9)
    ));
    rep
}

/// Per-rank Mops of EP-style independent work in scenario 2.
const CRASH_WORK_MOPS: f64 = 200.0;
const CRASH_BLOCKS: u32 = 20;

/// Scenario 2 worker body: EP-style independent compute, partial sums
/// funneled to rank 0, which tolerates dead workers via receive
/// timeouts and reports how much of the job survived.
fn crash_body(comm: Comm) -> Pin<Box<dyn Future<Output = (usize, usize, f64)>>> {
    Box::pin(async move {
        let mut acc = 0.0f64;
        for b in 0..CRASH_BLOCKS {
            comm.ctx()
                .compute_mops(CRASH_WORK_MOPS / CRASH_BLOCKS as f64)
                .await;
            acc += f64::from(b);
        }
        if comm.rank() != 0 {
            let _ = comm.send(0, 7, MpiData::typed(8, acc)).await;
            return (0, 0, 0.0);
        }
        let mut survivors = 1; // rank 0 itself
        let mut dropped = 0;
        for src in 1..comm.size() {
            match comm.recv(src, 7).await {
                Ok(_) => survivors += 1,
                Err(_) => dropped += 1,
            }
        }
        let done = comm.ctx().gettimeofday();
        let finish_secs = done
            .saturating_since(mgrid_desim::time::SimTime::ZERO)
            .as_secs_f64();
        (survivors, dropped, finish_secs)
    })
}

/// Scenario 2: one Alpha-cluster host crashes mid-compute; the run
/// degrades gracefully instead of hanging.
pub fn chaos_crash() -> Report {
    let mut rep = Report::new(
        "chaos-crash",
        "EP-style run with a mid-compute host crash: graceful degradation",
    );
    let seed = 777;
    let mut sim = Simulation::new(seed);
    let (survivors, dropped, finish_secs) = sim.block_on(async move {
        let mut config = presets::alpha_cluster();
        config.seed = seed;
        config.faults = Some(FaultPlan::new().at(
            SimDuration::from_millis(120),
            FaultKind::HostCrash {
                host: "alpha2".into(),
            },
        ));
        let grid = VirtualGrid::build(config).expect("build");
        let hosts = grid.host_names();
        let params = MpiParams {
            recv_timeout: Some(SimDuration::from_secs(2)),
            ..MpiParams::default()
        };
        let results = grid
            .mpirun_resilient(&hosts, params, SimDuration::from_secs(30), crash_body)
            .await;
        let (survivors, dropped, finish_secs) = results[0].expect("rank 0 survives");
        (survivors, dropped, finish_secs)
    });
    let m = sim.obs().metrics();
    assert_eq!(m.counter("faults.host_crash"), 1, "crash did not fire");
    assert!(dropped >= 1, "crashed rank was not detected");
    rep.series.push(Series {
        label: "degradation".into(),
        points: vec![
            ("ranks_total".into(), 4.0),
            ("ranks_survived".into(), survivors as f64),
            ("ranks_dropped".into(), dropped as f64),
            (
                "rank_timeouts".into(),
                m.counter("mpi.rank_timeouts") as f64,
            ),
            (
                "jobs_dropped".into(),
                m.counter("faults.jobs_dropped") as f64,
            ),
            (
                "procs_killed".into(),
                m.counter("faults.procs_killed") as f64,
            ),
            ("rank0_finish_seconds".into(), finish_secs),
        ],
    });
    rep.notes.push(
        "one of four hosts crashes at t=120ms; rank 0 detects the dead \
         worker via the MPI receive timeout and completes on survivors"
            .into(),
    );
    rep
}
